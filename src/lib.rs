//! # moche — facade crate
//!
//! Re-exports the full MOCHE reproduction workspace:
//!
//! * [`core`] — the MOCHE algorithm itself (KS test, cumulative vectors,
//!   Phase 1/Phase 2, brute-force oracle).
//! * [`sigproc`] — signal-processing substrates (FFT, Spectral Residual,
//!   KDE, matrix profile, Series2Graph embedding).
//! * [`data`] — synthetic dataset generators (COVID-19 case data, NAB-like
//!   time series, drift workloads) and the sliding-window KS harness.
//! * [`baselines`] — the six baseline explainers the paper compares against.
//! * [`stream`] — incremental KS testing and a push-based drift monitor
//!   (the deployment shape the paper motivates).
//! * [`multidim`] — the paper's declared future work: 2-D KS testing
//!   (Fasano-Franceschini) with heuristic counterfactual explanations.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the
//! system inventory and per-experiment index.

pub use moche_baselines as baselines;
pub use moche_core as core;
pub use moche_data as data;
pub use moche_multidim as multidim;
pub use moche_sigproc as sigproc;
pub use moche_stream as stream;

pub use moche_core::prelude;
pub use moche_core::{
    ks_statistic, ks_test, Ecdf, Explanation, KsConfig, KsOutcome, Moche, MocheError,
    PreferenceList,
};
