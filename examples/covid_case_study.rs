//! The COVID-19 case study of the paper's Examples 1-2 and Section 6.3:
//! one failed KS test, two domain-knowledge preference lists, two
//! different most-comprehensible explanations of identical size.
//!
//! ```text
//! cargo run --release --example covid_case_study
//! ```

// Examples narrate to stdout on purpose.
#![allow(clippy::print_stdout)]

use moche::data::covid::{CovidDataset, AGE_LABELS};
use moche::data::HealthAuthority;
use moche::Moche;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = CovidDataset::generate(1);
    let reference = ds.reference_values();
    let test = ds.test_values();

    let moche = Moche::new(0.05)?;
    let outcome = moche.test(&reference, &test)?;
    println!(
        "August (n = {}) vs September (m = {}): D = {:.4}, threshold = {:.4} -> {}",
        reference.len(),
        test.len(),
        outcome.statistic,
        outcome.threshold,
        if outcome.rejected { "FAILED" } else { "passed" }
    );

    // Two ways to encode domain knowledge as preference lists:
    // L_p: cases from populous health authorities first.
    // L_a: senior cases first.
    let l_p = ds.preference_by_population();
    let l_a = ds.preference_by_age();

    let e_p = moche.explain(&reference, &test, &l_p)?;
    let e_a = moche.explain(&reference, &test, &l_a)?;

    println!(
        "\nBoth explanations have the minimum size k = {} ({:.1}% of |T|).",
        e_p.size(),
        100.0 * e_p.removed_fraction()
    );
    assert_eq!(e_p.size(), e_a.size(), "all explanations share the same size");

    for (label, e) in [("I_p (population preference)", &e_p), ("I_a (age preference)", &e_a)] {
        let cases: Vec<_> = e.indices().iter().map(|&i| ds.test[i]).collect();
        let by_ha = CovidDataset::ha_histogram(&cases);
        let by_age = CovidDataset::age_histogram(&cases);
        println!("\n{label}:");
        print!("  by HA:  ");
        for (ha, count) in HealthAuthority::ALL.iter().zip(by_ha) {
            print!("{}={count} ", ha.short_name());
        }
        println!();
        print!("  by age: ");
        for (age, count) in AGE_LABELS.iter().zip(by_age) {
            if count > 0 {
                print!("{age}={count} ");
            }
        }
        println!();
        let after = moche.test(&reference, &e.apply(&test))?;
        println!(
            "  after removal: D = {:.4} <= {:.4} -> {}",
            after.statistic,
            after.threshold,
            if after.passes() { "passed" } else { "STILL FAILING" }
        );
        assert!(after.passes());
    }

    // The paper's finding: under L_p the explanation concentrates in FHA
    // (the most populous HA saw the September surge).
    let cases_p: Vec<_> = e_p.indices().iter().map(|&i| ds.test[i]).collect();
    let fha = CovidDataset::ha_histogram(&cases_p)[0];
    println!(
        "\nUnder L_p, {fha} of {} selected cases come from Fraser Health — \
         the September surge the paper's case study identified.",
        e_p.size()
    );
    Ok(())
}
