//! The paper's future work, running: a failed **2-D** KS test
//! (Fasano-Franceschini) explained counterfactually.
//!
//! Scenario: a service's (latency, payload-size) pairs. The reference
//! window is healthy traffic; the test window contains a cluster of
//! degenerate requests that shifts the joint distribution. The explainers
//! find a small, irreducible set of test points whose removal makes the
//! 2-D test pass.
//!
//! ```text
//! cargo run --release --example multidim_drift
//! ```

// Examples narrate to stdout on purpose.
#![allow(clippy::print_stdout)]

use moche::core::PreferenceList;
use moche::data::dist::normal;
use moche::data::rng::rng_from_seed;
use moche::multidim::{GreedyImpact2d, GreedyPrefix2d, Ks2dConfig, Point2};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rng_from_seed(7);
    let healthy = |rng: &mut _| {
        // latency ~ 50ms ± 10, payload ~ 8KB ± 2, mildly correlated.
        let l = normal(rng, 50.0, 10.0);
        let p = 8.0 + 0.05 * (l - 50.0) + normal(rng, 0.0, 2.0);
        Point2::new(l, p)
    };

    let reference: Vec<Point2> = (0..300).map(|_| healthy(&mut rng)).collect();
    let mut test: Vec<Point2> = (0..180).map(|_| healthy(&mut rng)).collect();
    // The incident: 40 slow, oversized requests.
    let incident_start = test.len();
    for _ in 0..40 {
        test.push(Point2::new(normal(&mut rng, 220.0, 15.0), normal(&mut rng, 64.0, 4.0)));
    }

    let cfg = Ks2dConfig::new(0.05)?;
    let outcome = moche::multidim::ks2d_test(&reference, &test, &cfg)?;
    println!(
        "2-D KS test: D = {:.4}, p-value = {:.2e} -> {}",
        outcome.statistic,
        outcome.p_value,
        if outcome.rejected { "FAILED" } else { "passed" }
    );
    assert!(outcome.rejected);

    // Domain knowledge: suspect slow requests first.
    let scores: Vec<f64> = test.iter().map(|p| p.x).collect();
    let pref = PreferenceList::from_scores_desc(&scores)?;

    let prefix = GreedyPrefix2d.explain(&reference, &test, &cfg, Some(&pref))?;
    let impact = GreedyImpact2d.explain(&reference, &test, &cfg, Some(&pref))?;

    for (name, e) in [("greedy-prefix", &prefix), ("greedy-impact (irreducible)", &impact)] {
        let incident_hits = e.indices.iter().filter(|&&i| i >= incident_start).count();
        println!(
            "\n{name}: removed {} of {} test points, p-value {:.3} after removal",
            e.size(),
            test.len(),
            e.outcome_after.p_value
        );
        println!(
            "  {incident_hits} of {} selected points belong to the injected incident",
            e.size()
        );
        assert!(e.outcome_after.passes());
    }

    println!(
        "\nThe 1-D optimality guarantees do not transfer to 2-D (no total order on the \
         plane); these explanations are sound and irreducible, and the minimal-size \
         problem is the open question the paper leaves for future work."
    );
    Ok(())
}
