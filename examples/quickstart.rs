//! Quickstart: the paper's running example (Examples 3-6), end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

// Examples narrate to stdout on purpose.
#![allow(clippy::print_stdout)]

use moche::core::bounds::BoundsContext;
use moche::core::BaseVector;
use moche::{KsConfig, Moche, PreferenceList};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 3: R = {14 x4, 20 x4}, T = {13, 13, 12, 20}.
    let reference = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
    let test = vec![13.0, 13.0, 12.0, 20.0];
    let alpha = 0.3;

    // Step 1: the KS test fails at significance level 0.3 (Example 4).
    let moche = Moche::new(alpha)?;
    let outcome = moche.test(&reference, &test)?;
    println!(
        "KS test: D = {:.3}, threshold = {:.3} -> {}",
        outcome.statistic,
        outcome.threshold,
        if outcome.rejected { "FAILED" } else { "passed" }
    );
    assert!(outcome.rejected);

    // A peek at the machinery: the base vector and the Theorem-1 checks
    // that power Phase 1 (Example 4).
    let base = BaseVector::build(&reference, &test)?;
    println!("base vector V = {:?} (q = {})", base.values(), base.q());
    let cfg = KsConfig::new(alpha)?;
    let ctx = BoundsContext::new(&base, &cfg);
    for h in 1..test.len() {
        println!("  qualified {h}-subset exists? {}", ctx.exists_qualified(h));
    }

    // Step 2: the user prefers later points first: L = [t4, t3, t2, t1]
    // (Example 6). Indices are 0-based positions in `test`.
    let preference = PreferenceList::new(vec![3, 2, 1, 0])?;

    // Step 3: explain.
    let explanation = moche.explain(&reference, &test, &preference)?;
    println!(
        "explanation size k = {} (lower bound k_hat = {})",
        explanation.size(),
        explanation.k_hat()
    );
    println!(
        "most comprehensible explanation: indices {:?} = values {:?}",
        explanation.indices(),
        explanation.values()
    );

    // Step 4: removing it reverses the failed test.
    let t_after = explanation.apply(&test);
    println!("T \\ I = {t_after:?}");
    let after = moche.test(&reference, &t_after)?;
    println!(
        "KS test after removal: D = {:.3}, threshold = {:.3} -> {}",
        after.statistic,
        after.threshold,
        if after.rejected { "FAILED" } else { "passed" }
    );
    assert!(after.passes());

    // The paper's Example 6 result: {t3, t2} = {12, 13}.
    assert_eq!(explanation.indices(), &[2, 1]);
    println!("matches the paper's Example 6: I = {{t3, t2}}");
    Ok(())
}
