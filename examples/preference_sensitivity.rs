//! The Rashomon effect (Section 3.3): a failed KS test admits up to
//! C(|T|, k) equally small explanations, and the preference list is what
//! picks one. This example runs MOCHE under many different preference
//! lists on the same failed test and shows that
//!
//! * the explanation size never changes (it is a property of the test),
//! * the selected points can change drastically,
//! * each result is exactly the lexicographically smallest explanation
//!   under its list (spot-checked against brute force).
//!
//! ```text
//! cargo run --release --example preference_sensitivity
//! ```

// Examples narrate to stdout on purpose.
#![allow(clippy::print_stdout)]

use moche::core::brute_force::{brute_force_explain, BruteForceLimits};
use moche::{KsConfig, Moche, PreferenceList};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small failed test so brute force stays feasible: reference on
    // 0..8, test shifted up by 5.
    let reference: Vec<f64> = (0..32).map(|i| f64::from(i % 8)).collect();
    let test: Vec<f64> = (0..12).map(|i| f64::from(i % 8) + 5.0).collect();
    let alpha = 0.2;

    let moche = Moche::new(alpha)?;
    let cfg = KsConfig::new(alpha)?;
    let outcome = moche.test(&reference, &test)?;
    println!(
        "KS test: D = {:.3} vs threshold {:.3} -> {}",
        outcome.statistic,
        outcome.threshold,
        if outcome.rejected { "FAILED" } else { "passed" }
    );
    assert!(outcome.rejected);

    let mut sizes = std::collections::BTreeSet::new();
    let mut distinct = std::collections::BTreeSet::new();
    for seed in 0..8u64 {
        let pref = PreferenceList::random(test.len(), seed);
        let e = moche.explain(&reference, &test, &pref)?;
        sizes.insert(e.size());
        let mut sorted = e.indices().to_vec();
        sorted.sort_unstable();
        println!(
            "L(seed {seed}) = {:?}\n  -> I = {:?} (values {:?})",
            pref.as_order(),
            e.indices(),
            e.values()
        );
        distinct.insert(sorted);

        // Spot-check optimality against brute force.
        let bf = brute_force_explain(&reference, &test, &cfg, &pref, BruteForceLimits::default())?;
        let mut bf_sorted = bf.indices.clone();
        bf_sorted.sort_unstable();
        let mut fast_sorted = e.indices().to_vec();
        fast_sorted.sort_unstable();
        assert_eq!(fast_sorted, bf_sorted, "MOCHE must equal brute force");
    }

    println!(
        "\nAll {} preference lists agree on the size k = {:?}, but picked {} distinct \
         explanations — the Rashomon effect, resolved by domain knowledge.",
        8,
        sizes,
        distinct.len()
    );
    assert_eq!(sizes.len(), 1, "the explanation size is unique");
    Ok(())
}
