//! A drift-monitoring pipeline over a streaming time series — the paper's
//! Section 6.1.1 protocol as a downstream application:
//!
//! 1. slide paired windows through the series and KS-test each pair;
//! 2. on every failed test (= distribution drift alarm), rank the test
//!    window's points with Spectral Residual outlier scores;
//! 3. ask MOCHE for the most comprehensible counterfactual explanation —
//!    the minimal set of points that caused the alarm;
//! 4. report how well the explanation overlaps the injected ground truth.
//!
//! ```text
//! cargo run --release --example drift_monitor
//! ```

// Examples narrate to stdout on purpose.
#![allow(clippy::print_stdout)]

use moche::core::PreferenceList;
use moche::data::nab::{generate_family, NabFamily};
use moche::data::sliding::failed_windows;
use moche::sigproc::SpectralResidual;
use moche::{KsConfig, Moche};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = KsConfig::new(0.05)?;
    let moche = Moche::with_config(cfg);
    let window = 200;

    // Monitor the first few series of the artificial-drift family.
    let series_set = generate_family(NabFamily::Art, 2021);
    let mut alarms = 0usize;
    let mut explained = 0usize;

    for series in series_set.iter().take(3) {
        println!(
            "series {} ({} points, {} ground-truth anomaly windows)",
            series.name,
            series.len(),
            series.anomalies.len()
        );
        let failed = failed_windows(series, window, &cfg, window);
        for test_case in failed {
            alarms += 1;
            // Rank test-window points by Spectral Residual outlying score.
            let sr = SpectralResidual::default();
            let scores = sr.scores(&test_case.test);
            let preference = PreferenceList::from_scores_desc(&scores)?;

            let explanation = moche.explain(&test_case.reference, &test_case.test, &preference)?;
            explained += 1;

            // How much of the explanation falls inside ground-truth windows?
            let in_truth = explanation
                .indices()
                .iter()
                .filter(|&&i| {
                    let series_idx = test_case.test_start + i;
                    series.overlaps_anomaly(series_idx, series_idx + 1)
                })
                .count();
            println!(
                "  drift at t = {:>5}: D = {:.3}, |I| = {:>3} ({:.1}% of window), \
                 {} points inside labelled anomalies, k_hat gap = {}",
                test_case.test_start,
                test_case.statistic,
                explanation.size(),
                100.0 * explanation.removed_fraction(),
                in_truth,
                explanation.phase1.estimation_error(),
            );
        }
    }

    println!("\n{alarms} drift alarms raised, {explained} explained — every alarm comes");
    println!("with the minimal set of points that, once removed, silences it.");
    Ok(())
}
