//! A model-monitoring pipeline with the streaming extension: observations
//! arrive one at a time, the incremental KS test ([`moche::stream`]) checks
//! paired sliding windows in `O(log w)` per observation, and every drift
//! alarm is answered with the most comprehensible counterfactual
//! explanation — the deployment shape the paper motivates (monitoring an
//! ML model's input feature for distribution shift).
//!
//! ```text
//! cargo run --release --example model_monitor
//! ```

// Examples narrate to stdout on purpose.
#![allow(clippy::print_stdout)]

use moche::data::dist::{normal, uniform};
use moche::data::rng::rng_from_seed;
use moche::stream::{DriftMonitor, MonitorConfig, MonitorEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rng_from_seed(2021);
    let window = 150;
    let mut monitor = DriftMonitor::new(MonitorConfig::new(window, 0.05))?;

    // A "model input feature" stream: N(0, 1) in production... until a
    // upstream change at t = 1_000 injects a contaminated regime (15% of
    // points from U[-7, 7], the paper's Figure 5b construction), and a
    // full mean shift at t = 2_200.
    let total = 3_200usize;
    println!("streaming {total} observations through a {window}-wide paired-window monitor\n");
    let mut regime = "clean";
    for t in 0..total {
        let x = if t < 1_000 {
            normal(&mut rng, 0.0, 1.0)
        } else if t < 2_200 {
            if t == 1_000 {
                regime = "15% contaminated";
            }
            if uniform(&mut rng, 0.0, 1.0) < 0.15 {
                uniform(&mut rng, -7.0, 7.0)
            } else {
                normal(&mut rng, 0.0, 1.0)
            }
        } else {
            if t == 2_200 {
                regime = "mean-shifted";
            }
            normal(&mut rng, 2.5, 1.0)
        };

        match monitor.push(x) {
            MonitorEvent::Warming { .. } | MonitorEvent::Stable { .. } => {}
            MonitorEvent::Drift { outcome, explanation, .. } => {
                println!(
                    "t = {t:>5} [{regime}]: DRIFT  D = {:.3} (threshold {:.3})",
                    outcome.statistic, outcome.threshold
                );
                if let Some(e) = explanation {
                    let mean: f64 = e.values().iter().sum::<f64>() / e.size().max(1) as f64;
                    let extreme = e.values().iter().filter(|v| v.abs() > 3.0).count();
                    println!(
                        "          explanation: {} of {} window points (k_hat gap {}), \
                         mean value {:.2}, {} beyond |3σ|",
                        e.size(),
                        window,
                        e.phase1.estimation_error(),
                        mean,
                        extreme
                    );
                }
            }
        }
    }

    println!(
        "\n{} observations, {} drift alarms — each one localized to the minimal set of \
         points that caused it.",
        monitor.pushes(),
        monitor.alarms()
    );
    assert!(monitor.alarms() >= 2, "both regime changes should alarm");
    Ok(())
}
