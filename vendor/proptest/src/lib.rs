//! Offline, workspace-local stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`Strategy`] trait (with `prop_map`), range and tuple and
//! [`collection::vec`] strategies, `Just`, `prop_oneof!`, and the
//! `proptest!` test macro with `prop_assume!` / `prop_assert!` /
//! `prop_assert_eq!` and `#![proptest_config(...)]`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message of the assertion that fired) but is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so runs are reproducible; set `PROPTEST_SEED` to explore
//!   a different stream.
//!
//! Swap this crate for crates-io `proptest` via the workspace manifest when
//! network access exists; the test sources compile unchanged.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration, accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
    /// Give up if this many `prop_assume!` rejections accumulate.
    pub max_global_rejects: u32,
    /// Unused; kept for struct-update compatibility with real proptest.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_global_rejects: 4096, max_local_rejects: 65_536 }
    }
}

impl ProptestConfig {
    /// A default configuration overriding only the case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

/// Why a single generated case did not count as a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
    /// Constructs a rejection.
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// The RNG handed to strategies. A thin deterministic wrapper so strategy
/// implementations do not depend on a concrete generator type.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the runner RNG for a named test, honouring `PROPTEST_SEED`.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra.rotate_left(32);
            }
        }
        Self(StdRng::seed_from_u64(h))
    }

    /// Uniform draw from an integer or float range.
    pub fn in_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.random_range(range)
    }

    /// Uniform draw of a primitive.
    pub fn random<T: rand::Random>(&mut self) -> T {
        self.0.random()
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.in_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                ::std::format!("assumption failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!("assertion failed: {:?} == {:?}", l, r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: {:?} == {:?}: {}",
                            l,
                            r,
                            ::std::format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!("assertion failed: {:?} != {:?}", l, r),
                    ));
                }
            }
        }
    };
}

/// Defines property tests. Each `fn` becomes a `#[test]` that generates
/// inputs from the listed strategies and runs the body until
/// `config.cases` cases pass (rejections from `prop_assume!` do not count).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(::core::stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                let outcome = {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let case = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    case()
                };
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "{}: too many prop_assume rejections ({} with {} passes)",
                                ::core::stringify!($name),
                                rejected,
                                passed
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "{}: property failed on case {}: {}",
                            ::core::stringify!($name),
                            passed,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Namespaced strategy constants, mirroring real proptest's `prop` module.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// A uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Generates `true` or `false` with equal probability.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.random()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(x in 3i32..9, y in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u64..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map((a, b) in (prop_oneof![Just(1u8), Just(2u8)], (0i32..4).prop_map(|v| v * 2))) {
            prop_assert!(a == 1 || a == 2);
            prop_assert!(b % 2 == 0 && b < 8);
        }

        #[test]
        fn assume_rejects_cleanly(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn config_is_accepted(x in 0u8..=255) {
            let _ = x;
        }
    }
}
