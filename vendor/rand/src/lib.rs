//! Offline, workspace-local stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the (small) slice of the `rand` API the workspace
//! uses: the [`Rng`] core trait, the [`RngExt`] convenience extension
//! (`random`, `random_range`), [`SeedableRng`], a deterministic
//! [`rngs::StdRng`] built on xoshiro256**, and [`seq::SliceRandom`] for
//! Fisher-Yates shuffles.
//!
//! Determinism is part of the contract: every generator in the workspace is
//! seeded explicitly, and experiment tables must be exactly reproducible, so
//! `StdRng` here is a fixed, documented algorithm rather than an opaque
//! platform RNG. Swap this crate for crates-io `rand` by editing the
//! workspace `[workspace.dependencies]` entry when network access exists;
//! streams will differ but every consumer only relies on determinism, not on
//! specific values.

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`]'s raw words.
pub trait Random: Sized {
    /// Draws one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo draw; bias is < 2^-64 per draw for the span sizes
                // this workspace uses, which is irrelevant for synthetic data.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::random(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // The closed upper endpoint has measure zero; reuse the half-open
        // draw, which every workspace consumer treats as "roughly uniform".
        lo + f64::random(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one uniformly distributed value of type `T`.
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws one value uniformly from `range`.
    #[inline]
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256** generator. Stands in for `rand`'s
    /// `StdRng`; the stream differs from crates-io `rand`, but all workspace
    /// consumers rely only on determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher-Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(3..=4u64);
            assert!(v == 3 || v == 4);
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
