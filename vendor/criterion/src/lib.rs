//! Offline, workspace-local stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkId`], benchmark groups, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! median-of-samples wall-clock harness instead of criterion's full
//! statistical machinery.
//!
//! Every measurement prints one line:
//!
//! ```text
//! bench: <group>/<name>/<param> ... <ns>/iter (<iters> iters x <samples> samples)
//! ```
//!
//! and, when the `BENCH_JSON` environment variable names a file, appends a
//! JSON line `{"name": ..., "ns_per_iter": ..., "iters_per_sec": ...}` so
//! perf PRs can diff machine-readable trajectories (see
//! `crates/bench/src/bin/run_all.rs`, which assembles `BENCH_core.json`).

use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Builds an id from a parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement handle passed to bench closures.
pub struct Bencher {
    /// Filled in by [`Bencher::iter`]: median nanoseconds per iteration.
    result_ns: f64,
    iters: u64,
    samples: u32,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iteration across samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the iteration count until one sample takes >= 2 ms
        // (or the count gets large); this amortizes timer overhead.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed().as_nanos();
            if elapsed >= 2_000_000 || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        self.result_ns = per_iter[per_iter.len() / 2];
        self.iters = iters;
    }
}

fn record(full_name: &str, ns_per_iter: f64, iters: u64, samples: u32) {
    println!("bench: {full_name} ... {ns_per_iter:.1} ns/iter ({iters} iters x {samples} samples)");
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if !path.is_empty() {
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"name\":\"{full_name}\",\"ns_per_iter\":{ns_per_iter:.1},\"iters_per_sec\":{:.1}}}",
                1.0e9 / ns_per_iter.max(1e-9),
            );
            if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                let _ = writeln!(f, "{line}");
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark (criterion's
    /// `sample_size`; clamped to at least 3 here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u32).max(3);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { result_ns: 0.0, iters: 0, samples: self.samples };
        f(&mut b, input);
        record(&format!("{}/{}", self.name, id), b.result_ns, b.iters, b.samples);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { result_ns: 0.0, iters: 0, samples: self.samples };
        f(&mut b);
        record(&format!("{}/{}", self.name, id), b.result_ns, b.iters, b.samples);
        self
    }

    /// Ends the group (printing is immediate; this exists for API parity).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
pub struct Criterion {
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: 11 }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup { name: name.into(), samples, _parent: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { result_ns: 0.0, iters: 0, samples: self.samples };
        f(&mut b);
        record(name, b.result_ns, b.iters, b.samples);
        self
    }
}

/// Re-export of [`std::hint::black_box`] for parity with criterion.
pub use std::hint::black_box;

/// Declares a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("test_group");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
