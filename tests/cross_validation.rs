//! Randomized cross-validation of MOCHE against the brute-force oracle at
//! the workspace level (the core crate has its own proptest suite; this
//! one exercises the public facade and mixes in real-valued data with
//! ties).

use moche::core::brute_force::{brute_force_explain, BruteForceLimits};
use moche::{KsConfig, Moche, MocheError, PreferenceList};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a small random instance biased toward failing tests: integer
/// grid values with a shift, occasionally with decimal jitter to mix ties
/// and non-ties.
fn random_instance(rng: &mut StdRng) -> (Vec<f64>, Vec<f64>) {
    let n = rng.random_range(6..18);
    let m = rng.random_range(4..9);
    let shift = rng.random_range(2..6) as f64;
    let jitter = rng.random::<bool>();
    let grid = |rng: &mut StdRng| -> f64 {
        let v = rng.random_range(0..6) as f64;
        if jitter {
            v + (rng.random_range(0..2) as f64) * 0.5
        } else {
            v
        }
    };
    let r: Vec<f64> = (0..n).map(|_| grid(rng)).collect();
    let t: Vec<f64> = (0..m).map(|_| grid(rng) + shift).collect();
    (r, t)
}

#[test]
fn facade_matches_brute_force_on_many_random_instances() {
    let mut rng = StdRng::seed_from_u64(0xBF0C);
    let mut validated = 0usize;
    for round in 0..400 {
        let (r, t) = random_instance(&mut rng);
        let alpha = [0.05, 0.1, 0.2][round % 3];
        let cfg = KsConfig::new(alpha).unwrap();
        let moche = Moche::new(alpha).unwrap();
        if !moche.test(&r, &t).unwrap().rejected {
            continue;
        }
        let pref = PreferenceList::random(t.len(), round as u64);
        let fast = match moche.explain(&r, &t, &pref) {
            Ok(e) => e,
            Err(MocheError::NoExplanation { .. }) => continue,
            Err(other) => panic!("unexpected error {other:?}"),
        };
        let slow = brute_force_explain(&r, &t, &cfg, &pref, BruteForceLimits::default())
            .expect("brute force must agree an explanation exists");
        let mut a = fast.indices().to_vec();
        let mut b = slow.indices;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "round {round}: r = {r:?}, t = {t:?}, L = {:?}", pref.as_order());
        validated += 1;
    }
    assert!(validated >= 100, "only {validated} failing instances validated");
}

#[test]
fn explanation_sizes_match_brute_force_minimum() {
    let mut rng = StdRng::seed_from_u64(0x517E);
    let mut validated = 0usize;
    for round in 0..150 {
        let (r, t) = random_instance(&mut rng);
        let cfg = KsConfig::new(0.1).unwrap();
        let moche = Moche::new(0.1).unwrap();
        if !moche.test(&r, &t).unwrap().rejected {
            continue;
        }
        let Ok(size) = moche.explanation_size(&r, &t) else { continue };
        let pref = PreferenceList::identity(t.len());
        let bf = brute_force_explain(&r, &t, &cfg, &pref, BruteForceLimits::default()).unwrap();
        assert_eq!(size.k, bf.indices.len(), "round {round}");
        assert!(size.k_hat <= size.k);
        validated += 1;
    }
    assert!(validated >= 40, "only {validated} instances validated");
}
