//! Integration tests for the two extension crates working against the
//! generated datasets: the streaming monitor consuming NAB-like series, and
//! the 2-D explainers on synthetic bivariate drift.

use moche::data::dist::normal;
use moche::data::nab::{generate_family, NabFamily};
use moche::data::rng::rng_from_seed;
use moche::multidim::{ks2d_test, GreedyImpact2d, GreedyPrefix2d, Ks2dConfig, Point2};
use moche::stream::{DriftMonitor, MonitorConfig, MonitorEvent};
use moche::{ks_statistic, KsConfig};

#[test]
fn monitor_consumes_nab_series_and_agrees_with_batch_checks() {
    // Feed an ART series (which contains genuine distribution drifts)
    // through the monitor without resets and verify every emitted statistic
    // against a batch recomputation of the same windows.
    let series = &generate_family(NabFamily::Art, 2021)[0];
    let w = 120;
    let mut cfg = MonitorConfig::new(w, 0.05);
    cfg.reset_on_drift = false;
    cfg.explain_on_drift = false;
    let mut monitor = DriftMonitor::new(cfg).unwrap();

    let mut checked = 0usize;
    let mut alarms = 0usize;
    for (i, &x) in series.values.iter().enumerate().take(2_000) {
        let event = monitor.push(x);
        if i + 1 < 2 * w {
            continue;
        }
        let lo = i + 1 - 2 * w;
        let batch =
            ks_statistic(&series.values[lo..lo + w], &series.values[lo + w..i + 1]).unwrap();
        let stat = match event {
            MonitorEvent::Stable { outcome } => outcome.statistic,
            MonitorEvent::Drift { outcome, .. } => {
                alarms += 1;
                outcome.statistic
            }
            MonitorEvent::Warming { .. } => panic!("past warm-up at i = {i}"),
        };
        assert!((stat - batch).abs() < 1e-12, "i = {i}: {stat} vs {batch}");
        checked += 1;
    }
    assert!(checked > 1_000);
    assert!(alarms > 0, "an ART drift series should raise alarms");
    assert_eq!(alarms as u64, monitor.alarms());
}

#[test]
fn monitor_explanations_reverse_their_alarms() {
    let series = &generate_family(NabFamily::Art, 7)[1];
    let w = 100;
    let mut monitor = DriftMonitor::new(MonitorConfig::new(w, 0.05)).unwrap();
    let ks = KsConfig::new(0.05).unwrap();
    let mut explained = 0usize;
    for &x in series.values.iter().take(3_000) {
        if let MonitorEvent::Drift { explanation, outcome, .. } = monitor.push(x) {
            assert!(outcome.rejected);
            if let Some(e) = explanation {
                assert!(e.outcome_after.passes());
                assert!(e.size() <= w);
                assert!(e.k_hat() <= e.size());
                explained += 1;
            }
        }
    }
    assert!(explained > 0, "expected at least one explained alarm");
    let _ = ks; // silence if unused in cfg-dependent paths
}

#[test]
fn bivariate_drift_is_detected_and_explained() {
    // Correlated Gaussian reference; test adds a mean-shifted cluster.
    let mut rng = rng_from_seed(31);
    let sample = |rng: &mut _, dx: f64, dy: f64| {
        let x = normal(rng, 0.0, 1.0);
        let y = 0.6 * x + normal(rng, 0.0, 0.8);
        Point2::new(x + dx, y + dy)
    };
    let reference: Vec<Point2> = (0..250).map(|_| sample(&mut rng, 0.0, 0.0)).collect();
    let mut test: Vec<Point2> = (0..140).map(|_| sample(&mut rng, 0.0, 0.0)).collect();
    for _ in 0..35 {
        test.push(sample(&mut rng, 6.0, -6.0));
    }

    let cfg = Ks2dConfig::new(0.05).unwrap();
    let outcome = ks2d_test(&reference, &test, &cfg).unwrap();
    assert!(outcome.rejected, "{outcome:?}");

    let prefix = GreedyPrefix2d.explain(&reference, &test, &cfg, None).unwrap();
    let impact = GreedyImpact2d.explain(&reference, &test, &cfg, None).unwrap();
    for e in [&prefix, &impact] {
        assert!(e.outcome_after.passes());
        assert!(!e.indices.is_empty());
    }
    // With overlapping Gaussians the statistic can be reduced by boundary
    // points too, so the impact explainer is only expected to hit the
    // injected cluster (indices 140+, base rate 20% of the test set) well
    // above chance — not exclusively.
    let hits = impact.indices.iter().filter(|&&i| i >= 140).count();
    assert!(
        hits * 10 >= impact.size() * 4,
        "{hits} of {} selected points in the cluster (base rate 20%)",
        impact.size()
    );
    assert!(impact.size() <= 70, "impact explanation unexpectedly large: {}", impact.size());
}

#[test]
fn one_dimensional_and_two_dimensional_results_are_consistent() {
    // Project a 2-D drift onto x: if the x-marginal alone fails the 1-D
    // test, the 2-D test must fail as well (it sees strictly more
    // structure) on this cluster-shift construction.
    let mut rng = rng_from_seed(57);
    let reference: Vec<Point2> = (0..200)
        .map(|_| Point2::new(normal(&mut rng, 0.0, 1.0), normal(&mut rng, 0.0, 1.0)))
        .collect();
    let test: Vec<Point2> = (0..200)
        .map(|_| Point2::new(normal(&mut rng, 2.0, 1.0), normal(&mut rng, 0.0, 1.0)))
        .collect();

    let ks1 = KsConfig::new(0.05).unwrap();
    let rx: Vec<f64> = reference.iter().map(|p| p.x).collect();
    let tx: Vec<f64> = test.iter().map(|p| p.x).collect();
    let d1 = moche::ks_test(&rx, &tx, &ks1).unwrap();
    assert!(d1.rejected, "x-marginal must fail: {d1:?}");

    let cfg2 = Ks2dConfig::new(0.05).unwrap();
    let d2 = ks2d_test(&reference, &test, &cfg2).unwrap();
    assert!(d2.rejected, "2-D test must also fail: {d2:?}");
    // The 2-D statistic dominates the marginal deviation on quadrants that
    // align with the shift direction (not exactly comparable, but the same
    // order of magnitude).
    assert!(d2.statistic > 0.5 * d1.statistic);
}
