//! Failure-injection tests across every public entry point of the
//! workspace: malformed inputs (NaN, infinities, empties, mismatched
//! lengths, out-of-range parameters) must produce typed errors or
//! documented panics — never wrong answers or unwinds from deep inside the
//! algorithms.

use moche::baselines::{ExplainRequest, Greedy, KsExplainer, MocheExplainer, D3};
use moche::core::error::{MocheError, SetKind};
use moche::multidim::{ks2d_test, GreedyPrefix2d, Ks2dConfig, Point2};
use moche::stream::{DriftMonitor, MonitorConfig};
use moche::{ks_statistic, ks_test, KsConfig, Moche, PreferenceList};

const BAD_VALUES: [f64; 3] = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];

#[test]
fn core_rejects_non_finite_values_everywhere() {
    let good = vec![1.0, 2.0, 3.0, 4.0];
    for bad in BAD_VALUES {
        let poisoned = vec![1.0, bad, 3.0];
        // Statistic and test.
        assert!(matches!(
            ks_statistic(&poisoned, &good),
            Err(MocheError::NonFiniteValue { which: SetKind::Reference, index: 1, .. })
        ));
        assert!(matches!(
            ks_statistic(&good, &poisoned),
            Err(MocheError::NonFiniteValue { which: SetKind::Test, index: 1, .. })
        ));
        // Full explain path.
        let moche = Moche::new(0.05).unwrap();
        let pref = PreferenceList::identity(3);
        assert!(moche.explain(&poisoned, &poisoned, &pref).is_err());
        assert!(moche.explanation_size(&good, &poisoned).is_err());
    }
}

#[test]
fn core_rejects_empty_and_mismatched_inputs() {
    let cfg = KsConfig::new(0.05).unwrap();
    assert!(matches!(ks_test(&[], &[1.0], &cfg), Err(MocheError::EmptyReference)));
    assert!(matches!(ks_test(&[1.0], &[], &cfg), Err(MocheError::EmptyTest)));

    let moche = Moche::new(0.05).unwrap();
    let r: Vec<f64> = (0..30).map(f64::from).collect();
    let t: Vec<f64> = (0..10).map(|i| f64::from(i) + 100.0).collect();
    // Mismatched preference.
    let short = PreferenceList::identity(5);
    assert!(matches!(
        moche.explain(&r, &t, &short),
        Err(MocheError::PreferenceLengthMismatch { expected: 10, actual: 5 })
    ));
    // Mismatched score vector.
    assert!(moche.explain_with_scores(&r, &t, &[1.0, 2.0]).is_err());
}

#[test]
fn alpha_validation_is_uniform() {
    for alpha in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
        assert!(Moche::new(alpha).is_err(), "alpha = {alpha}");
        assert!(KsConfig::new(alpha).is_err(), "alpha = {alpha}");
        assert!(Ks2dConfig::new(alpha).is_err(), "alpha = {alpha}");
        assert!(DriftMonitor::new(MonitorConfig::new(10, alpha)).is_err(), "alpha = {alpha}");
    }
}

#[test]
fn baselines_survive_degenerate_but_valid_inputs() {
    let cfg = KsConfig::new(0.05).unwrap();
    // Tiny test set, huge shift: valid input, must either explain or abort
    // cleanly — never panic.
    let r: Vec<f64> = (0..50).map(f64::from).collect();
    let t = vec![1e6, 2e6];
    let pref = PreferenceList::identity(2);
    let req =
        ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: Some(&pref), seed: 1 };
    for method in [
        Box::new(MocheExplainer::default()) as Box<dyn KsExplainer>,
        Box::new(Greedy),
        Box::new(D3::default()),
    ] {
        let _ = method.explain(&req); // may be Some or None; must not panic
    }
}

#[test]
fn multidim_rejects_bad_points_and_sides() {
    let cfg = Ks2dConfig::new(0.05).unwrap();
    let good: Vec<Point2> =
        (0..20).map(|i| Point2::new(f64::from(i % 5), f64::from(i % 4))).collect();
    for bad in BAD_VALUES {
        let poisoned = vec![Point2::new(bad, 0.0)];
        assert!(ks2d_test(&poisoned, &good, &cfg).is_err());
        assert!(ks2d_test(&good, &poisoned, &cfg).is_err());
        assert!(GreedyPrefix2d.explain(&poisoned, &good, &cfg, None).is_err());
    }
    assert!(matches!(ks2d_test(&[], &good, &cfg), Err(MocheError::EmptyReference)));
    assert!(matches!(ks2d_test(&good, &[], &cfg), Err(MocheError::EmptyTest)));
}

#[test]
fn monitor_panics_are_documented_and_state_stays_valid() {
    // Non-finite observations are a documented panic (programming error at
    // the boundary), not silent corruption.
    let mut mon = DriftMonitor::new(MonitorConfig::new(10, 0.05)).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        mon.push(f64::NAN);
    }));
    assert!(result.is_err(), "NaN must panic");
}

#[test]
fn brute_force_limits_are_honoured() {
    use moche::core::brute_force::{brute_force_explain, BruteForceLimits};
    let cfg = KsConfig::new(0.05).unwrap();
    // 20 shifted points: explanation needs several points; a 1-check budget
    // must abort with LimitExceeded rather than spin.
    let r: Vec<f64> = (0..60).map(|i| f64::from(i % 6)).collect();
    let t: Vec<f64> = (0..20).map(|i| f64::from(i % 6) + 5.0).collect();
    let pref = PreferenceList::identity(20);
    let limits = BruteForceLimits { max_size: 20, max_checks: 1 };
    match brute_force_explain(&r, &t, &cfg, &pref, limits) {
        Err(MocheError::LimitExceeded { .. }) => {}
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn errors_render_and_propagate_as_std_error() {
    // Every error variant must be displayable and box into dyn Error.
    let samples: Vec<MocheError> = vec![
        MocheError::EmptyReference,
        MocheError::EmptyTest,
        MocheError::InvalidAlpha { alpha: 2.0 },
        MocheError::TestAlreadyPasses { statistic: 0.1, threshold: 0.2 },
        MocheError::NoExplanation { alpha: 0.9 },
        MocheError::LimitExceeded { checks: 5 },
        MocheError::PreferenceLengthMismatch { expected: 3, actual: 2 },
        MocheError::ConstructionIncomplete { built: 1, k: 2 },
    ];
    for e in samples {
        let boxed: Box<dyn std::error::Error> = Box::new(e.clone());
        assert!(!boxed.to_string().is_empty(), "{e:?} renders empty");
    }
}
