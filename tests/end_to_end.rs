//! Cross-crate integration tests: generated data flows through the
//! sliding-window harness into MOCHE and the baselines, and every invariant
//! the paper claims holds along the way.

use moche::baselines::{
    CornerSearch, ExplainRequest, Grace, Greedy, KsExplainer, MocheExplainer,
    Series2GraphExplainer, Stomp, D3,
};
use moche::core::brute_force::removal_reverses;
use moche::core::BaseVector;
use moche::data::nab::{generate_family, NabFamily};
use moche::data::sliding::{failed_windows, sample_failed};
use moche::data::{failing_kifer_pair, FailedTest};
use moche::sigproc::SpectralResidual;
use moche::{KsConfig, Moche, PreferenceList};

fn collect_failed_tests(count: usize) -> Vec<FailedTest> {
    let cfg = KsConfig::new(0.05).unwrap();
    let mut out = Vec::new();
    for family in [NabFamily::Art, NabFamily::Aws, NabFamily::Kc] {
        for series in generate_family(family, 77).iter().take(2) {
            let failed = failed_windows(series, 150, &cfg, 75);
            out.extend(sample_failed(failed, 2, 7));
            if out.len() >= count {
                return out;
            }
        }
    }
    out
}

#[test]
fn pipeline_produces_minimal_reversing_explanations() {
    let cfg = KsConfig::new(0.05).unwrap();
    let moche = Moche::with_config(cfg);
    let tests = collect_failed_tests(6);
    assert!(!tests.is_empty(), "generators must yield failed tests");
    for case in &tests {
        let sr = SpectralResidual::default();
        let pref = PreferenceList::from_scores_desc(&sr.scores(&case.test)).unwrap();
        let e = moche.explain(&case.reference, &case.test, &pref).unwrap();
        // Reverses.
        assert!(e.outcome_after.passes());
        // Minimal: no smaller qualified subset exists (via Theorem 1).
        let base = BaseVector::build(&case.reference, &case.test).unwrap();
        let ctx = moche::core::BoundsContext::new(&base, &cfg);
        if e.size() > 1 {
            assert!(!ctx.exists_qualified(e.size() - 1));
        }
        // k_hat is a genuine lower bound.
        assert!(e.k_hat() <= e.size());
    }
}

#[test]
fn every_baseline_output_is_verified_against_the_same_predicate() {
    let cfg = KsConfig::new(0.05).unwrap();
    let tests = collect_failed_tests(3);
    let methods: Vec<Box<dyn KsExplainer>> = vec![
        Box::new(MocheExplainer::default()),
        Box::new(Greedy),
        Box::new(D3::default()),
        Box::new(Stomp::default()),
        Box::new(Series2GraphExplainer::default()),
        Box::new(CornerSearch::default()),
        Box::new(Grace::default()),
    ];
    for case in &tests {
        let base = BaseVector::build(&case.reference, &case.test).unwrap();
        let sr = SpectralResidual::default();
        let pref = PreferenceList::from_scores_desc(&sr.scores(&case.test)).unwrap();
        for method in &methods {
            let req = ExplainRequest {
                reference: &case.reference,
                test: &case.test,
                cfg: &cfg,
                preference: Some(&pref),
                seed: 11,
            };
            if let Some(indices) = method.explain(&req) {
                assert!(
                    removal_reverses(&base, &cfg, &indices),
                    "{} returned a non-reversing explanation",
                    method.name()
                );
                // No duplicates.
                let mut sorted = indices.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), indices.len(), "{} duplicated points", method.name());
            }
        }
    }
}

#[test]
fn moche_is_never_larger_than_any_baseline() {
    let cfg = KsConfig::new(0.05).unwrap();
    let tests = collect_failed_tests(4);
    let baselines: Vec<Box<dyn KsExplainer>> = vec![
        Box::new(Greedy),
        Box::new(D3::default()),
        Box::new(Stomp::default()),
        Box::new(Series2GraphExplainer::default()),
    ];
    for case in &tests {
        let sr = SpectralResidual::default();
        let pref = PreferenceList::from_scores_desc(&sr.scores(&case.test)).unwrap();
        let req = ExplainRequest {
            reference: &case.reference,
            test: &case.test,
            cfg: &cfg,
            preference: Some(&pref),
            seed: 3,
        };
        let k = MocheExplainer::default().explain(&req).unwrap().len();
        for b in &baselines {
            if let Some(out) = b.explain(&req) {
                assert!(k <= out.len(), "{} beat the optimum: {} < {k}", b.name(), out.len());
            }
        }
    }
}

#[test]
fn synthetic_drift_explanations_target_contaminated_points() {
    // On Kifer data the contamination is ground truth: MOCHE's explanation
    // should hit it far above the base rate.
    let cfg = KsConfig::new(0.05).unwrap();
    let pair = failing_kifer_pair(3_000, 0.05, &cfg, 13, 50).unwrap();
    let moche = Moche::with_config(cfg);
    // Prefer the points most out of line with N(0, 1): |value| descending.
    let scores: Vec<f64> = pair.test.iter().map(|v| v.abs()).collect();
    let pref = PreferenceList::from_scores_desc(&scores).unwrap();
    let e = moche.explain(&pair.reference, &pair.test, &pref).unwrap();
    let contaminated: std::collections::HashSet<usize> =
        pair.contaminated.iter().copied().collect();
    let hits = e.indices().iter().filter(|i| contaminated.contains(i)).count();
    let hit_rate = hits as f64 / e.size() as f64;
    assert!(
        hit_rate > 0.5,
        "only {hits}/{} explanation points are contaminated (base rate 5%)",
        e.size()
    );
}

#[test]
fn window_provenance_allows_series_level_reporting() {
    let cfg = KsConfig::new(0.05).unwrap();
    for family in [NabFamily::Art] {
        for series in generate_family(family, 5).iter().take(1) {
            for case in failed_windows(series, 120, &cfg, 120) {
                assert_eq!(case.series_name, series.name);
                // Window contents match the series slices they claim.
                assert_eq!(
                    case.reference,
                    series.values[case.reference_start..case.reference_start + case.window]
                );
                assert_eq!(
                    case.test,
                    series.values[case.test_start..case.test_start + case.window]
                );
            }
        }
    }
}
