//! The worked examples of the paper, end to end, with exact expected
//! numbers. These are the repository's ground-truth acceptance tests.

use moche::core::bounds::BoundsContext;
use moche::core::brute_force::{brute_force_explain, BruteForceLimits};
use moche::core::phase1;
use moche::core::BaseVector;
use moche::{KsConfig, Moche, PreferenceList};

fn example_sets() -> (Vec<f64>, Vec<f64>) {
    // Example 3: T = {t1, t2, t3, t4} = {13, 13, 12, 20},
    //            R = {14, 14, 14, 14, 20, 20, 20, 20}.
    (vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0], vec![13.0, 13.0, 12.0, 20.0])
}

#[test]
fn example_3_base_vector_and_cumulative_vector() {
    let (r, t) = example_sets();
    let base = BaseVector::build(&r, &t).unwrap();
    // "The base vector V = <12, 13, 14, 20>."
    assert_eq!(base.values(), &[12.0, 13.0, 14.0, 20.0]);
    // "For a subset S = {13, 13} of T, the cumulative vector is
    //  C_S = <0, 0, 2, 2, 2>."
    let s = moche::core::SubsetCounts::from_test_indices(&base, &[0, 1]);
    let c = s.cumulative();
    assert_eq!((0..=4).map(|i| c.get(i)).collect::<Vec<_>>(), vec![0, 0, 2, 2, 2]);
}

#[test]
fn example_4_failure_and_size() {
    let (r, t) = example_sets();
    let cfg = KsConfig::new(0.3).unwrap();
    let base = BaseVector::build(&r, &t).unwrap();
    // "One can verify that the reference set and the test set in Example 3
    //  fail the KS test with significance level 0.3."
    assert!(base.outcome(&cfg).rejected);
    // "there does not exist a qualified 1-cumulative vector ... there
    //  exists a qualified 2-cumulative vector ... the explanation size
    //  k = 2."
    let ctx = BoundsContext::new(&base, &cfg);
    assert!(!ctx.exists_qualified(1));
    assert!(ctx.exists_qualified(2));
    assert_eq!(phase1::find_size(&ctx, 0.3).unwrap().k, 2);
}

#[test]
fn example_5_binary_searched_lower_bound() {
    let (r, t) = example_sets();
    let cfg = KsConfig::new(0.3).unwrap();
    let base = BaseVector::build(&r, &t).unwrap();
    let ctx = BoundsContext::new(&base, &cfg);
    // "h = 2 satisfies Theorem 2 ... h = 1 does not ... k_hat = 2."
    assert!(ctx.necessary_condition(2));
    assert!(!ctx.necessary_condition(1));
    let (k_hat, _) = phase1::lower_bound(&ctx);
    assert_eq!(k_hat, Some(2));
}

#[test]
fn example_6_construction() {
    let (r, t) = example_sets();
    // "Suppose a user provides a preference list L = [t4, t3, t2, t1]."
    let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
    let moche = Moche::new(0.3).unwrap();
    let e = moche.explain(&r, &t, &pref).unwrap();
    // "I = {t3, t2} is the most comprehensible explanation."
    assert_eq!(e.indices(), &[2, 1]);
    assert_eq!(e.values(), &[12.0, 13.0]);
    assert!(e.outcome_after.passes());
}

#[test]
fn example_6_agrees_with_brute_force() {
    let (r, t) = example_sets();
    let cfg = KsConfig::new(0.3).unwrap();
    let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
    let bf = brute_force_explain(&r, &t, &cfg, &pref, BruteForceLimits::default()).unwrap();
    assert_eq!(bf.indices, vec![2, 1]);
}

#[test]
fn proposition_1_existence_for_practical_alpha() {
    // "2/e^2 > 0.27, which is far over the range of significance levels
    //  used in statistical tests."
    let guarantee = moche::core::ALPHA_EXISTENCE_GUARANTEE;
    assert!(guarantee > 0.27);
    // For alpha = 0.05 every failed test in a broad family of instances
    // must have an explanation.
    let moche_005 = Moche::new(0.05).unwrap();
    for shift in 1..6 {
        let r: Vec<f64> = (0..40).map(|i| f64::from(i % 8)).collect();
        let t: Vec<f64> = (0..25).map(|i| f64::from(i % 8 + shift)).collect();
        if moche_005.test(&r, &t).unwrap().rejected {
            let pref = PreferenceList::identity(t.len());
            let e = moche_005.explain(&r, &t, &pref).unwrap();
            assert!(e.outcome_after.passes(), "shift = {shift}");
        }
    }
}

#[test]
fn motivation_example_covid_shapes() {
    // Example 1/2's headline numbers on the synthetic twin: the sets fail
    // at alpha = 0.05 and both preference lists give the same size.
    use moche::data::CovidDataset;
    let ds = CovidDataset::generate(1);
    let moche = Moche::new(0.05).unwrap();
    let r = ds.reference_values();
    let t = ds.test_values();
    assert_eq!(r.len(), 2175);
    assert_eq!(t.len(), 3375);
    assert!(moche.test(&r, &t).unwrap().rejected);
    let e_p = moche.explain(&r, &t, &ds.preference_by_population()).unwrap();
    let e_a = moche.explain(&r, &t, &ds.preference_by_age()).unwrap();
    assert_eq!(e_p.size(), e_a.size());
    // "Both I_a and I_p include 291 data points" — the twin is calibrated
    // to land close to that.
    assert!((230..=340).contains(&e_p.size()), "size = {}", e_p.size());
}
