//! Fleet benchmarks: the `moche serve` ingest path at daemon scale.
//!
//! Round-robin pushes across 1k and 100k independent series (every push
//! hits a different shard and a cold per-series state — the cache
//! behaviour a multiplexing daemon actually sees, unlike the hot
//! single-monitor loop in `monitor_alarm.rs`), plus the crash-recovery
//! path: per-shard checkpoint write and `resume_from_dir`. The fleet
//! construction and stream shape are shared with the `BENCH_core.json`
//! evidence suite (`moche_bench::perf::warmed_fleet`), so the criterion
//! numbers and the perf-gate evidence can never drift apart.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moche_bench::perf::{monitor_observation, warmed_fleet};
use moche_stream::MonitorFleet;
use std::hint::black_box;

fn bench_fleet_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_push");
    for &(series, w) in &[(1_000u64, 64usize), (100_000, 8)] {
        let (mut fleet, mut round) = warmed_fleet(series, w, 4);
        let mut id = 0u64;
        group.bench_with_input(BenchmarkId::new("steady", series), &series, |b, _| {
            b.iter(|| {
                let event = fleet
                    .push(black_box(id), black_box(monitor_observation(round, w, false)))
                    .expect("finite");
                black_box(&event);
                id += 1;
                if id == series {
                    id = 0;
                    round += 1;
                }
            })
        });
        assert_eq!(fleet.stats().view().alarms, 0, "the stationary fleet must never alarm");
    }
    group.finish();
}

fn bench_fleet_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_recovery");
    group.sample_size(10);
    let (fleet, _) = warmed_fleet(1_000, 64, 4);
    let cfg = *fleet.config();
    let dir = std::env::temp_dir().join("moche-criterion-fleet-resume");
    let _ = std::fs::remove_dir_all(&dir);
    group.bench_with_input(BenchmarkId::new("checkpoint", 1_000u64), &1_000u64, |b, _| {
        b.iter(|| fleet.checkpoint_dir(black_box(&dir)).expect("checkpoint"))
    });
    group.bench_with_input(BenchmarkId::new("resume", 1_000u64), &1_000u64, |b, _| {
        b.iter(|| {
            let resumed = MonitorFleet::resume_from_dir(cfg, black_box(&dir)).expect("resume");
            assert_eq!(resumed.series_count(), 1_000);
            black_box(resumed)
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(benches, bench_fleet_push, bench_fleet_recovery);
criterion_main!(benches);
