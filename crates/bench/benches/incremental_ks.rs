//! Ablation bench for the streaming extension: sliding a paired KS window
//! with the incremental treap (`O(log w)` per observation) against
//! recomputing the batch statistic at every slide (`O(w log w)` per
//! observation). The gap is what makes the monitor deployable at high
//! ingest rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moche_core::ks_statistic;
use moche_data::dist::normal;
use moche_data::rng::rng_from_seed;
use moche_stream::{IncrementalKs, ObsId};
use std::hint::black_box;

fn stream_of(len: usize) -> Vec<f64> {
    let mut rng = rng_from_seed(99);
    (0..len).map(|_| normal(&mut rng, 0.0, 1.0)).collect()
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_vs_batch_slide");
    group.sample_size(10);
    for &w in &[500usize, 2_000, 8_000] {
        let slides = 200usize;
        let series = stream_of(2 * w + slides);

        group.bench_with_input(BenchmarkId::new("batch_recompute", w), &w, |b, _| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for s in 0..slides {
                    let r = &series[s..s + w];
                    let t = &series[s + w..s + 2 * w];
                    acc += ks_statistic(black_box(r), black_box(t)).unwrap();
                }
                acc
            })
        });

        group.bench_with_input(BenchmarkId::new("incremental_treap", w), &w, |b, _| {
            b.iter(|| {
                let mut iks = IncrementalKs::new();
                let mut ref_ids: Vec<ObsId> =
                    series[..w].iter().map(|&v| iks.insert_reference(v)).collect();
                let mut test_ids: Vec<ObsId> =
                    series[w..2 * w].iter().map(|&v| iks.insert_test(v)).collect();
                let mut acc = iks.statistic().unwrap();
                for s in 0..slides {
                    // Promote the oldest test point to the reference side
                    // and admit the next observation: two O(log w) slides.
                    let promoted_value = series[w + s];
                    let new_ref = iks.slide_reference(ref_ids.remove(0), promoted_value).unwrap();
                    ref_ids.push(new_ref);
                    let new_test = iks.slide_test(test_ids.remove(0), series[2 * w + s]).unwrap();
                    test_ids.push(new_test);
                    acc += iks.statistic().unwrap();
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
