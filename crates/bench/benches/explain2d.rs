//! Criterion twins of the `ks2d/*` and `explain2d/*` evidence entries:
//! the rank-space Fasano-Franceschini statistic against the naive rescan,
//! and the warm [`Explain2dEngine`] + [`Explanation2dArena`] pair against
//! the allocating naive impact descent — over the identical
//! [`contaminated2d`] workload `BENCH_core.json` gates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moche_bench::perf::contaminated2d;
use moche_multidim::{
    ks2d_statistic, ks2d_statistic_indexed, Explain2dEngine, Explanation2dArena, GreedyImpact2d,
    Ks2dConfig, RankIndex2d, Scratch2d,
};
use std::hint::black_box;

fn bench_explain2d(c: &mut Criterion) {
    let (reference, window) = contaminated2d();
    let cfg = Ks2dConfig::new(0.05).unwrap();
    let index = RankIndex2d::new(&reference).unwrap();

    let mut group = c.benchmark_group("ks2d");
    group.bench_function(BenchmarkId::new("statistic_naive", "n120_m85"), |b| {
        b.iter(|| ks2d_statistic(black_box(&reference), &window).unwrap());
    });
    let mut scratch = Scratch2d::new();
    group.bench_function(BenchmarkId::new("statistic_indexed", "n120_m85"), |b| {
        b.iter(|| ks2d_statistic_indexed(black_box(&index), &window, &mut scratch).unwrap());
    });
    group.finish();

    let mut group = c.benchmark_group("explain2d");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("naive_impact", "n120_m85"), |b| {
        b.iter(|| GreedyImpact2d.explain(black_box(&reference), &window, &cfg, None).unwrap());
    });
    let mut engine = Explain2dEngine::with_config(cfg);
    let mut arena = Explanation2dArena::new();
    group.bench_function(BenchmarkId::new("engine_arena", "n120_m85"), |b| {
        b.iter(|| {
            let e = engine.explain_in(black_box(&index), &window, None, &mut arena).unwrap();
            let k = e.size();
            arena.recycle(e);
            k
        });
    });
    group.finish();
}

criterion_group!(benches, bench_explain2d);
criterion_main!(benches);
