//! Monitor benchmarks: the steady-state slide cost (`O(log w)` per
//! observation) and the alarm cost, before/after the incremental reference
//! index.
//!
//! "Before" is the PR-4-era alarm body — re-sort the reference window into
//! the index (`ReferenceIndex::rebuild_from`, `O(w log w)`) and run the
//! allocating `SpectralResidual::scores` — replayed on equivalent windows;
//! "after" is [`DriftMonitor::explain_current`]: the incrementally
//! maintained order statistics re-synced without sorting (delta patching)
//! plus the scratch-backed `scores_into`, zero heap allocations once warm.
//! The stream shape and the replay body are shared with the
//! `BENCH_core.json` evidence suite (`moche_bench::perf`), so the two
//! measurements can never drift apart.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moche_bench::perf::{
    alarm_explain_iteration, alarm_size_iteration, alarmed_monitor, monitor_observation,
    RebuildAlarmReplay,
};
use moche_stream::{DriftMonitor, MonitorConfig};
use std::hint::black_box;

fn bench_steady_state_slides(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_steady_state");
    for &w in &[1_000usize, 10_000] {
        let mut cfg = MonitorConfig::new(w, 0.05);
        cfg.reset_on_drift = false;
        cfg.explain_on_drift = false;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        let mut i = 0usize;
        for _ in 0..2 * w {
            mon.push(monitor_observation(i, w, false));
            i += 1;
        }
        group.bench_with_input(BenchmarkId::new("push", w), &w, |b, _| {
            b.iter(|| {
                // Stationary stream: three O(log w) treap slides plus the
                // O(1) decision, never an alarm.
                let event = mon.push(black_box(monitor_observation(i, w, false)));
                i += 1;
                black_box(&event);
            })
        });
    }
    group.finish();
}

fn bench_alarm_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_alarm");
    group.sample_size(10);
    for &w in &[1_000usize, 10_000] {
        // After: the monitor's incremental alarm path (no sort, recycled
        // scratch end to end). Each iteration slides once first, so the
        // index re-materialization is honestly re-done per alarm; the
        // helper re-seeds the monitor on the rare iteration where the
        // drift has fully traversed the window pair.
        let mut mon = alarmed_monitor(w);
        let mut at = 2 * w;
        group.bench_with_input(BenchmarkId::new("explain_incremental", w), &w, |b, _| {
            b.iter(|| black_box(alarm_explain_iteration(&mut mon, &mut at, w)))
        });
        let mut sized = alarmed_monitor(w);
        let mut at = 2 * w;
        group.bench_with_input(BenchmarkId::new("size_only_incremental", w), &w, |b, _| {
            b.iter(|| black_box(alarm_size_iteration(&mut sized, &mut at, w)))
        });

        // Before: the per-alarm flatten + reference re-sort plus the
        // allocating Spectral Residual, on equivalent windows.
        let mut replay = RebuildAlarmReplay::new(&alarmed_monitor(w));
        group.bench_with_input(BenchmarkId::new("explain_rebuild_sorted", w), &w, |b, _| {
            b.iter(|| black_box(replay.alarm_once()))
        });
    }
    group.finish();
}

fn bench_checkpoint_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_checkpoint");
    for &w in &[1_000usize, 10_000] {
        // The cost of one `--checkpoint` firing: snapshot the full state,
        // encode + CRC it, write atomically (temp + fsync + rename). Sets
        // the floor for a sensible `--checkpoint-every` cadence.
        let mon = alarmed_monitor(w);
        let path = std::env::temp_dir().join(format!("moche-crit-checkpoint-{w}.snap"));
        group.bench_with_input(BenchmarkId::new("write_atomic", w), &w, |b, _| {
            b.iter(|| mon.checkpoint(black_box(&path)).expect("checkpoint write"))
        });
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

criterion_group!(benches, bench_steady_state_slides, bench_alarm_paths, bench_checkpoint_write);
criterion_main!(benches);
