//! Microbenchmarks of the KS-test primitives MOCHE is built from:
//! statistic computation, base-vector construction, and the Theorem-1/2
//! existence checks (each `O(n + m)` by design — these benches verify the
//! constants are small).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moche_core::base_vector::BaseVector;
use moche_core::bounds::{BoundsContext, BoundsWorkspace};
use moche_core::{ks_statistic, KsConfig, SortedReference};
use moche_data::kifer_pair;
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let cfg = KsConfig::new(0.05).unwrap();
    let mut group = c.benchmark_group("ks_primitives");
    for &w in &[1_000usize, 10_000] {
        let pair = kifer_pair(w, 0.03, 42);

        group.bench_with_input(BenchmarkId::new("ks_statistic", w), &w, |b, _| {
            b.iter(|| ks_statistic(black_box(&pair.reference), black_box(&pair.test)).unwrap())
        });

        group.bench_with_input(BenchmarkId::new("base_vector_build", w), &w, |b, _| {
            b.iter(|| BaseVector::build(black_box(&pair.reference), black_box(&pair.test)).unwrap())
        });

        // Shared-reference fast path: the per-window build when R is
        // already sorted and validated (the batch workload's inner loop).
        let shared = SortedReference::new(&pair.reference).unwrap();
        group.bench_with_input(BenchmarkId::new("base_vector_build_shared_ref", w), &w, |b, _| {
            b.iter(|| {
                BaseVector::build_with_reference(black_box(&shared), black_box(&pair.test)).unwrap()
            })
        });

        let base = BaseVector::build(&pair.reference, &pair.test).unwrap();
        group.bench_with_input(BenchmarkId::new("statistic_from_counts", w), &w, |b, _| {
            b.iter(|| black_box(&base).statistic())
        });

        let ctx = BoundsContext::new(&base, &cfg);
        let h = w / 20;
        group.bench_with_input(BenchmarkId::new("theorem1_exists_qualified", w), &w, |b, _| {
            b.iter(|| ctx.exists_qualified(black_box(h)))
        });
        group.bench_with_input(BenchmarkId::new("theorem2_necessary", w), &w, |b, _| {
            b.iter(|| ctx.necessary_condition(black_box(h)))
        });

        // Full bound vectors: the seed's allocating HBounds path against the
        // interleaved, allocation-free workspace path.
        group.bench_with_input(BenchmarkId::new("bounds_compute_alloc", w), &w, |b, _| {
            b.iter(|| ctx.compute(black_box(h)))
        });
        let mut ws = BoundsWorkspace::new();
        ctx.compute_into(h, &mut ws); // warm the buffers
        group.bench_with_input(BenchmarkId::new("bounds_compute_workspace", w), &w, |b, _| {
            b.iter(|| ctx.compute_into(black_box(h), &mut ws))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
