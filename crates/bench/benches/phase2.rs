//! Ablation bench for Phase 2: the incremental backward-pass maintenance
//! (this repo's optimization, `DESIGN.md` §6) against the paper-faithful
//! full backward pass per candidate. Both produce identical explanations
//! (enforced by tests); this bench quantifies the saved work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moche_core::base_vector::BaseVector;
use moche_core::bounds::{BoundsContext, BoundsWorkspace};
use moche_core::phase1::find_size;
use moche_core::phase2::{construct, construct_reference, construct_with};
use moche_core::{KsConfig, PreferenceList};
use moche_data::failing_kifer_pair;
use std::hint::black_box;

fn bench_phase2(c: &mut Criterion) {
    let cfg = KsConfig::new(0.05).unwrap();
    let mut group = c.benchmark_group("phase2_construction");
    group.sample_size(20);
    for &w in &[1_000usize, 5_000] {
        let pair = failing_kifer_pair(w, 0.03, &cfg, 7, 100).expect("must fail");
        let base = BaseVector::build(&pair.reference, &pair.test).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let k = find_size(&ctx, 0.05).unwrap().k;
        let pref = PreferenceList::random(w, 13);
        let order = pref.as_order();

        group.bench_with_input(BenchmarkId::new("incremental", w), &w, |b, _| {
            b.iter(|| construct(black_box(&base), &cfg, k, order).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("paper_reference", w), &w, |b, _| {
            b.iter(|| construct_reference(black_box(&base), &cfg, k, order).unwrap())
        });
        // Scratch reuse on top of the incremental maintenance: steady-state
        // construction with zero transient allocations.
        let mut ws = BoundsWorkspace::new();
        group.bench_with_input(BenchmarkId::new("incremental_workspace", w), &w, |b, _| {
            b.iter(|| construct_with(black_box(&base), &cfg, k, order, &mut ws).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phase2);
criterion_main!(benches);
