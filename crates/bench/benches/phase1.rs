//! Ablation benches for Phase 1: the paper's MOCHE vs MOCHE_ns comparison
//! (Section 6.4) — the Theorem-2 binary-searched lower bound against the
//! plain Theorem-1 scan from `h = 1` — plus the wavefront size search
//! against the scalar binary search, and the fused multi-probe kernel
//! against per-probe scalar scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moche_core::base_vector::BaseVector;
use moche_core::bounds::BoundsContext;
use moche_core::phase1::{
    find_size, find_size_no_lower_bound, find_size_wavefront, WAVEFRONT_PROBES,
};
use moche_core::KsConfig;
use moche_data::{failing_kifer_pair, DriftPair};
use std::hint::black_box;

fn failing_pair(w: usize) -> DriftPair {
    let cfg = KsConfig::new(0.05).unwrap();
    failing_kifer_pair(w, 0.03, &cfg, 7, 100).expect("p = 3% should fail at this size")
}

fn bench_phase1(c: &mut Criterion) {
    let cfg = KsConfig::new(0.05).unwrap();
    let mut group = c.benchmark_group("phase1_size_search");
    for &w in &[1_000usize, 5_000, 20_000] {
        let pair = failing_pair(w);
        let base = BaseVector::build(&pair.reference, &pair.test).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);

        group.bench_with_input(BenchmarkId::new("moche_lower_bounded", w), &w, |b, _| {
            b.iter(|| find_size(black_box(&ctx), 0.05).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("moche_wavefront", w), &w, |b, _| {
            b.iter(|| find_size_wavefront(black_box(&ctx), 0.05).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("moche_ns_scan_from_1", w), &w, |b, _| {
            b.iter(|| find_size_no_lower_bound(black_box(&ctx), 0.05).unwrap())
        });
    }
    group.finish();

    // The kernel comparison: WAVEFRONT_PROBES scalar passes vs one fused
    // pass over the same probe set.
    let mut group = c.benchmark_group("phase1_probe_kernels");
    for &w in &[5_000usize, 20_000] {
        let pair = failing_pair(w);
        let base = BaseVector::build(&pair.reference, &pair.test).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let hs: Vec<usize> =
            (0..WAVEFRONT_PROBES).map(|j| 1 + j * (w - 2) / WAVEFRONT_PROBES).collect();

        group.bench_with_input(BenchmarkId::new("scalar_probe_sweep", w), &w, |b, _| {
            b.iter(|| {
                let mut all = true;
                for &h in &hs {
                    all &= ctx.necessary_condition(black_box(h));
                }
                all
            })
        });
        group.bench_with_input(BenchmarkId::new("fused_wavefront_pass", w), &w, |b, _| {
            let mut verdicts = vec![false; hs.len()];
            b.iter(|| {
                ctx.necessary_condition_multi(black_box(&hs), &mut verdicts);
                verdicts[0]
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phase1);
criterion_main!(benches);
