//! Throughput of the parallel batch engine on the shared-reference
//! workload: one reference distribution (`w` points), many failed test
//! windows, an explanation per window. This is the deployment shape the
//! ROADMAP's monitoring north star implies — the number reported is
//! explanations per second at each thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moche_core::{
    BaseVector, BatchExplainer, KsConfig, ReferenceIndex, ReferenceMode, SortedReference,
    StreamingBatchExplainer,
};
use moche_data::failing_kifer_pair;
use std::hint::black_box;

/// Builds `count` failed windows against one reference by rotating a
/// known-failing window, so every job has distinct content with the same
/// distributional shift.
fn failing_windows(w: usize, count: usize, cfg: &KsConfig) -> (Vec<f64>, Vec<Vec<f64>>) {
    let pair = failing_kifer_pair(w, 0.03, cfg, 7, 100).expect("p = 3% fails at this size");
    let windows = (0..count)
        .map(|i| {
            let mut t = pair.test.clone();
            let shift = i % t.len().max(1);
            t.rotate_left(shift);
            t
        })
        .collect();
    (pair.reference, windows)
}

fn bench_batch_throughput(c: &mut Criterion) {
    let cfg = KsConfig::new(0.05).unwrap();
    let w = 10_000usize;
    let jobs = 64usize;
    let (reference, windows) = failing_windows(w, jobs, &cfg);
    let shared = SortedReference::new(&reference).unwrap();

    let mut group = c.benchmark_group("batch_shared_reference");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        let explainer = BatchExplainer::with_config(cfg).threads(threads);
        group.bench_with_input(
            BenchmarkId::new(&format!("explain_{jobs}_windows_w{w}"), threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    let results = explainer.explain_windows(black_box(&shared), &windows, None);
                    assert!(results.iter().all(Result::is_ok));
                    results
                })
            },
        );
    }
    group.finish();
}

/// Merged vs indexed per-window base-vector construction on the
/// asymmetric monitoring workload (`n >> m`): the splice path replaces the
/// per-element merge loop with chunk copies of the precomputed reference.
fn bench_reference_modes(c: &mut Criterion) {
    let cfg = KsConfig::new(0.05).unwrap();
    let n = 100_000usize;
    let m = 1_000usize;
    let pair = failing_kifer_pair(m, 0.05, &cfg, 11, 100).expect("p = 5% fails at m = 1_000");
    let reference: Vec<f64> =
        (0..n).map(|i| pair.reference[i % m] + (i / m) as f64 * 1e-9).collect();
    let shared = SortedReference::new(&reference).unwrap();
    let index = ReferenceIndex::from_sorted(&shared);

    let mut group = c.benchmark_group("base_vector_construction");
    group.bench_function(BenchmarkId::new("merged", format!("n{n}_m{m}")), |b| {
        b.iter(|| BaseVector::build_with_reference(black_box(&shared), &pair.test).unwrap())
    });
    group.bench_function(BenchmarkId::new("indexed", format!("n{n}_m{m}")), |b| {
        b.iter(|| BaseVector::build_with_index(black_box(&index), &pair.test).unwrap())
    });
    group.finish();

    // The end-to-end effect on the batch engine.
    let (r, windows) = failing_windows(10_000, 32, &cfg);
    let shared = SortedReference::new(&r).unwrap();
    let mut group = c.benchmark_group("batch_reference_mode");
    group.sample_size(10);
    for (mode, tag) in [(ReferenceMode::Merged, "merged"), (ReferenceMode::Indexed, "indexed")] {
        let explainer = BatchExplainer::with_config(cfg).threads(1).reference_mode(mode);
        group.bench_function(BenchmarkId::new(tag, "32_windows_w10000"), |b| {
            b.iter(|| {
                let results = explainer.explain_windows(black_box(&shared), &windows, None);
                assert!(results.iter().all(Result::is_ok));
                results
            })
        });
    }
    group.finish();
}

/// Streaming throughput: the bounded-memory engine against the eager
/// batch, plus the Phase-1-only `size_only` mode.
fn bench_streaming(c: &mut Criterion) {
    let cfg = KsConfig::new(0.05).unwrap();
    let (r, windows) = failing_windows(10_000, 32, &cfg);
    let index = ReferenceIndex::new(&r).unwrap();

    let mut group = c.benchmark_group("streaming_batch");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        let streamer = StreamingBatchExplainer::with_config(cfg).threads(threads).buffer(8);
        group.bench_with_input(
            BenchmarkId::new("explain_32_windows_w10000", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    let summary = streamer.explain_stream(
                        black_box(&index),
                        windows.iter().cloned(),
                        None,
                        |r| assert!(r.result.is_ok()),
                    );
                    assert_eq!(summary.windows, windows.len());
                    summary
                })
            },
        );
        let sized = streamer.mode(moche_core::StreamMode::SizeOnly);
        group.bench_with_input(
            BenchmarkId::new("size_only_32_windows_w10000", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    let summary = sized.explain_stream(
                        black_box(&index),
                        windows.iter().cloned(),
                        None,
                        |r| assert!(r.result.is_ok()),
                    );
                    assert_eq!(summary.windows, windows.len());
                    summary
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_throughput, bench_reference_modes, bench_streaming);
criterion_main!(benches);
