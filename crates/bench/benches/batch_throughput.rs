//! Throughput of the parallel batch engine on the shared-reference
//! workload: one reference distribution (`w` points), many failed test
//! windows, an explanation per window. This is the deployment shape the
//! ROADMAP's monitoring north star implies — the number reported is
//! explanations per second at each thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moche_core::{BatchExplainer, KsConfig, SortedReference};
use moche_data::failing_kifer_pair;
use std::hint::black_box;

/// Builds `count` failed windows against one reference by rotating a
/// known-failing window, so every job has distinct content with the same
/// distributional shift.
fn failing_windows(w: usize, count: usize, cfg: &KsConfig) -> (Vec<f64>, Vec<Vec<f64>>) {
    let pair = failing_kifer_pair(w, 0.03, cfg, 7, 100).expect("p = 3% fails at this size");
    let windows = (0..count)
        .map(|i| {
            let mut t = pair.test.clone();
            let shift = i % t.len().max(1);
            t.rotate_left(shift);
            t
        })
        .collect();
    (pair.reference, windows)
}

fn bench_batch_throughput(c: &mut Criterion) {
    let cfg = KsConfig::new(0.05).unwrap();
    let w = 10_000usize;
    let jobs = 64usize;
    let (reference, windows) = failing_windows(w, jobs, &cfg);
    let shared = SortedReference::new(&reference).unwrap();

    let mut group = c.benchmark_group("batch_shared_reference");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        let explainer = BatchExplainer::with_config(cfg).threads(threads);
        group.bench_with_input(
            BenchmarkId::new(&format!("explain_{jobs}_windows_w{w}"), threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    let results = explainer.explain_windows(black_box(&shared), &windows, None);
                    assert!(results.iter().all(Result::is_ok));
                    results
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
