//! Scalability benchmarks in the shape of the paper's Figure 5b: MOCHE,
//! the MOCHE_ns ablation and GRD on Kifer-style synthetic drift data
//! (`p = 3%`) with random preference lists, as `w` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moche_baselines::{ExplainRequest, Greedy, KsExplainer, MocheExplainer};
use moche_core::{KsConfig, PreferenceList};
use moche_data::failing_kifer_pair;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let cfg = KsConfig::new(0.05).unwrap();
    let methods: Vec<Box<dyn KsExplainer>> = vec![
        Box::new(MocheExplainer::default()),
        Box::new(MocheExplainer { no_lower_bound: true }),
        Box::new(Greedy),
    ];
    let mut group = c.benchmark_group("scaling_synthetic_p3");
    group.sample_size(10);
    for &w in &[1_000usize, 5_000, 20_000] {
        let Some(pair) = failing_kifer_pair(w, 0.03, &cfg, 11, 100) else {
            continue;
        };
        let pref = PreferenceList::random(w, 23);
        for method in &methods {
            group.bench_with_input(BenchmarkId::new(method.name(), w), &w, |b, _| {
                b.iter(|| {
                    let req = ExplainRequest {
                        reference: &pair.reference,
                        test: &pair.test,
                        cfg: &cfg,
                        preference: Some(&pref),
                        seed: 1,
                    };
                    black_box(method.explain(&req))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
