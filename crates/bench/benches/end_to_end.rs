//! End-to-end explanation benchmarks in the shape of the paper's
//! Figure 5a: MOCHE against the always-reversing baselines (GRD, D3, STMP,
//! S2G) on TWT-like failed sliding-window tests as the window size grows.
//! (CS and GRC are benchmarked by the `fig5a_runtime_twt` binary — their
//! budgets make them orders of magnitude slower, which drowns Criterion's
//! sampling.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moche_baselines::{
    ExplainRequest, Greedy, KsExplainer, MocheExplainer, Series2GraphExplainer, Stomp, D3,
};
use moche_bench::runner::spectral_residual_preference;
use moche_core::{
    ConstructionStrategy, ExplainEngine, ExplanationArena, KsConfig, Moche, ReferenceIndex,
    SortedReference,
};
use moche_data::failing_kifer_pair;
use moche_data::nab::generate_family;
use moche_data::sliding::{failed_windows, sample_failed};
use moche_data::FailedTest;
use moche_data::NabFamily;
use std::hint::black_box;

fn one_failed_test(window: usize) -> Option<FailedTest> {
    let cfg = KsConfig::new(0.05).unwrap();
    for series in generate_family(NabFamily::Twt, 2021) {
        if series.values.len() < 2 * window {
            continue;
        }
        let failed = failed_windows(&series, window, &cfg, (window / 2).max(1));
        if let Some(t) = sample_failed(failed, 1, 5).into_iter().next() {
            return Some(t);
        }
    }
    None
}

fn bench_end_to_end(c: &mut Criterion) {
    let cfg = KsConfig::new(0.05).unwrap();
    let methods: Vec<Box<dyn KsExplainer>> = vec![
        Box::new(MocheExplainer::default()),
        Box::new(Greedy),
        Box::new(D3::default()),
        Box::new(Stomp::default()),
        Box::new(Series2GraphExplainer::default()),
    ];
    let mut group = c.benchmark_group("end_to_end_twt");
    group.sample_size(10);
    for &w in &[200usize, 500, 1_000] {
        let Some(case) = one_failed_test(w) else {
            continue;
        };
        let pref = spectral_residual_preference(&case.test);
        for method in &methods {
            group.bench_with_input(BenchmarkId::new(method.name(), w), &w, |b, _| {
                b.iter(|| {
                    let req = ExplainRequest {
                        reference: &case.reference,
                        test: &case.test,
                        cfg: &cfg,
                        preference: Some(&pref),
                        seed: 1,
                    };
                    black_box(method.explain(&req))
                })
            });
        }
    }
    group.finish();
}

/// The allocating one-shot paths against the scratch-reusing engine at the
/// scale the ROADMAP's monitoring workload runs at (`w = 10_000`). All four
/// produce byte-identical explanations; only the allocation behaviour and
/// the shared-reference build differ.
fn bench_engine_vs_oneshot(c: &mut Criterion) {
    let cfg = KsConfig::new(0.05).unwrap();
    let mut group = c.benchmark_group("end_to_end_engine");
    group.sample_size(10);
    for &w in &[1_000usize, 10_000] {
        let Some(pair) = failing_kifer_pair(w, 0.03, &cfg, 7, 100) else {
            continue;
        };
        let pref = spectral_residual_preference(&pair.test);
        let reference_strategy =
            Moche::with_config(cfg).construction(ConstructionStrategy::Reference);
        let oneshot = Moche::with_config(cfg);
        let mut engine = ExplainEngine::with_config(cfg);
        let shared = SortedReference::new(&pair.reference).unwrap();

        group.bench_with_input(BenchmarkId::new("moche_reference_alloc", w), &w, |b, _| {
            b.iter(|| {
                reference_strategy.explain(black_box(&pair.reference), &pair.test, &pref).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("moche_oneshot", w), &w, |b, _| {
            b.iter(|| oneshot.explain(black_box(&pair.reference), &pair.test, &pref).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("engine_reuse", w), &w, |b, _| {
            b.iter(|| engine.explain(black_box(&pair.reference), &pair.test, &pref).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("engine_shared_ref", w), &w, |b, _| {
            b.iter(|| engine.explain_with_reference(black_box(&shared), &pair.test, &pref).unwrap())
        });
        // The fully recycled steady state: indexed reference + output
        // arena. Zero heap allocations per iteration once warm.
        let index = ReferenceIndex::from_sorted(&shared);
        let mut arena = ExplanationArena::new();
        group.bench_with_input(BenchmarkId::new("engine_indexed_arena", w), &w, |b, _| {
            b.iter(|| {
                let e = engine
                    .explain_with_index_in(black_box(&index), &pair.test, &pref, &mut arena)
                    .unwrap();
                let k = e.size();
                arena.recycle(e);
                k
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_engine_vs_oneshot);
criterion_main!(benches);
