//! End-to-end explanation benchmarks in the shape of the paper's
//! Figure 5a: MOCHE against the always-reversing baselines (GRD, D3, STMP,
//! S2G) on TWT-like failed sliding-window tests as the window size grows.
//! (CS and GRC are benchmarked by the `fig5a_runtime_twt` binary — their
//! budgets make them orders of magnitude slower, which drowns Criterion's
//! sampling.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moche_baselines::{
    ExplainRequest, Greedy, KsExplainer, MocheExplainer, Series2GraphExplainer, Stomp, D3,
};
use moche_bench::runner::spectral_residual_preference;
use moche_core::KsConfig;
use moche_data::nab::generate_family;
use moche_data::sliding::{failed_windows, sample_failed};
use moche_data::FailedTest;
use moche_data::NabFamily;
use std::hint::black_box;

fn one_failed_test(window: usize) -> Option<FailedTest> {
    let cfg = KsConfig::new(0.05).unwrap();
    for series in generate_family(NabFamily::Twt, 2021) {
        if series.values.len() < 2 * window {
            continue;
        }
        let failed = failed_windows(&series, window, &cfg, (window / 2).max(1));
        if let Some(t) = sample_failed(failed, 1, 5).into_iter().next() {
            return Some(t);
        }
    }
    None
}

fn bench_end_to_end(c: &mut Criterion) {
    let cfg = KsConfig::new(0.05).unwrap();
    let methods: Vec<Box<dyn KsExplainer>> = vec![
        Box::new(MocheExplainer::default()),
        Box::new(Greedy),
        Box::new(D3::default()),
        Box::new(Stomp::default()),
        Box::new(Series2GraphExplainer::default()),
    ];
    let mut group = c.benchmark_group("end_to_end_twt");
    group.sample_size(10);
    for &w in &[200usize, 500, 1_000] {
        let Some(case) = one_failed_test(w) else {
            continue;
        };
        let pref = spectral_residual_preference(&case.test);
        for method in &methods {
            group.bench_with_input(
                BenchmarkId::new(method.name(), w),
                &w,
                |b, _| {
                    b.iter(|| {
                        let req = ExplainRequest {
                            reference: &case.reference,
                            test: &case.test,
                            cfg: &cfg,
                            preference: Some(&pref),
                            seed: 1,
                        };
                        black_box(method.explain(&req))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
