//! Performance-baseline comparison: the library behind the `perf_gate`
//! binary and CI's perf-regression gate.
//!
//! `BENCH_core.json` (written by `run_all --bench-json`, see
//! [`crate::perf`]) is committed to the repository as the performance
//! baseline. The gate re-runs the evidence suite and fails the build when
//! a benchmark regresses: `ns_per_iter` above the allowed ratio, or
//! `allocs_per_iter` increasing at all (allocation counts are
//! deterministic, so any increase is a real change — a small absolute
//! tolerance absorbs the fractional medians of the batch records).
//!
//! The parser handles exactly the flat `{name: {metric: number}}` shape
//! [`crate::perf::to_json`] writes — the workspace is offline and carries
//! no JSON dependency.

use std::collections::BTreeMap;

/// One benchmark's baseline (or current) metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchEntry {
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Heap allocations per iteration, when recorded.
    pub allocs_per_iter: Option<f64>,
}

/// Gate thresholds.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum tolerated `ns_per_iter` regression as a fraction of the
    /// baseline (`0.15` = +15%).
    pub max_ns_regression: f64,
    /// Absolute tolerance on `allocs_per_iter` increases, absorbing
    /// fractional medians (per-window averages of whole-batch counts).
    pub alloc_tolerance: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self { max_ns_regression: 0.15, alloc_tolerance: 0.5 }
    }
}

/// One benchmark compared against its baseline.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark name.
    pub name: String,
    /// Baseline metrics.
    pub baseline: BenchEntry,
    /// Current metrics.
    pub current: BenchEntry,
    /// `current.ns_per_iter / baseline.ns_per_iter`.
    pub ns_ratio: f64,
    /// Why this benchmark fails the gate; empty when it passes.
    pub failures: Vec<String>,
}

/// The gate's full verdict.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Per-benchmark comparisons for names present in both files.
    pub comparisons: Vec<Comparison>,
    /// Baseline benchmarks missing from the current run — a dropped
    /// benchmark fails the gate (it would silently shrink coverage).
    pub missing: Vec<String>,
    /// Current benchmarks with no baseline yet (informational).
    pub added: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.comparisons.iter().all(|c| c.failures.is_empty())
    }

    /// Human-readable report, one line per benchmark.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.comparisons {
            let allocs = match (c.baseline.allocs_per_iter, c.current.allocs_per_iter) {
                (Some(b), Some(n)) => format!(", allocs {b:.1} -> {n:.1}"),
                _ => String::new(),
            };
            let verdict = if c.failures.is_empty() {
                "ok".to_string()
            } else {
                format!("FAIL ({})", c.failures.join("; "))
            };
            out.push_str(&format!(
                "{}: {:.0} -> {:.0} ns/iter ({:+.1}%{allocs}) ... {verdict}\n",
                c.name,
                c.baseline.ns_per_iter,
                c.current.ns_per_iter,
                (c.ns_ratio - 1.0) * 100.0,
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("{name}: MISSING from the current run ... FAIL\n"));
        }
        for name in &self.added {
            out.push_str(&format!("{name}: new benchmark (no baseline) ... ok\n"));
        }
        out.push_str(&format!("\nperf gate: {}\n", if self.passed() { "PASS" } else { "FAIL" }));
        out
    }
}

/// Compares a current run against the baseline under `cfg`.
pub fn compare(
    baseline: &BTreeMap<String, BenchEntry>,
    current: &BTreeMap<String, BenchEntry>,
    cfg: &GateConfig,
) -> GateReport {
    let mut report = GateReport::default();
    for (name, base) in baseline {
        let Some(cur) = current.get(name) else {
            report.missing.push(name.clone());
            continue;
        };
        let ns_ratio = cur.ns_per_iter / base.ns_per_iter.max(1e-9);
        let mut failures = Vec::new();
        if ns_ratio > 1.0 + cfg.max_ns_regression {
            failures.push(format!(
                "ns/iter regressed {:.1}% (limit {:.0}%)",
                (ns_ratio - 1.0) * 100.0,
                cfg.max_ns_regression * 100.0
            ));
        }
        if let (Some(b), Some(n)) = (base.allocs_per_iter, cur.allocs_per_iter) {
            if n > b + cfg.alloc_tolerance {
                failures.push(format!("allocs/iter increased {b:.1} -> {n:.1}"));
            }
        }
        report.comparisons.push(Comparison {
            name: name.clone(),
            baseline: *base,
            current: *cur,
            ns_ratio,
            failures,
        });
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            report.added.push(name.clone());
        }
    }
    report
}

/// Parses the flat bench JSON written by [`crate::perf::to_json`]:
/// `{"name": {"ns_per_iter": N, "per_sec": N, "allocs_per_iter": N}, ...}`.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax problem.
pub fn parse_bench_json(content: &str) -> Result<BTreeMap<String, BenchEntry>, String> {
    let mut p = Parser { bytes: content.as_bytes(), pos: 0 };
    let mut entries = BTreeMap::new();
    p.skip_ws();
    p.expect(b'{')?;
    p.skip_ws();
    if p.peek() == Some(b'}') {
        return Ok(entries);
    }
    loop {
        p.skip_ws();
        let name = p.parse_string()?;
        p.skip_ws();
        p.expect(b':')?;
        let mut fields: BTreeMap<String, f64> = BTreeMap::new();
        p.skip_ws();
        p.expect(b'{')?;
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_number()?;
            fields.insert(key, value);
            p.skip_ws();
            match p.next_byte()? {
                b',' => continue,
                b'}' => break,
                other => return Err(format!("unexpected '{}' in record", other as char)),
            }
        }
        let ns_per_iter = *fields
            .get("ns_per_iter")
            .ok_or_else(|| format!("benchmark '{name}' has no ns_per_iter"))?;
        entries.insert(
            name,
            BenchEntry { ns_per_iter, allocs_per_iter: fields.get("allocs_per_iter").copied() },
        );
        p.skip_ws();
        match p.next_byte()? {
            b',' => continue,
            b'}' => break,
            other => return Err(format!("unexpected '{}' after record", other as char)),
        }
    }
    Ok(entries)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next_byte()? {
            b if b == want => Ok(()),
            other => Err(format!("expected '{}', found '{}'", want as char, other as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        // Bench names contain no escapes; scan to the closing quote.
        while let Some(b) = self.peek() {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ns: f64, allocs: Option<f64>) -> BenchEntry {
        BenchEntry { ns_per_iter: ns, allocs_per_iter: allocs }
    }

    #[test]
    fn parses_the_to_json_format() {
        let records = vec![
            crate::perf::BenchRecord {
                name: "a/b/w=10".into(),
                ns_per_iter: 1234.5,
                per_sec: 8.1e5,
                allocs_per_iter: Some(2.0),
            },
            crate::perf::BenchRecord {
                name: "c".into(),
                ns_per_iter: 5.0,
                per_sec: 2e8,
                allocs_per_iter: None,
            },
        ];
        let parsed = parse_bench_json(&crate::perf::to_json(&records)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["a/b/w=10"].ns_per_iter, 1234.5);
        assert_eq!(parsed["a/b/w=10"].allocs_per_iter, Some(2.0));
        assert_eq!(parsed["c"].allocs_per_iter, None);
    }

    #[test]
    fn parses_the_committed_baseline_shape() {
        let json = r#"{
  "x/y/w=10000": {"ns_per_iter": 334556.7, "per_sec": 2989.0, "allocs_per_iter": 2.0},
  "z": {"ns_per_iter": 3334604.8, "per_sec": 299.9}
}
"#;
        let parsed = parse_bench_json(json).unwrap();
        assert_eq!(parsed["x/y/w=10000"].ns_per_iter, 334556.7);
        assert_eq!(parsed["z"].allocs_per_iter, None);
        assert!(parse_bench_json("{}").unwrap().is_empty());
        assert!(parse_bench_json("{bad").is_err());
        assert!(parse_bench_json(r#"{"a": {"per_sec": 1.0}}"#).is_err());
    }

    #[test]
    fn gate_passes_within_thresholds() {
        let mut baseline = BTreeMap::new();
        baseline.insert("a".to_string(), entry(100.0, Some(3.0)));
        let mut current = BTreeMap::new();
        current.insert("a".to_string(), entry(110.0, Some(3.0))); // +10%
        let report = compare(&baseline, &current, &GateConfig::default());
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn gate_fails_on_ns_regression() {
        let mut baseline = BTreeMap::new();
        baseline.insert("a".to_string(), entry(100.0, None));
        let mut current = BTreeMap::new();
        current.insert("a".to_string(), entry(120.0, None)); // +20% > 15%
        let report = compare(&baseline, &current, &GateConfig::default());
        assert!(!report.passed());
        assert!(report.render().contains("ns/iter regressed"), "{}", report.render());
    }

    #[test]
    fn gate_fails_on_alloc_increase() {
        let mut baseline = BTreeMap::new();
        baseline.insert("a".to_string(), entry(100.0, Some(0.0)));
        let mut current = BTreeMap::new();
        current.insert("a".to_string(), entry(100.0, Some(2.0)));
        let report = compare(&baseline, &current, &GateConfig::default());
        assert!(!report.passed());
        assert!(report.render().contains("allocs/iter increased"), "{}", report.render());
    }

    #[test]
    fn gate_fails_on_dropped_benchmarks_but_not_new_ones() {
        let mut baseline = BTreeMap::new();
        baseline.insert("old".to_string(), entry(100.0, None));
        let mut current = BTreeMap::new();
        current.insert("new".to_string(), entry(100.0, None));
        let report = compare(&baseline, &current, &GateConfig::default());
        assert!(!report.passed());
        assert_eq!(report.missing, vec!["old".to_string()]);
        assert_eq!(report.added, vec!["new".to_string()]);

        let mut both = baseline.clone();
        both.insert("new".to_string(), entry(1.0, None));
        let report = compare(&baseline, &both, &GateConfig::default());
        assert!(report.passed());
    }

    #[test]
    fn faster_runs_and_fewer_allocs_always_pass() {
        let mut baseline = BTreeMap::new();
        baseline.insert("a".to_string(), entry(100.0, Some(5.0)));
        let mut current = BTreeMap::new();
        current.insert("a".to_string(), entry(10.0, Some(0.0)));
        let report = compare(&baseline, &current, &GateConfig::default());
        assert!(report.passed());
    }
}
