//! # moche-bench
//!
//! The experiment harness regenerating every table and figure of the MOCHE
//! paper's evaluation (Section 6), plus Criterion microbenchmarks:
//!
//! | Paper artifact | Regenerator binary | Module |
//! |---|---|---|
//! | Table 1 (dataset statistics) | `table1_datasets` | [`experiments::table1`] |
//! | Figure 1 (COVID overview) | `fig1_covid_overview` | [`experiments::covid`] |
//! | Figure 2 (average ISE) | `fig2_ise` | [`experiments::effectiveness`] |
//! | Table 2 (reverse factor) | `table2_reverse_factor` | [`experiments::effectiveness`] |
//! | Figure 3 (average RMSE) | `fig3_rmse` | [`experiments::effectiveness`] |
//! | Figure 4 (COVID case study) | `fig4_covid_case_study` | [`experiments::covid`] |
//! | Figure 5a (runtime vs size, TWT) | `fig5a_runtime_twt` | [`experiments::runtime`] |
//! | Figure 5b (runtime, synthetic) | `fig5b_runtime_synthetic` | [`experiments::runtime`] |
//! | Figure 6 (estimation error) | `fig6_estimation_error` | [`experiments::estimation`] |
//! | everything | `run_all` | all |
//!
//! Every binary accepts `--full` for the paper-scale sweep (hours) and
//! defaults to a quick configuration (minutes) that preserves each
//! experiment's *shape*; `--seed N` overrides the master seed.
//!
//! Criterion benches (`cargo bench -p moche-bench`): `ks_primitives`,
//! `phase1` (including the `MOCHE_ns` ablation), `phase2` (incremental vs
//! paper-faithful construction), `end_to_end` (Figure 5a's shape) and
//! `scaling` (Figure 5b's shape).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod metrics;
pub mod perf;
pub mod report;
pub mod runner;
pub mod scale;

pub use runner::{paper_roster, run_case, run_cases, CaseResult, MethodResult};
pub use scale::ExperimentScale;
