//! The paper's evaluation metrics: Is-Smallest-Explanation (ISE, §6.2),
//! reverse factor (RF, §6.2.1), root-mean-square error between ECDFs
//! (RMSE, §6.3) and the Phase-1 estimation error (EE, §6.4).

use moche_core::Ecdf;

/// Marks, for each method's explanation size on one failed KS test, whether
/// it is the smallest among the methods that produced an explanation
/// (`None` = aborted, never smallest). All methods achieving the minimum
/// are marked 1, matching the paper's binary ISE variable.
pub fn ise_flags(sizes: &[Option<usize>]) -> Vec<f64> {
    let min = sizes.iter().flatten().min().copied();
    sizes
        .iter()
        .map(|s| match (s, min) {
            (Some(v), Some(m)) if *v == m => 1.0,
            _ => 0.0,
        })
        .collect()
}

/// The reverse factor: fraction of failed tests a method managed to
/// reverse.
pub fn reverse_factor(outcomes: &[bool]) -> f64 {
    if outcomes.is_empty() {
        return f64::NAN;
    }
    outcomes.iter().filter(|&&b| b).count() as f64 / outcomes.len() as f64
}

/// The RMSE between the ECDFs of `R` and `T \ I` over the multiset
/// `R ∪ (T \ I)` (Section 6.3).
pub fn rmse_after_removal(reference: &[f64], test: &[f64], removed: &[usize]) -> f64 {
    let mut keep = vec![true; test.len()];
    for &i in removed {
        keep[i] = false;
    }
    let t_after: Vec<f64> = test.iter().zip(&keep).filter_map(|(&v, &k)| k.then_some(v)).collect();
    if t_after.is_empty() {
        return f64::NAN;
    }
    Ecdf::new(reference).rmse(&Ecdf::new(&t_after))
}

/// Mean of an iterator of f64, NaN when empty.
pub fn mean_of(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        f64::NAN
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ise_marks_all_minima() {
        let flags = ise_flags(&[Some(3), Some(5), Some(3), None]);
        assert_eq!(flags, vec![1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn ise_with_all_aborts_is_zero() {
        assert_eq!(ise_flags(&[None, None]), vec![0.0, 0.0]);
    }

    #[test]
    fn reverse_factor_counts_successes() {
        assert_eq!(reverse_factor(&[true, true, false, true]), 0.75);
        assert!(reverse_factor(&[]).is_nan());
    }

    #[test]
    fn rmse_zero_when_removal_restores_identity() {
        let r = vec![1.0, 2.0, 3.0];
        let t = vec![1.0, 2.0, 3.0, 99.0];
        let rmse_with = rmse_after_removal(&r, &t, &[3]);
        assert_eq!(rmse_with, 0.0);
        let rmse_without = rmse_after_removal(&r, &t, &[]);
        assert!(rmse_without > 0.0);
    }

    #[test]
    fn rmse_of_full_removal_is_nan() {
        assert!(rmse_after_removal(&[1.0], &[2.0], &[0]).is_nan());
    }

    #[test]
    fn mean_of_handles_empty() {
        assert!(mean_of(std::iter::empty()).is_nan());
        assert_eq!(mean_of([1.0, 2.0, 3.0]), 2.0);
    }
}
