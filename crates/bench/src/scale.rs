//! Experiment scaling: paper-scale runs take hours (the paper gave its
//! baselines a 24-hour budget on a Xeon server), so every binary defaults
//! to a scaled-down configuration that preserves the experiments' *shape*
//! and accepts `--full` for the paper-scale sweep.

/// Scale parameters shared by the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// Sliding-window sizes to sweep (the paper's §6.1.1 list).
    pub window_sizes: Vec<usize>,
    /// Failed KS tests sampled per (series, window) combination.
    pub per_combination: usize,
    /// Cap on the number of series used per NAB family.
    pub max_series_per_family: usize,
    /// Sampling budget of Extended-CornerSearch.
    pub cs_max_samples: usize,
    /// Optimization steps of Extended-GRACE.
    pub grc_max_steps: usize,
    /// Reference/test sizes for the Figure 5a runtime sweep.
    pub fig5a_sizes: Vec<usize>,
    /// `w` values for the Figure 5b synthetic scalability sweep.
    pub fig5b_sizes: Vec<usize>,
    /// Repetitions per timing measurement.
    pub timing_reps: usize,
    /// Master seed.
    pub seed: u64,
    /// Whether this is the full paper-scale configuration.
    pub full: bool,
}

impl ExperimentScale {
    /// The quick default: minutes, not hours, with the same structure.
    pub fn quick() -> Self {
        Self {
            window_sizes: vec![100, 200, 300],
            per_combination: 2,
            max_series_per_family: 3,
            cs_max_samples: 2_000,
            grc_max_steps: 400,
            fig5a_sizes: vec![100, 200, 300, 500, 1_000],
            fig5b_sizes: vec![1_000, 3_000, 10_000, 30_000],
            timing_reps: 3,
            seed: 20_21,
            full: false,
        }
    }

    /// The paper-scale configuration (Section 6.1).
    pub fn full() -> Self {
        Self {
            window_sizes: vec![100, 200, 300, 1_000, 1_500, 2_000],
            per_combination: 10,
            max_series_per_family: usize::MAX,
            cs_max_samples: 150_000,
            grc_max_steps: 10_000,
            fig5a_sizes: vec![100, 200, 300, 500, 1_000, 1_500, 2_000],
            fig5b_sizes: vec![10_000, 30_000, 50_000, 70_000, 100_000],
            timing_reps: 3,
            seed: 20_21,
            full: true,
        }
    }

    /// Parses `--full` (and an optional `--seed N`) from the process
    /// arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_arg_strings(&args[1..])
    }

    /// Parses scale settings from explicit argument strings (testable).
    pub fn from_arg_strings(args: &[String]) -> Self {
        let mut scale =
            if args.iter().any(|a| a == "--full") { Self::full() } else { Self::quick() };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--seed" {
                if let Some(v) = it.next().and_then(|s| s.parse::<u64>().ok()) {
                    scale.seed = v;
                }
            }
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = ExperimentScale::quick();
        let f = ExperimentScale::full();
        assert!(q.window_sizes.len() < f.window_sizes.len());
        assert!(q.per_combination < f.per_combination);
        assert!(q.cs_max_samples < f.cs_max_samples);
        assert!(!q.full);
        assert!(f.full);
    }

    #[test]
    fn full_matches_paper_windows() {
        let f = ExperimentScale::full();
        assert_eq!(f.window_sizes, vec![100, 200, 300, 1_000, 1_500, 2_000]);
        assert_eq!(f.fig5b_sizes, vec![10_000, 30_000, 50_000, 70_000, 100_000]);
        assert_eq!(f.per_combination, 10);
    }

    #[test]
    fn arg_parsing() {
        let q = ExperimentScale::from_arg_strings(&[]);
        assert!(!q.full);
        let f = ExperimentScale::from_arg_strings(&["--full".to_string()]);
        assert!(f.full);
        let s = ExperimentScale::from_arg_strings(&["--seed".to_string(), "7".to_string()]);
        assert_eq!(s.seed, 7);
    }
}
