//! The experiment runner: applies a roster of explainers to failed KS
//! tests, with Spectral-Residual preference lists (the paper's §6.1.1
//! protocol), wall-clock timing, and thread-pool fan-out across test
//! cases.

use crate::scale::ExperimentScale;
use moche_baselines::{
    CornerSearch, CornerSearchConfig, ExplainRequest, Grace, GraceConfig, Greedy, KsExplainer,
    MocheExplainer, Series2GraphExplainer, Stomp, D3,
};
use moche_core::{KsConfig, PreferenceList};
use moche_data::FailedTest;
use moche_sigproc::SpectralResidual;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// One method's result on one failed test.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Method name (paper abbreviation).
    pub method: &'static str,
    /// Selected test indices, or `None` when the method aborted.
    pub indices: Option<Vec<usize>>,
    /// Wall-clock seconds for the explain call.
    pub seconds: f64,
}

impl MethodResult {
    /// Explanation size, if one was produced.
    pub fn size(&self) -> Option<usize> {
        self.indices.as_ref().map(Vec::len)
    }
}

/// All methods' results on one failed test, plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Name of the originating series.
    pub series_name: String,
    /// Dataset family short name (`AWS`, `TWT`, ...).
    pub family: String,
    /// Window size of the failed test.
    pub window: usize,
    /// The failed test's reference set.
    pub reference: Vec<f64>,
    /// The failed test's test set.
    pub test: Vec<f64>,
    /// Per-method results, in roster order.
    pub results: Vec<MethodResult>,
}

impl CaseResult {
    /// The result of a given method, if present.
    pub fn result_of(&self, method: &str) -> Option<&MethodResult> {
        self.results.iter().find(|r| r.method == method)
    }
}

/// The roster of explainers for the effectiveness experiments
/// (Figures 2-3, Table 2): M, GRC, GRD, CS, S2G, STMP, D3 — scaled budgets
/// for CS/GRC per the configured [`ExperimentScale`].
pub fn paper_roster(scale: &ExperimentScale) -> Vec<Box<dyn KsExplainer + Send + Sync>> {
    vec![
        Box::new(MocheExplainer::default()),
        Box::new(Grace::new(GraceConfig {
            max_steps: scale.grc_max_steps,
            ..GraceConfig::default()
        })),
        Box::new(Greedy),
        Box::new(CornerSearch::new(CornerSearchConfig {
            max_samples: scale.cs_max_samples,
            ..CornerSearchConfig::default()
        })),
        Box::new(Series2GraphExplainer::default()),
        Box::new(Stomp::default()),
        Box::new(D3::default()),
    ]
}

/// Derives the preference list for a failed test the way the paper does:
/// Spectral Residual outlying scores over the test window, larger scores
/// ranked higher.
pub fn spectral_residual_preference(test: &[f64]) -> PreferenceList {
    if test.len() < 4 {
        return PreferenceList::identity(test.len());
    }
    let sr = SpectralResidual::default();
    let scores = sr.scores(test);
    PreferenceList::from_scores_desc(&scores)
        .unwrap_or_else(|_| PreferenceList::identity(test.len()))
}

/// Runs every method of `roster` on one failed test.
pub fn run_case(
    case: &FailedTest,
    family: &str,
    roster: &[Box<dyn KsExplainer + Send + Sync>],
    cfg: &KsConfig,
    seed: u64,
) -> CaseResult {
    let preference = spectral_residual_preference(&case.test);
    let results = roster
        .iter()
        .map(|method| {
            let req = ExplainRequest {
                reference: &case.reference,
                test: &case.test,
                cfg,
                preference: Some(&preference),
                seed,
            };
            let start = Instant::now();
            let indices = method.explain(&req);
            MethodResult { method: method.name(), indices, seconds: start.elapsed().as_secs_f64() }
        })
        .collect();
    CaseResult {
        series_name: case.series_name.clone(),
        family: family.to_string(),
        window: case.window,
        reference: case.reference.clone(),
        test: case.test.clone(),
        results,
    }
}

/// Runs the roster over many failed tests, fanning out across `threads`
/// worker threads (results keep the input order).
pub fn run_cases(
    cases: &[(FailedTest, String)],
    roster: &[Box<dyn KsExplainer + Send + Sync>],
    cfg: &KsConfig,
    seed: u64,
    threads: usize,
) -> Vec<CaseResult> {
    let threads = threads.max(1).min(cases.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: std::sync::Mutex<Vec<Option<CaseResult>>> =
        std::sync::Mutex::new(vec![None; cases.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cases.len() {
                    break;
                }
                let (case, family) = &cases[i];
                let result = run_case(case, family, roster, cfg, seed.wrapping_add(i as u64));
                slots.lock().unwrap()[i] = Some(result);
            });
        }
    });
    slots.into_inner().unwrap().into_iter().map(|s| s.expect("every slot filled")).collect()
}

/// Default worker-thread count: the available parallelism, capped at 8.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moche_data::nab::{NabFamily, NabSeries};
    use moche_data::sliding::failed_windows;

    fn drifted_series() -> NabSeries {
        let mut values: Vec<f64> = (0..300).map(|i| (i as f64 * 0.11).sin()).collect();
        values.extend((0..300).map(|i| (i as f64 * 0.11).sin() + 5.0));
        NabSeries {
            family: NabFamily::Art,
            name: "runner_test".into(),
            values,
            #[allow(clippy::single_range_in_vec_init)] // one anomalous index range
            anomalies: vec![300..330],
        }
    }

    fn some_failed_test() -> FailedTest {
        let cfg = KsConfig::new(0.05).unwrap();
        failed_windows(&drifted_series(), 100, &cfg, 50)
            .into_iter()
            .next()
            .expect("the drifted series must fail somewhere")
    }

    #[test]
    fn roster_has_the_papers_seven_methods() {
        let roster = paper_roster(&ExperimentScale::quick());
        let names: Vec<&str> = roster.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["M", "GRC", "GRD", "CS", "S2G", "STMP", "D3"]);
    }

    #[test]
    fn run_case_times_every_method() {
        let cfg = KsConfig::new(0.05).unwrap();
        let case = some_failed_test();
        let roster = paper_roster(&ExperimentScale::quick());
        let result = run_case(&case, "ART", &roster, &cfg, 1);
        assert_eq!(result.results.len(), 7);
        for r in &result.results {
            assert!(r.seconds >= 0.0);
        }
        // MOCHE and GRD always reverse.
        assert!(result.result_of("M").unwrap().indices.is_some());
        assert!(result.result_of("GRD").unwrap().indices.is_some());
        // MOCHE's is the smallest among produced explanations.
        let m_size = result.result_of("M").unwrap().size().unwrap();
        for r in &result.results {
            if let Some(s) = r.size() {
                assert!(m_size <= s, "{} produced {} < MOCHE's {}", r.method, s, m_size);
            }
        }
    }

    #[test]
    fn parallel_run_preserves_order_and_determinism() {
        let cfg = KsConfig::new(0.05).unwrap();
        let case = some_failed_test();
        let cases: Vec<(FailedTest, String)> =
            (0..4).map(|_| (case.clone(), "ART".to_string())).collect();
        let roster = paper_roster(&ExperimentScale::quick());
        let seq = run_cases(&cases, &roster, &cfg, 9, 1);
        let par = run_cases(&cases, &roster, &cfg, 9, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            for (ra, rb) in a.results.iter().zip(&b.results) {
                assert_eq!(ra.method, rb.method);
                assert_eq!(ra.indices, rb.indices, "method {} differs", ra.method);
            }
        }
    }

    #[test]
    fn sr_preference_is_valid_permutation() {
        let case = some_failed_test();
        let pref = spectral_residual_preference(&case.test);
        assert_eq!(pref.len(), case.test.len());
        let mut sorted = pref.as_order().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..case.test.len()).collect::<Vec<_>>());
    }

    #[test]
    fn tiny_test_sets_fall_back_to_identity() {
        let pref = spectral_residual_preference(&[1.0, 2.0]);
        assert_eq!(pref.as_order(), &[0, 1]);
    }
}
