//! Regenerates Figure 5b (runtime on synthetic drift data, p = 3%).
use moche_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("{}", moche_bench::experiments::runtime::fig5b(&scale));
}
