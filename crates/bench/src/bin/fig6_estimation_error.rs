//! Regenerates Figure 6 (estimation error of the Phase-1 lower bound).
use moche_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("{}", moche_bench::experiments::estimation::fig6(&scale));
}
