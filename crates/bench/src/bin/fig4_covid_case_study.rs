//! Regenerates Figure 4 (COVID-19 case study: MOCHE vs GRD vs D3).
use moche_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("{}", moche_bench::experiments::covid::fig4(scale.seed));
}
