//! Regenerates Table 2 (reverse factor of CS and GRC).
use moche_bench::experiments::effectiveness;
use moche_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    let data = effectiveness::collect(&scale);
    println!("{}", effectiveness::table2_rf(&data));
}
