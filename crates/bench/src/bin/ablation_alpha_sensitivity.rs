//! Ablation (beyond the paper's tables): how the explanation size k and
//! the Phase-1 lower bound k_hat vary with the significance level alpha,
//! on the COVID-19 case study and a synthetic drift pair.
use moche_bench::report::{fmt_f, Table};
use moche_bench::ExperimentScale;
use moche_core::KsConfig;
use moche_core::{Moche, MocheError};
use moche_data::{failing_kifer_pair, CovidDataset};

fn profile_table(name: &str, r: &[f64], t: &[f64], alphas: &[f64]) -> String {
    let moche = Moche::new(0.05).expect("valid alpha");
    let mut table = Table::new(vec!["alpha", "k", "k/m %", "k_hat", "EE"]);
    let profile = moche.size_profile(r, t, alphas).expect("valid data");
    for (alpha, result) in profile {
        match result {
            Ok(s) => table.push_row(vec![
                format!("{alpha}"),
                s.k.to_string(),
                fmt_f(100.0 * s.k as f64 / t.len() as f64, 2),
                s.k_hat.to_string(),
                s.estimation_error().to_string(),
            ]),
            Err(MocheError::TestAlreadyPasses { .. }) => table.push_row(vec![
                format!("{alpha}"),
                "-".into(),
                "(test passes)".into(),
                "-".into(),
                "-".into(),
            ]),
            Err(e) => table.push_row(vec![
                format!("{alpha}"),
                "-".into(),
                format!("{e}"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    format!("{name} (m = {}):\n{}", t.len(), table.render())
}

fn main() {
    let scale = ExperimentScale::from_args();
    let alphas = [0.001, 0.01, 0.05, 0.1, 0.2, 0.25];
    println!("Ablation: explanation size vs significance level\n");

    let ds = CovidDataset::generate(scale.seed);
    println!(
        "{}",
        profile_table("COVID-19 case study", &ds.reference_values(), &ds.test_values(), &alphas)
    );

    let cfg = KsConfig::new(0.05).expect("valid alpha");
    let pair = failing_kifer_pair(5_000, 0.05, &cfg, scale.seed, 100)
        .expect("5% contamination fails at this size");
    println!(
        "{}",
        profile_table("synthetic drift (w = 5000, p = 5%)", &pair.reference, &pair.test, &alphas)
    );
    println!(
        "Reading: a stricter alpha widens the KS threshold, so fewer points need\n\
         removing; k grows with alpha while the lower bound k_hat stays tight (EE small)."
    );
}
