//! Writes the synthetic datasets to plain text files so they can be fed to
//! the `moche` CLI (or any other tool). One value per line, `#` headers.
//!
//! Usage: dump_datasets [--out DIR] [--seed N]
use moche_bench::ExperimentScale;
use moche_data::nab::generate_all;
use moche_data::CovidDataset;
use std::fmt::Write as _;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_arg_strings(&args);
    let mut out_dir = PathBuf::from("datasets");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            if let Some(d) = it.next() {
                out_dir = PathBuf::from(d);
            }
        }
    }
    std::fs::create_dir_all(&out_dir)?;

    // COVID-19 reference/test pair (age-group codes).
    let ds = CovidDataset::generate(scale.seed);
    let write_values = |name: &str, header: &str, values: &[f64]| -> std::io::Result<PathBuf> {
        let mut content = format!("# {header}\n");
        for v in values {
            let _ = writeln!(content, "{v}");
        }
        let path = out_dir.join(name);
        std::fs::write(&path, content)?;
        Ok(path)
    };
    write_values(
        "covid_reference.txt",
        "synthetic COVID-19 August cases (age-group codes 1-10)",
        &ds.reference_values(),
    )?;
    write_values(
        "covid_test.txt",
        "synthetic COVID-19 September cases (age-group codes 1-10)",
        &ds.test_values(),
    )?;

    // Every NAB-like series, with ground-truth windows in the header.
    let mut count = 2usize;
    for series in generate_all(scale.seed) {
        let header = format!(
            "{} ({} points; ground-truth anomaly windows: {:?})",
            series.name,
            series.len(),
            series.anomalies
        );
        write_values(&format!("{}.txt", series.name), &header, &series.values)?;
        count += 1;
    }
    println!("wrote {count} files to {}", out_dir.display());
    println!("try: moche monitor {}/art_drift_00.txt --window 200", out_dir.display());
    println!(
        "or:  moche explain {}/covid_reference.txt {}/covid_test.txt --preference value-desc",
        out_dir.display(),
        out_dir.display()
    );
    Ok(())
}
