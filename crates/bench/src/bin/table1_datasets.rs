//! Regenerates Table 1 (dataset statistics). `--seed N` overrides the seed.
use moche_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("{}", moche_bench::experiments::table1::run(scale.seed));
}
