//! Regenerates Figure 2 (average ISE per dataset per method).
//! `--full` runs the paper-scale sweep.
use moche_bench::experiments::effectiveness;
use moche_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    let data = effectiveness::collect(&scale);
    println!("{}", effectiveness::fig2_ise(&data));
}
