//! Regenerates Figure 3 (average RMSE per dataset per method).
use moche_bench::experiments::effectiveness;
use moche_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    let data = effectiveness::collect(&scale);
    println!("{}", effectiveness::fig3_rmse(&data));
}
