//! The perf-regression gate: compares a fresh `run_all --bench-json` run
//! against the committed `BENCH_core.json` baseline and exits non-zero on
//! regression (see `moche_bench::baseline` for the rules).
//!
//! ```text
//! perf_gate --baseline BENCH_core.json --current /tmp/BENCH_new.json \
//!           [--max-regress 0.15] [--report report.txt] [--update-baseline]
//! ```
//!
//! `--update-baseline` copies the current run over the baseline (after
//! printing the comparison) and exits 0 — the refresh path for intentional
//! performance changes.

use moche_bench::baseline::{compare, parse_bench_json, GateConfig};
use std::process::ExitCode;

struct Args {
    baseline: String,
    current: String,
    max_regress: f64,
    report: Option<String>,
    update_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: "BENCH_core.json".to_string(),
        current: String::new(),
        max_regress: 0.15,
        report: None,
        update_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => args.baseline = it.next().ok_or("--baseline needs a path")?,
            "--current" => args.current = it.next().ok_or("--current needs a path")?,
            "--max-regress" => {
                let raw = it.next().ok_or("--max-regress needs a value")?;
                args.max_regress = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|v| *v >= 0.0)
                    .ok_or(format!("invalid --max-regress '{raw}'"))?;
            }
            "--report" => args.report = Some(it.next().ok_or("--report needs a path")?),
            "--update-baseline" => args.update_baseline = true,
            "--help" | "-h" => {
                return Err("usage: perf_gate --current NEW.json [--baseline BENCH_core.json] \
                            [--max-regress 0.15] [--report PATH] [--update-baseline]"
                    .to_string())
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.current.is_empty() {
        return Err("--current is required (a fresh `run_all --bench-json` output)".to_string());
    }
    Ok(args)
}

fn read_entries(
    path: &str,
) -> Result<std::collections::BTreeMap<String, moche_bench::baseline::BenchEntry>, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_bench_json(&content).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let result = (|| -> Result<bool, String> {
        let baseline = read_entries(&args.baseline)?;
        let current = read_entries(&args.current)?;
        let cfg = GateConfig { max_ns_regression: args.max_regress, ..GateConfig::default() };
        let report = compare(&baseline, &current, &cfg);
        let rendered = report.render();
        print!("{rendered}");
        if let Some(path) = &args.report {
            std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if args.update_baseline {
            std::fs::copy(&args.current, &args.baseline)
                .map_err(|e| format!("cannot update {}: {e}", args.baseline))?;
            eprintln!("[perf-gate] baseline {} refreshed from {}", args.baseline, args.current);
            return Ok(true);
        }
        Ok(report.passed())
    })();
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("[perf-gate] {msg}");
            ExitCode::from(2)
        }
    }
}
