//! Regenerates Figure 5a (runtime vs reference/test size on TWT).
use moche_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("{}", moche_bench::experiments::runtime::fig5a(&scale));
}
