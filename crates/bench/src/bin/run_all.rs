//! Runs every experiment regenerator in sequence and prints a consolidated
//! report. `--full` switches every experiment to the paper-scale sweep.
use moche_bench::experiments::{self, effectiveness};
use moche_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    let mode = if scale.full { "FULL (paper scale)" } else { "QUICK (scaled down)" };
    println!("=== MOCHE reproduction: all experiments [{mode}], seed {} ===\n", scale.seed);

    println!("{}", experiments::table1::run(scale.seed));
    println!("{}", experiments::covid::fig1(scale.seed));
    println!("{}", experiments::covid::fig4(scale.seed));

    eprintln!("[run_all] collecting effectiveness data (Figures 2-3, Table 2)...");
    let data = effectiveness::collect(&scale);
    println!("{}", effectiveness::fig2_ise(&data));
    println!("{}", effectiveness::table2_rf(&data));
    println!("{}", effectiveness::fig3_rmse(&data));

    eprintln!("[run_all] timing sweeps (Figure 5)...");
    println!("{}", experiments::runtime::fig5a(&scale));
    println!("{}", experiments::runtime::fig5b(&scale));

    eprintln!("[run_all] estimation errors (Figure 6)...");
    println!("{}", experiments::estimation::fig6(&scale));
}
