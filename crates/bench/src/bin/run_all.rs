//! Runs every experiment regenerator in sequence and prints a consolidated
//! report. `--full` switches every experiment to the paper-scale sweep.
//!
//! `--bench-json [PATH]` instead runs the compact perf-evidence suite
//! (`moche_bench::perf`) and writes machine-readable results (default
//! `BENCH_core.json`), with heap-allocation counts measured by this
//! binary's counting allocator. Perf PRs diff that file to prove wins.

use moche_bench::experiments::{self, effectiveness};
use moche_bench::{perf, ExperimentScale};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// The system allocator plus a global allocation counter, so the
/// perf-evidence suite can report allocs/iteration alongside ns/iteration.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--bench-json") {
        let path = args
            .get(pos + 1)
            .filter(|a| !a.starts_with("--"))
            .map_or("BENCH_core.json", String::as_str);
        run_bench_json(path);
        return;
    }

    let scale = ExperimentScale::from_args();
    let mode = if scale.full { "FULL (paper scale)" } else { "QUICK (scaled down)" };
    println!("=== MOCHE reproduction: all experiments [{mode}], seed {} ===\n", scale.seed);

    println!("{}", experiments::table1::run(scale.seed));
    println!("{}", experiments::covid::fig1(scale.seed));
    println!("{}", experiments::covid::fig4(scale.seed));

    eprintln!("[run_all] collecting effectiveness data (Figures 2-3, Table 2)...");
    let data = effectiveness::collect(&scale);
    println!("{}", effectiveness::fig2_ise(&data));
    println!("{}", effectiveness::table2_rf(&data));
    println!("{}", effectiveness::fig3_rmse(&data));

    eprintln!("[run_all] timing sweeps (Figure 5)...");
    println!("{}", experiments::runtime::fig5a(&scale));
    println!("{}", experiments::runtime::fig5b(&scale));

    eprintln!("[run_all] estimation errors (Figure 6)...");
    println!("{}", experiments::estimation::fig6(&scale));
}

fn run_bench_json(path: &str) {
    eprintln!("[bench-json] running the perf-evidence suite (output: {path})...");
    let counter = || ALLOCATIONS.load(Ordering::Relaxed);
    let records = perf::evidence_suite(Some(&counter));
    let json = perf::to_json(&records);
    print!("{json}");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("[bench-json] cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[bench-json] wrote {} record(s) to {path}", records.len());
}
