//! Regenerates Figure 1 (COVID-19 dataset and explanation overview).
use moche_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("{}", moche_bench::experiments::covid::fig1(scale.seed));
}
