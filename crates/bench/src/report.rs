//! Plain-text table and chart rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; must match the header count.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let _ = write!(out, "+{:-<1$}", "", w + 2);
                if i + 1 == cols {
                    out.push('+');
                    out.push('\n');
                }
            }
        };
        sep(&mut out);
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "| {h:<w$} ", w = widths[i]);
            if i + 1 == cols {
                out.push('|');
                out.push('\n');
            }
        }
        sep(&mut out);
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "| {cell:<w$} ", w = widths[i]);
                if i + 1 == cols {
                    out.push('|');
                    out.push('\n');
                }
            }
        }
        sep(&mut out);
        out
    }
}

/// Formats a float with `prec` decimals; `NaN` renders as `-`.
pub fn fmt_f(x: f64, prec: usize) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.prec$}")
    }
}

/// Formats seconds adaptively (`µs` / `ms` / `s`).
pub fn fmt_secs(s: f64) -> String {
    if s.is_nan() {
        "-".to_string()
    } else if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Renders a horizontal ASCII bar of `value` against `max` scaled to
/// `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let filled = ((value / max) * width as f64).round().clamp(0.0, width as f64) as usize;
    "#".repeat(filled)
}

/// Renders a histogram (label, count) list as rows of bars.
pub fn histogram(items: &[(String, f64)], width: usize) -> String {
    let max = items.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let _ = writeln!(
            out,
            "  {label:<label_w$} {v:>10.2} |{bar}",
            v = value,
            bar = bar(*value, max, width)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["method", "value"]);
        t.push_row(vec!["M".to_string(), "1.00".to_string()]);
        t.push_row(vec!["GRD".to_string(), "0.25".to_string()]);
        let s = t.render();
        assert!(s.contains("| method |"));
        assert!(s.contains("| GRD    |"));
        let widths: Vec<usize> = s.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(f64::NAN, 2), "-");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(0.0000005), "0.5us");
        assert_eq!(fmt_secs(0.005), "5.00ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(f64::NAN), "-");
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn histogram_renders_all_rows() {
        let items = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let h = histogram(&items, 20);
        assert_eq!(h.lines().count(), 2);
        assert!(h.contains("bb"));
    }
}
