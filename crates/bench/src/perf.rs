//! Machine-readable performance evidence.
//!
//! `cargo run --release -p moche-bench --bin run_all -- --bench-json` runs a
//! compact, deterministic suite over the explain hot path and writes
//! `BENCH_core.json` — a map from benchmark name to `ns_per_iter`,
//! `per_sec` and (when the caller installs a counting allocator, as
//! `run_all` does) `allocs_per_iter`. Perf PRs diff these files to prove a
//! win; the criterion benches cover the same paths interactively.
//!
//! The suite pins the workload the ROADMAP cares about: `w = 10_000`
//! reference/test sizes, the allocating one-shot paths against the
//! scratch-reusing [`ExplainEngine`], and the shared-reference batch
//! throughput across thread counts.

use moche_core::bounds::{BoundsContext, BoundsWorkspace};
use moche_core::{
    BaseVector, BatchExplainer, ConstructionStrategy, ExplainEngine, ExplanationArena, KsConfig,
    Moche, PreferenceList, ReferenceIndex, SizeSearch, SortedReference, StreamMode,
    StreamingBatchExplainer,
};
use moche_data::dist::normal;
use moche_data::failing_kifer_pair;
use moche_data::rng::rng_from_seed;
use moche_multidim::{
    ks2d_statistic, ks2d_statistic_indexed, Explain2dEngine, Explanation2dArena, GreedyImpact2d,
    Ks2dConfig, Point2, RankIndex2d, Scratch2d,
};
use moche_sigproc::SpectralResidual;
use moche_stream::{DriftMonitor, FleetConfig, MonitorConfig, MonitorFleet};
use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark name, `group/case` style.
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// `1e9 / ns_per_iter`: iterations (here: explanations or probes) per
    /// second.
    pub per_sec: f64,
    /// Heap allocations per iteration, when an allocation counter is
    /// installed.
    pub allocs_per_iter: Option<f64>,
}

/// Times `f`, returning the median of five samples after auto-calibrating
/// the iteration count to at least ~20 ms per sample.
pub fn measure<F: FnMut()>(
    name: &str,
    mut f: F,
    alloc_counter: Option<&dyn Fn() -> u64>,
) -> BenchRecord {
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_nanos() >= 20_000_000 || iters >= 1 << 22 {
            break;
        }
        iters *= 2;
    }
    let samples = 5;
    let mut per_iter = Vec::with_capacity(samples);
    let mut allocs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let allocs_before = alloc_counter.map(|c| c());
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        if let (Some(counter), Some(before)) = (alloc_counter, allocs_before) {
            allocs.push((counter() - before) as f64 / iters as f64);
        }
    }
    per_iter.sort_by(f64::total_cmp);
    let ns_per_iter = per_iter[per_iter.len() / 2];
    // Median, like the timing, so a one-time buffer growth in a single
    // sample cannot skew the reported allocation count.
    allocs.sort_by(f64::total_cmp);
    let allocs_per_iter = allocs.get(allocs.len() / 2).copied();
    BenchRecord {
        name: name.to_string(),
        ns_per_iter,
        per_sec: 1.0e9 / ns_per_iter.max(1e-9),
        allocs_per_iter,
    }
}

/// The standard evidence suite (see module docs). Deterministic inputs;
/// ~a minute of wall clock in release mode.
pub fn evidence_suite(alloc_counter: Option<&dyn Fn() -> u64>) -> Vec<BenchRecord> {
    let cfg = KsConfig::new(0.05).unwrap();
    let w = 10_000usize;
    let pair = failing_kifer_pair(w, 0.03, &cfg, 7, 100).expect("p = 3% fails at w = 10_000");
    let base = BaseVector::build(&pair.reference, &pair.test).unwrap();
    let ctx = BoundsContext::new(&base, &cfg);
    let h = w / 20;
    let pref = PreferenceList::random(pair.test.len(), 13);
    let shared = SortedReference::new(&pair.reference).unwrap();
    let mut records = Vec::new();

    eprintln!("[bench-json] bound probes (w = {w})...");
    records.push(measure(
        &format!("bounds/compute_alloc/w={w}"),
        || {
            black_box(ctx.compute(black_box(h)));
        },
        alloc_counter,
    ));
    let mut ws = BoundsWorkspace::new();
    ctx.compute_into(h, &mut ws); // warm the buffers before measuring
    records.push(measure(
        &format!("bounds/compute_workspace/w={w}"),
        || {
            black_box(ctx.compute_into(black_box(h), &mut ws));
        },
        alloc_counter,
    ));
    // The Phase-1 kernels: one scalar Theorem-2 verdict versus one fused
    // pass evaluating WAVEFRONT_PROBES verdicts (the wavefront's per-round
    // cost; divide by the probe count for per-verdict cost).
    records.push(measure(
        &format!("bounds/necessary_condition/w={w}"),
        || {
            black_box(ctx.necessary_condition(black_box(h)));
        },
        alloc_counter,
    ));
    let probes = moche_core::phase1::WAVEFRONT_PROBES;
    let hs: Vec<usize> = (0..probes).map(|j| 1 + j * (w - 2) / probes).collect();
    let mut verdicts = vec![false; probes];
    records.push(measure(
        &format!("bounds/necessary_condition_multi{probes}/w={w}"),
        || {
            ctx.necessary_condition_multi(black_box(&hs), &mut verdicts);
            black_box(&verdicts);
        },
        alloc_counter,
    ));

    eprintln!("[bench-json] phase 1 (w = {w})...");
    records.push(measure(
        &format!("phase1/find_size/w={w}"),
        || {
            black_box(moche_core::phase1::find_size(black_box(&ctx), 0.05).unwrap());
        },
        alloc_counter,
    ));
    records.push(measure(
        &format!("phase1/find_size_wavefront/w={w}"),
        || {
            black_box(moche_core::phase1::find_size_wavefront(black_box(&ctx), 0.05).unwrap());
        },
        alloc_counter,
    ));

    eprintln!("[bench-json] end-to-end explain (w = {w})...");
    let reference_strategy = Moche::with_config(cfg).construction(ConstructionStrategy::Reference);
    records.push(measure(
        &format!("end_to_end/moche_reference_alloc/w={w}"),
        || {
            black_box(
                reference_strategy.explain(black_box(&pair.reference), &pair.test, &pref).unwrap(),
            );
        },
        alloc_counter,
    ));
    let oneshot = Moche::with_config(cfg);
    records.push(measure(
        &format!("end_to_end/moche_oneshot/w={w}"),
        || {
            black_box(oneshot.explain(black_box(&pair.reference), &pair.test, &pref).unwrap());
        },
        alloc_counter,
    ));
    let mut engine = ExplainEngine::with_config(cfg);
    records.push(measure(
        &format!("end_to_end/engine_reuse/w={w}"),
        || {
            black_box(engine.explain(black_box(&pair.reference), &pair.test, &pref).unwrap());
        },
        alloc_counter,
    ));
    records.push(measure(
        &format!("end_to_end/engine_shared_ref/w={w}"),
        || {
            black_box(
                engine.explain_with_reference(black_box(&shared), &pair.test, &pref).unwrap(),
            );
        },
        alloc_counter,
    ));
    // The fully recycled steady state: indexed reference + output arena.
    // Once warm, an explain performs zero heap allocations — the number
    // this entry gates.
    let index = ReferenceIndex::from_sorted(&shared);
    let mut arena = ExplanationArena::new();
    let warm = engine.explain_with_index_in(&index, &pair.test, &pref, &mut arena).unwrap();
    arena.recycle(warm);
    records.push(measure(
        &format!("end_to_end/engine_indexed_arena/w={w}"),
        || {
            let e = engine
                .explain_with_index_in(black_box(&index), &pair.test, &pref, &mut arena)
                .unwrap();
            black_box(e.size());
            arena.recycle(e);
        },
        alloc_counter,
    ));

    // The asymmetric construction workload: one large indexed reference,
    // small windows — the regime where the ReferenceIndex splice beats the
    // per-element merge loop. `build_with_reference` (not `build`) is the
    // merged side, so the comparison isolates construction, not sorting.
    let big_n = 100_000usize;
    let small_m = 1_000usize;
    eprintln!("[bench-json] base-vector construction (n = {big_n}, m = {small_m})...");
    let mut rng = rng_from_seed(42);
    let big_ref: Vec<f64> = (0..big_n).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
    let window: Vec<f64> = (0..small_m).map(|_| normal(&mut rng, 0.5, 1.2)).collect();
    let big_shared = SortedReference::new(&big_ref).unwrap();
    let big_index = ReferenceIndex::from_sorted(&big_shared);
    records.push(measure(
        &format!("base_vector/build_merged/n={big_n},m={small_m}"),
        || {
            black_box(BaseVector::build_with_reference(&big_shared, black_box(&window)).unwrap());
        },
        alloc_counter,
    ));
    records.push(measure(
        &format!("base_vector/build_indexed/n={big_n},m={small_m}"),
        || {
            black_box(BaseVector::build_with_index(&big_index, black_box(&window)).unwrap());
        },
        alloc_counter,
    ));
    // The engine's steady state: splice into recycled output buffers, so
    // the per-window cost drops to the actual construction work.
    let mut recycled = BaseVector::build_with_index(&big_index, &window).unwrap();
    records.push(measure(
        &format!("base_vector/build_indexed_reuse/n={big_n},m={small_m}"),
        || {
            BaseVector::build_with_index_into(&big_index, black_box(&window), &mut recycled)
                .unwrap();
            black_box(&recycled);
        },
        alloc_counter,
    ));

    let jobs = 64usize;
    let windows: Vec<Vec<f64>> = (0..jobs)
        .map(|i| {
            let mut t = pair.test.clone();
            let shift = i % t.len();
            t.rotate_left(shift);
            t
        })
        .collect();
    for threads in [1usize, 8] {
        eprintln!("[bench-json] batch throughput ({threads} thread(s))...");
        let explainer = BatchExplainer::with_config(cfg).threads(threads);
        let record = measure(
            &format!("batch/shared_ref_{jobs}_windows_w{w}/threads={threads}"),
            || {
                let results = explainer.explain_windows(black_box(&shared), &windows, None);
                assert!(results.iter().all(Result::is_ok));
                black_box(results);
            },
            alloc_counter,
        );
        // Report per-explanation throughput rather than per-batch.
        records.push(BenchRecord {
            name: record.name,
            ns_per_iter: record.ns_per_iter / jobs as f64,
            per_sec: record.per_sec * jobs as f64,
            allocs_per_iter: record.allocs_per_iter.map(|a| a / jobs as f64),
        });
    }

    for (mode, tag) in [(StreamMode::Explain, "explain"), (StreamMode::SizeOnly, "size_only")] {
        eprintln!("[bench-json] streaming batch ({tag})...");
        let streamer = StreamingBatchExplainer::with_config(cfg).threads(1).buffer(8).mode(mode);
        let record = measure(
            &format!("streaming/{tag}_{jobs}_windows_w{w}/threads=1"),
            || {
                let summary = streamer.explain_stream(
                    black_box(&index),
                    windows.iter().cloned(),
                    None,
                    |result| {
                        assert!(result.result.is_ok());
                    },
                );
                assert_eq!(summary.windows, jobs);
                black_box(summary);
            },
            alloc_counter,
        );
        // Per-window, like the batch records.
        records.push(BenchRecord {
            name: record.name,
            ns_per_iter: record.ns_per_iter / jobs as f64,
            per_sec: record.per_sec * jobs as f64,
            allocs_per_iter: record.allocs_per_iter.map(|a| a / jobs as f64),
        });
    }

    eprintln!("[bench-json] streaming steady state (recycled source + arena)...");
    records.push(measure_streaming_steady_state(
        &format!("streaming/explain_recycled_steady_state_w{w}/threads=1"),
        cfg,
        &index,
        &windows,
        alloc_counter,
    ));

    records.extend(ks2d_suite(alloc_counter));
    records.extend(monitor_suite(w, alloc_counter));
    records.extend(fleet_suite(alloc_counter));

    records
}

/// The 2-D evidence fixture: a dense lattice reference and a window whose
/// tail is a far-off contaminating cluster, so the Fasano-Franceschini test
/// fails and the explanation is the cluster. Sizes are modest because the
/// naive impact explainer is the quadratic "before" entry. Shared with
/// `benches/explain2d.rs`, so the criterion numbers and the
/// `BENCH_core.json` evidence measure the identical workload.
pub fn contaminated2d() -> (Vec<Point2>, Vec<Point2>) {
    let grid = |n: usize, ox: f64, oy: f64| -> Vec<Point2> {
        (0..n)
            .map(|i| {
                Point2::new(((i * 7) % 13) as f64 * 0.31 + ox, ((i * 11) % 17) as f64 * 0.23 + oy)
            })
            .collect()
    };
    let reference = grid(120, 0.0, 0.0);
    let mut window = grid(60, 0.01, 0.02);
    window.extend(grid(25, 50.0, 50.0));
    (reference, window)
}

/// The 2-D engine-treatment evidence: the rank-space statistic against the
/// per-call rescan, and the warm engine + arena pair (0 allocs once warm)
/// against the allocating naive impact descent.
fn ks2d_suite(alloc_counter: Option<&dyn Fn() -> u64>) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    let (reference, window) = contaminated2d();
    let (n, m) = (reference.len(), window.len());
    let cfg = Ks2dConfig::new(0.05).unwrap();
    let index = RankIndex2d::new(&reference).unwrap();

    eprintln!("[bench-json] 2-D KS statistic (n = {n}, m = {m})...");
    records.push(measure(
        &format!("ks2d/statistic_naive/n={n},m={m}"),
        || {
            black_box(ks2d_statistic(black_box(&reference), &window).unwrap());
        },
        alloc_counter,
    ));
    let mut scratch = Scratch2d::new();
    ks2d_statistic_indexed(&index, &window, &mut scratch).unwrap(); // warm the sweep buffers
    records.push(measure(
        &format!("ks2d/statistic_indexed/n={n},m={m}"),
        || {
            black_box(ks2d_statistic_indexed(black_box(&index), &window, &mut scratch).unwrap());
        },
        alloc_counter,
    ));

    eprintln!("[bench-json] 2-D explanation (n = {n}, m = {m})...");
    records.push(measure(
        &format!("explain2d/naive_impact/n={n},m={m}"),
        || {
            black_box(GreedyImpact2d.explain(black_box(&reference), &window, &cfg, None).unwrap());
        },
        alloc_counter,
    ));
    let mut engine = Explain2dEngine::with_config(cfg);
    let mut arena = Explanation2dArena::new();
    let warm = engine.explain_in(&index, &window, None, &mut arena).unwrap();
    arena.recycle(warm);
    records.push(measure(
        &format!("explain2d/engine_arena/n={n},m={m}"),
        || {
            let e = engine.explain_in(black_box(&index), &window, None, &mut arena).unwrap();
            black_box(e.size());
            arena.recycle(e);
        },
        alloc_counter,
    ));

    records
}

/// The monitor's benchmark stream: a periodic base plus a tiny
/// position-keyed jitter, so windows hold ~`w` *distinct* values (a
/// realistic order-statistic depth, and a reference the old per-alarm sort
/// cannot shortcut through pdqsort's few-distinct fast path) while the
/// jitter's period-`w` alignment keeps paired windows distribution-equal —
/// the stationary stream never false-alarms. Shared with
/// `benches/monitor_alarm.rs`, so the criterion numbers and the
/// `BENCH_core.json` evidence measure the identical workload.
pub fn monitor_observation(i: usize, w: usize, shifted: bool) -> f64 {
    ((i * 13) % 11) as f64 + (i % w) as f64 * 1e-8 + if shifted { 20.0 } else { 0.0 }
}

/// A monitor over [`monitor_observation`]'s stream whose windows are full
/// and failing (reference low, test shifted): every alarm-path call
/// afterwards explains the drift. Alarm handling is left to the caller
/// (`explain_on_drift` off); the stream position to continue pushing from
/// is `2 * w`.
pub fn alarmed_monitor(w: usize) -> DriftMonitor {
    let mut cfg = MonitorConfig::new(w, 0.05);
    cfg.reset_on_drift = false;
    cfg.explain_on_drift = false;
    let mut mon = DriftMonitor::new(cfg).unwrap();
    for i in 0..w {
        mon.push(monitor_observation(i, w, false));
    }
    for i in 0..w {
        mon.push(monitor_observation(w + i, w, true));
    }
    assert!(mon.alarms() > 0, "the shifted window must be failing");
    mon
}

/// One measured alarm iteration: slide once (a real alarm always follows
/// a push, so the index re-materialization is honestly re-done), then
/// explain and recycle. Every slide promotes one shifted value into the
/// reference window, so after ~`w` iterations the drift has fully
/// traversed the pair and the KS test passes again; when that happens the
/// monitor is re-seeded via [`alarmed_monitor`] — rare enough (once per
/// ~`w` iterations) that the median is unaffected, and the iteration
/// count stays unbounded-safe on any harness. Returns the explanation
/// size.
pub fn alarm_explain_iteration(mon: &mut DriftMonitor, at: &mut usize, w: usize) -> usize {
    mon.push(black_box(monitor_observation(*at, w, true)));
    *at += 1;
    let e = match mon.explain_current() {
        Some(e) => e,
        None => {
            *mon = alarmed_monitor(w);
            *at = 2 * w;
            mon.explain_current().expect("a fresh alarmed monitor is failing")
        }
    };
    let size = e.size();
    mon.recycle(e);
    size
}

/// The size-only counterpart of [`alarm_explain_iteration`].
pub fn alarm_size_iteration(mon: &mut DriftMonitor, at: &mut usize, w: usize) -> SizeSearch {
    mon.push(black_box(monitor_observation(*at, w, true)));
    *at += 1;
    match mon.size_current() {
        Some(size) => size,
        None => {
            *mon = alarmed_monitor(w);
            *at = 2 * w;
            mon.size_current().expect("a fresh alarmed monitor is failing")
        }
    }
}

/// The PR-4-era alarm body — re-flatten both windows, re-sort the
/// reference into the index (`ReferenceIndex::rebuild_from`), allocating
/// `SpectralResidual::scores` — kept as a reusable replay so the criterion
/// bench and the evidence suite measure the identical "before" path.
pub struct RebuildAlarmReplay {
    reference: Vec<f64>,
    test: Vec<f64>,
    engine: ExplainEngine,
    arena: ExplanationArena,
    index: ReferenceIndex,
    sort_scratch: Vec<f64>,
    ref_scratch: Vec<f64>,
    test_scratch: Vec<f64>,
    pref: PreferenceList,
    sr: SpectralResidual,
}

impl RebuildAlarmReplay {
    /// Snapshots a failing monitor's windows for replay.
    pub fn new(mon: &DriftMonitor) -> Self {
        let reference = mon.reference_window();
        let index = ReferenceIndex::new(&reference).unwrap();
        Self {
            reference,
            test: mon.test_window(),
            engine: ExplainEngine::with_config(KsConfig::new(0.05).unwrap()),
            arena: ExplanationArena::new(),
            index,
            sort_scratch: Vec::new(),
            ref_scratch: Vec::new(),
            test_scratch: Vec::new(),
            pref: PreferenceList::identity(0),
            sr: SpectralResidual::default(),
        }
    }

    /// One full old-style alarm; returns the explanation size.
    pub fn alarm_once(&mut self) -> usize {
        self.ref_scratch.clear();
        self.ref_scratch.extend_from_slice(black_box(&self.reference));
        self.test_scratch.clear();
        self.test_scratch.extend_from_slice(black_box(&self.test));
        self.index.rebuild_from(&self.ref_scratch, &mut self.sort_scratch).unwrap();
        self.pref.fill_from_scores_desc(&self.sr.scores(&self.test_scratch)).unwrap();
        let e = self
            .engine
            .explain_with_index_in(&self.index, &self.test_scratch, &self.pref, &mut self.arena)
            .unwrap();
        let size = e.size();
        self.arena.recycle(e);
        size
    }
}

/// The monitor's cost model, measured: the steady-state slide, the
/// incremental alarm paths (explain and size-only — the "after" entries,
/// 0 allocs once warm, each iteration sliding once so the index really
/// re-materializes), and the [`RebuildAlarmReplay`] "before" entry.
fn monitor_suite(w: usize, alloc_counter: Option<&dyn Fn() -> u64>) -> Vec<BenchRecord> {
    let mut records = Vec::new();

    eprintln!("[bench-json] monitor steady-state slide (w = {w})...");
    let mut cfg = MonitorConfig::new(w, 0.05);
    cfg.reset_on_drift = false;
    cfg.explain_on_drift = false;
    let mut mon = DriftMonitor::new(cfg).unwrap();
    let mut at = 0usize;
    for _ in 0..2 * w {
        mon.push(monitor_observation(at, w, false));
        at += 1;
    }
    records.push(measure(
        &format!("monitor/steady_push/w={w}"),
        || {
            // Stationary stream: the slides and the decision, no alarm.
            let event = mon.push(black_box(monitor_observation(at, w, false)));
            at += 1;
            black_box(&event);
        },
        alloc_counter,
    ));

    eprintln!("[bench-json] monitor alarm paths (w = {w})...");
    let mut mon = alarmed_monitor(w);
    // Warm the alarm scratch before measuring the steady state.
    let e = mon.explain_current().expect("windows are failing");
    mon.recycle(e);
    let mut at = 2 * w;
    records.push(measure(
        &format!("monitor/alarm_explain/w={w}"),
        || {
            black_box(alarm_explain_iteration(&mut mon, &mut at, w));
        },
        alloc_counter,
    ));
    let mut sized = alarmed_monitor(w);
    let mut at = 2 * w;
    records.push(measure(
        &format!("monitor/alarm_size_only/w={w}"),
        || {
            black_box(alarm_size_iteration(&mut sized, &mut at, w));
        },
        alloc_counter,
    ));

    let mut replay = RebuildAlarmReplay::new(&mon);
    records.push(measure(
        &format!("monitor/alarm_explain_rebuild/w={w}"),
        || {
            black_box(replay.alarm_once());
        },
        alloc_counter,
    ));

    eprintln!("[bench-json] monitor checkpoint write (w = {w})...");
    // The operational cost of `moche monitor --checkpoint`: capture the
    // full monitor state, encode + checksum it, and persist atomically
    // (temp file + fsync + rename). This is what a `--checkpoint-every`
    // cadence buys per firing — the between-checkpoints cost is pinned at
    // zero by the allocation gates.
    let path = std::env::temp_dir().join(format!("moche-bench-checkpoint-{w}.snap"));
    records.push(measure(
        &format!("monitor/checkpoint_write/w={w}"),
        || {
            mon.checkpoint(black_box(&path)).expect("checkpoint write");
        },
        alloc_counter,
    ));
    let _ = std::fs::remove_file(&path);

    records
}

/// A fleet of `series` stationary monitors at window `w`, warmed until
/// every window pair is full (so the measured pushes are all steady-state
/// slides). Observations come from [`monitor_observation`], one stream
/// position per full round-robin pass — the daemon's access pattern,
/// where consecutive pushes hit different shards and series. Shared with
/// `benches/fleet_push.rs`, so the criterion numbers and the
/// `BENCH_core.json` evidence measure the identical workload.
pub fn warmed_fleet(series: u64, w: usize, shards: usize) -> (MonitorFleet, usize) {
    let mut monitor = MonitorConfig::new(w, 0.05);
    monitor.reset_on_drift = false;
    let mut fleet = MonitorFleet::new(FleetConfig::new(shards, monitor)).expect("valid config");
    let mut round = 0usize;
    for _ in 0..2 * w {
        for id in 0..series {
            fleet.push(id, monitor_observation(round, w, false)).expect("finite");
        }
        round += 1;
    }
    (fleet, round)
}

/// The `moche serve` evidence: multiplexed ingest throughput at two fleet
/// scales, tail push latency while part of the fleet is alarming, and the
/// cost of the crash-recovery path (`kill -9` → per-shard checkpoint
/// resume). The ISSUE's 0.15 perf gate runs over these records.
fn fleet_suite(alloc_counter: Option<&dyn Fn() -> u64>) -> Vec<BenchRecord> {
    let mut records = Vec::new();

    for (series, w, tag) in [(1_000u64, 64usize, "1k"), (100_000, 8, "100k")] {
        eprintln!("[bench-json] fleet steady push ({tag} series, w = {w})...");
        let (mut fleet, mut round) = warmed_fleet(series, w, 4);
        let mut id = 0u64;
        records.push(measure(
            &format!("fleet/push_{tag}_series/w={w}"),
            || {
                let event = fleet
                    .push(black_box(id), black_box(monitor_observation(round, w, false)))
                    .expect("finite");
                black_box(&event);
                id += 1;
                if id == series {
                    id = 0;
                    round += 1;
                }
            },
            alloc_counter,
        ));
        assert_eq!(fleet.stats().view().alarms, 0, "the stationary fleet must never alarm");
    }

    eprintln!("[bench-json] fleet p99 push latency under alarms...");
    let (w, series) = (64usize, 1_000u64);
    let mut monitor = MonitorConfig::new(w, 0.05);
    monitor.reset_on_drift = false;
    monitor.explain_on_drift = true;
    let mut fleet = MonitorFleet::new(FleetConfig::new(4, monitor)).expect("valid config");
    let mut round = 0usize;
    // Warm everyone stationary, then drift every 16th series for a full
    // window so its test window is shifted against its still-clean
    // reference — the configuration that alarms on every further push.
    for _ in 0..2 * w {
        for id in 0..series {
            fleet.push(id, monitor_observation(round, w, false)).expect("finite");
        }
        round += 1;
    }
    for _ in 0..w {
        for id in 0..series {
            fleet.push(id, monitor_observation(round, w, id.is_multiple_of(16))).expect("finite");
        }
        round += 1;
    }
    // Every 16th series runs shifted: its windows disagree on every push,
    // so ~6% of the measured pushes pay the full alarm path (KS verdict,
    // stats, explain-ticket enqueue or shed) — the daemon's worst steady
    // state. Tail latency is what the ISSUE asks in evidence: the p99 of
    // individual push times, median-of-5 rounds so one scheduler hiccup
    // cannot set the number.
    let (rounds, per_round) = (5usize, 20_000usize);
    let mut p99s = Vec::with_capacity(rounds);
    let mut lat = Vec::with_capacity(per_round);
    let mut id = 0u64;
    for _ in 0..rounds {
        lat.clear();
        for _ in 0..per_round {
            let value = monitor_observation(round, w, id.is_multiple_of(16));
            let t = Instant::now();
            let event = fleet.push(id, value).expect("finite");
            lat.push(t.elapsed().as_nanos() as f64);
            black_box(&event);
            id += 1;
            if id == series {
                id = 0;
                round += 1;
            }
            // The daemon drains deferred explains between pushes when the
            // ring goes idle; model that so the ticket queue stays live
            // without ever appearing inside a push measurement.
            if lat.len().is_multiple_of(256) {
                fleet.drain_explains(4, |_| {});
            }
        }
        lat.sort_by(f64::total_cmp);
        p99s.push(lat[lat.len() * 99 / 100]);
    }
    assert!(fleet.stats().view().alarms > 0, "the drifted slice must be alarming");
    p99s.sort_by(f64::total_cmp);
    let p99 = p99s[p99s.len() / 2];
    records.push(BenchRecord {
        name: format!("fleet/push_p99_under_alarms/w={w}"),
        ns_per_iter: p99,
        per_sec: 1.0e9 / p99.max(1e-9),
        allocs_per_iter: None,
    });

    eprintln!("[bench-json] fleet checkpoint + resume (1k series, w = 64)...");
    let (fleet, _) = warmed_fleet(1_000, 64, 4);
    let cfg = *fleet.config();
    let dir = std::env::temp_dir().join("moche-bench-fleet-resume");
    let _ = std::fs::remove_dir_all(&dir);
    records.push(measure(
        "fleet/checkpoint_1k_series/w=64",
        || {
            fleet.checkpoint_dir(black_box(&dir)).expect("checkpoint");
        },
        alloc_counter,
    ));
    records.push(measure(
        "fleet/resume_1k_series/w=64",
        || {
            let resumed = MonitorFleet::resume_from_dir(cfg, black_box(&dir)).expect("resume");
            assert_eq!(resumed.series_count(), 1_000);
            black_box(&resumed);
        },
        alloc_counter,
    ));
    let _ = std::fs::remove_dir_all(&dir);

    records
}

/// One single-threaded fully-recycled streaming run over `count` windows
/// cycled from `windows`: the source copies into recycled buffers and the
/// arena reclaims every output (see `StreamingBatchExplainer::explain_source`).
fn streaming_recycled_run(
    cfg: KsConfig,
    index: &ReferenceIndex,
    windows: &[Vec<f64>],
    count: usize,
) {
    let streamer = StreamingBatchExplainer::with_config(cfg).threads(1).buffer(8);
    let mut i = 0usize;
    let source = |buf: &mut Vec<f64>| {
        if i >= count {
            return false;
        }
        buf.clear();
        buf.extend_from_slice(&windows[i % windows.len()]);
        i += 1;
        true
    };
    let summary = streamer.explain_source(index, source, None, |r| {
        assert!(r.result.is_ok());
    });
    assert_eq!(summary.windows, count);
}

/// Measures the *marginal* per-window cost of the recycled streaming path:
/// the difference between a long and a short run, divided by the extra
/// windows. Both runs pay the identical warm-up (engine construction,
/// first-window buffer growth), so it cancels out and the reported
/// allocs/window is the true steady state — the "0 allocations per window"
/// claim the perf gate enforces.
fn measure_streaming_steady_state(
    name: &str,
    cfg: KsConfig,
    index: &ReferenceIndex,
    windows: &[Vec<f64>],
    alloc_counter: Option<&dyn Fn() -> u64>,
) -> BenchRecord {
    let (short, long) = (16usize, 48usize);
    let extra = (long - short) as f64;
    let samples = 5;
    let mut per_window = Vec::with_capacity(samples);
    let mut allocs = Vec::with_capacity(samples);
    let run = |count: usize| {
        let allocs_before = alloc_counter.map(|c| c());
        let t = Instant::now();
        streaming_recycled_run(cfg, index, windows, count);
        let ns = t.elapsed().as_nanos() as f64;
        (ns, alloc_counter.map(|c| c() - allocs_before.unwrap_or(0)))
    };
    for _ in 0..samples {
        let (ns_short, allocs_short) = run(short);
        let (ns_long, allocs_long) = run(long);
        per_window.push((ns_long - ns_short).max(0.0) / extra);
        if let (Some(a), Some(b)) = (allocs_short, allocs_long) {
            allocs.push((b.saturating_sub(a)) as f64 / extra);
        }
    }
    per_window.sort_by(f64::total_cmp);
    let ns_per_iter = per_window[per_window.len() / 2];
    allocs.sort_by(f64::total_cmp);
    let allocs_per_iter = allocs.get(allocs.len() / 2).copied();
    BenchRecord {
        name: name.to_string(),
        ns_per_iter,
        per_sec: 1.0e9 / ns_per_iter.max(1e-9),
        allocs_per_iter,
    }
}

/// Serializes records as a JSON object `{name: {ns_per_iter, per_sec,
/// allocs_per_iter?}}` (hand-rolled: the workspace is offline and
/// dependency-free).
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {{\"ns_per_iter\": {:.1}, \"per_sec\": {:.1}",
            r.name, r.ns_per_iter, r.per_sec
        ));
        if let Some(a) = r.allocs_per_iter {
            out.push_str(&format!(", \"allocs_per_iter\": {a:.1}"));
        }
        out.push('}');
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push('}');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_sane_numbers() {
        let mut acc = 0u64;
        let r = measure("test/noop", || acc = acc.wrapping_add(1), None);
        assert!(r.ns_per_iter > 0.0);
        assert!(r.per_sec > 0.0);
        assert!(r.allocs_per_iter.is_none());
    }

    #[test]
    fn measure_counts_allocations() {
        // A fake counter advancing by 3 per call gives 0 allocs/iter
        // between the paired before/after reads only if nothing advanced;
        // here we exercise the plumbing with a static counter.
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNT: AtomicU64 = AtomicU64::new(0);
        let counter = || COUNT.load(Ordering::Relaxed);
        let r = measure(
            "test/alloc",
            || {
                COUNT.fetch_add(2, Ordering::Relaxed);
            },
            Some(&counter),
        );
        let allocs = r.allocs_per_iter.expect("counter installed");
        assert!((allocs - 2.0).abs() < 1e-9, "allocs = {allocs}");
    }

    #[test]
    fn json_shape() {
        let records = vec![
            BenchRecord {
                name: "a/b".into(),
                ns_per_iter: 10.0,
                per_sec: 1e8,
                allocs_per_iter: Some(2.0),
            },
            BenchRecord { name: "c".into(), ns_per_iter: 5.0, per_sec: 2e8, allocs_per_iter: None },
        ];
        let json = to_json(&records);
        assert!(json.contains("\"a/b\""));
        assert!(json.contains("\"allocs_per_iter\": 2.0"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("ns_per_iter").count(), 2);
    }
}
