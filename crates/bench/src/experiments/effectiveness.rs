//! The effectiveness experiments over the NAB failed tests:
//! Figure 2 (average ISE), Table 2 (reverse factor) and Figure 3 (average
//! RMSE). All three consume one shared collection pass.

use crate::experiments::{all_failed_tests, ks_config};
use crate::metrics::{ise_flags, mean_of, reverse_factor, rmse_after_removal};
use crate::report::{fmt_f, Table};
use crate::runner::{default_threads, paper_roster, run_cases, CaseResult};
use crate::scale::ExperimentScale;
use moche_data::nab::NabFamily;
use std::fmt::Write as _;

/// The method names in roster order.
pub const METHODS: [&str; 7] = ["M", "GRC", "GRD", "CS", "S2G", "STMP", "D3"];

/// The shared effectiveness data: every sampled failed test, with every
/// method's explanation and timing.
#[derive(Debug, Clone)]
pub struct EffectivenessData {
    /// Per-case results.
    pub cases: Vec<CaseResult>,
}

/// Runs the roster over every sampled failed test of every family.
pub fn collect(scale: &ExperimentScale) -> EffectivenessData {
    let cfg = ks_config();
    let cases = all_failed_tests(scale);
    let roster = paper_roster(scale);
    let results = run_cases(&cases, &roster, &cfg, scale.seed, default_threads());
    EffectivenessData { cases: results }
}

fn families() -> Vec<&'static str> {
    NabFamily::ALL.iter().map(|f| f.short_name()).collect()
}

/// Whether every method produced an explanation on this case (the paper's
/// Figure 2 filter: only tests "where all methods can generate
/// counterfactual explanations").
fn all_methods_succeeded(case: &CaseResult) -> bool {
    case.results.iter().all(|r| r.indices.is_some())
}

/// Figure 2: average ISE per dataset per method (larger is better).
pub fn fig2_ise(data: &EffectivenessData) -> String {
    let mut out = String::new();
    let eligible: Vec<&CaseResult> =
        data.cases.iter().filter(|c| all_methods_succeeded(c)).collect();
    let _ = writeln!(
        out,
        "Figure 2: average ISE (larger is better); {} of {} failed tests where all \
         methods produced explanations (paper: 847 of 2,690)",
        eligible.len(),
        data.cases.len()
    );
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(METHODS.iter().map(|m| m.to_string()));
    let mut table = Table::new(headers);
    for fam in families() {
        let fam_cases: Vec<&&CaseResult> = eligible.iter().filter(|c| c.family == fam).collect();
        let mut row = vec![fam.to_string()];
        if fam_cases.is_empty() {
            row.extend(std::iter::repeat_n("-".to_string(), METHODS.len()));
        } else {
            // Average the per-case ISE flags per method.
            let mut sums = vec![0.0f64; METHODS.len()];
            for case in &fam_cases {
                let sizes: Vec<Option<usize>> =
                    METHODS.iter().map(|m| case.result_of(m).and_then(|r| r.size())).collect();
                for (s, f) in sums.iter_mut().zip(ise_flags(&sizes)) {
                    *s += f;
                }
            }
            for s in sums {
                row.push(fmt_f(s / fam_cases.len() as f64, 2));
            }
        }
        table.push_row(row);
    }
    out.push_str(&table.render());
    out.push_str("Paper shape: M = 1.00 everywhere; GRC next; GRD/CS/D3 low; S2G/STMP lowest.\n");
    out
}

/// Table 2: reverse factor of CS and GRC per dataset (all other methods
/// reverse every test).
pub fn table2_rf(data: &EffectivenessData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: reverse factor (larger is better) over {} failed tests",
        data.cases.len()
    );
    let mut headers = vec!["Method".to_string()];
    headers.extend(families().iter().map(|f| f.to_string()));
    let mut table = Table::new(headers);
    for method in METHODS {
        let mut row = vec![method.to_string()];
        for fam in families() {
            let outcomes: Vec<bool> = data
                .cases
                .iter()
                .filter(|c| c.family == fam)
                .filter_map(|c| c.result_of(method))
                .map(|r| r.indices.is_some())
                .collect();
            row.push(fmt_f(reverse_factor(&outcomes), 2));
        }
        table.push_row(row);
    }
    out.push_str(&table.render());
    out.push_str("Paper: CS in 0.80-0.93, GRC in 0.59-0.82, every other method 1.00 everywhere.\n");
    out
}

/// Figure 3: average RMSE per dataset per method (smaller is better), over
/// the same all-methods-succeeded subset as Figure 2.
pub fn fig3_rmse(data: &EffectivenessData) -> String {
    let mut out = String::new();
    let eligible: Vec<&CaseResult> =
        data.cases.iter().filter(|c| all_methods_succeeded(c)).collect();
    let _ = writeln!(
        out,
        "Figure 3: average RMSE between ECDFs of R and T \\ I (smaller is better), \
         over {} tests",
        eligible.len()
    );
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(METHODS.iter().map(|m| m.to_string()));
    let mut table = Table::new(headers);
    for fam in families() {
        let fam_cases: Vec<&&CaseResult> = eligible.iter().filter(|c| c.family == fam).collect();
        let mut row = vec![fam.to_string()];
        for method in METHODS {
            let rmse = mean_of(fam_cases.iter().filter_map(|c| {
                let r = c.result_of(method)?;
                let idx = r.indices.as_ref()?;
                Some(rmse_after_removal(&c.reference, &c.test, idx))
            }));
            row.push(fmt_f(rmse, 4));
        }
        table.push_row(row);
    }
    out.push_str(&table.render());
    out.push_str("Paper shape: M smallest everywhere; GRC next; the rest larger.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        let mut s = ExperimentScale::quick();
        s.max_series_per_family = 1;
        s.per_combination = 1;
        s.window_sizes = vec![100];
        s.cs_max_samples = 300;
        s.grc_max_steps = 60;
        s
    }

    #[test]
    fn full_effectiveness_pipeline_runs() {
        let scale = tiny_scale();
        let data = collect(&scale);
        assert!(!data.cases.is_empty(), "no failed tests collected");

        let fig2 = fig2_ise(&data);
        assert!(fig2.contains("Figure 2"));
        let table2 = table2_rf(&data);
        assert!(table2.contains("Table 2"));
        let fig3 = fig3_rmse(&data);
        assert!(fig3.contains("Figure 3"));

        // MOCHE must reverse everything and always be smallest.
        for case in &data.cases {
            let m = case.result_of("M").expect("M ran");
            let m_size = m.size().expect("MOCHE always reverses");
            for r in &case.results {
                if let Some(s) = r.size() {
                    assert!(m_size <= s, "{} beat MOCHE ({} < {})", r.method, s, m_size);
                }
            }
        }
    }

    #[test]
    fn moche_rf_is_one() {
        let scale = tiny_scale();
        let data = collect(&scale);
        let outcomes: Vec<bool> =
            data.cases.iter().map(|c| c.result_of("M").unwrap().indices.is_some()).collect();
        assert_eq!(reverse_factor(&outcomes), 1.0);
    }
}
