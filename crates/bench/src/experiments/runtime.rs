//! The efficiency experiments: Figure 5a (runtime on TWT-like data as
//! reference/test sizes grow) and Figure 5b (runtime on large synthetic
//! drift data, MOCHE vs MOCHE_ns vs GRD).

use crate::experiments::{family_series, ks_config};
use crate::report::{fmt_secs, Table};
use crate::runner::{paper_roster, spectral_residual_preference};
use crate::scale::ExperimentScale;
use moche_baselines::{ExplainRequest, Greedy, KsExplainer, MocheExplainer};
use moche_core::PreferenceList;
use moche_data::nab::NabFamily;
use moche_data::rng::derive_seed;
use moche_data::sliding::{failed_windows, sample_failed};
use moche_data::FailedTest;
use std::fmt::Write as _;
use std::time::Instant;

fn time_method(
    method: &dyn KsExplainer,
    case: &FailedTest,
    preference: &PreferenceList,
    reps: usize,
    seed: u64,
) -> (f64, bool) {
    let cfg = ks_config();
    let mut total = 0.0f64;
    let mut reversed = false;
    for _ in 0..reps.max(1) {
        let req = ExplainRequest {
            reference: &case.reference,
            test: &case.test,
            cfg: &cfg,
            preference: Some(preference),
            seed,
        };
        let start = Instant::now();
        let out = method.explain(&req);
        total += start.elapsed().as_secs_f64();
        reversed = out.is_some();
    }
    (total / reps.max(1) as f64, reversed)
}

/// Figure 5a: average runtime per method as the reference/test window size
/// grows, on the TWT family (the paper's largest dataset). Rows are window
/// sizes, columns are methods (including the MOCHE_ns ablation).
pub fn fig5a(scale: &ExperimentScale) -> String {
    let cfg = ks_config();
    let series = family_series(NabFamily::Twt, scale);
    let mut roster = paper_roster(scale);
    roster.push(Box::new(MocheExplainer { no_lower_bound: true }));
    let names: Vec<&'static str> = roster.iter().map(|m| m.name()).collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5a: average runtime on TWT vs reference/test set size \
         (cases per size: up to 2; reps: {})",
        scale.timing_reps
    );
    let mut headers = vec!["Size".to_string()];
    headers.extend(names.iter().map(|n| n.to_string()));
    let mut table = Table::new(headers);

    for &w in &scale.fig5a_sizes {
        // Gather up to 2 failed tests of this window size across series.
        let mut cases = Vec::new();
        for (i, s) in series.iter().enumerate() {
            if s.values.len() < 2 * w {
                continue;
            }
            let failed = failed_windows(s, w, &cfg, (w / 2).max(1));
            cases.extend(sample_failed(
                failed,
                1,
                derive_seed(scale.seed, &format!("fig5a-{w}-{i}")),
            ));
            if cases.len() >= 2 {
                break;
            }
        }
        let mut row = vec![w.to_string()];
        if cases.is_empty() {
            row.extend(std::iter::repeat_n("-".to_string(), names.len()));
        } else {
            for method in &roster {
                let mut total = 0.0;
                for case in &cases {
                    let pref = spectral_residual_preference(&case.test);
                    let (secs, _) =
                        time_method(method.as_ref(), case, &pref, scale.timing_reps, scale.seed);
                    total += secs;
                }
                row.push(fmt_secs(total / cases.len() as f64));
            }
        }
        table.push_row(row);
    }
    out.push_str(&table.render());
    out.push_str(
        "Paper shape: M fastest and flattest; Mns close; GRD/D3/S2G/STMP in between; \
         GRC and CS orders of magnitude slower.\n",
    );
    out
}

/// Figure 5b: runtime on Kifer-style synthetic drift data (p = 3%), MOCHE
/// vs MOCHE_ns vs GRD with random preference lists.
pub fn fig5b(scale: &ExperimentScale) -> String {
    let cfg = ks_config();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5b: runtime on synthetic drift data, p = 3% (reps: {})",
        scale.timing_reps
    );
    let mut table = Table::new(vec!["w", "M", "Mns", "GRD", "M k", "GRD size"]);
    let m = MocheExplainer::default();
    let mns = MocheExplainer { no_lower_bound: true };

    for &w in &scale.fig5b_sizes {
        let Some(pair) = moche_data::failing_kifer_pair(
            w,
            0.03,
            &cfg,
            derive_seed(scale.seed, &format!("fig5b-{w}")),
            50,
        ) else {
            table.push_row(vec![
                w.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let case = FailedTest {
            series_name: format!("kifer-{w}"),
            window: w,
            reference_start: 0,
            test_start: w,
            reference: pair.reference.clone(),
            test: pair.test.clone(),
            overlaps_anomaly: true,
            statistic: 0.0,
        };
        let pref = PreferenceList::random(w, derive_seed(scale.seed, &format!("pref-{w}")));

        let (t_m, _) = time_method(&m, &case, &pref, scale.timing_reps, scale.seed);
        let (t_mns, _) = time_method(&mns, &case, &pref, scale.timing_reps, scale.seed);
        let (t_grd, _) = time_method(&Greedy, &case, &pref, scale.timing_reps, scale.seed);

        // Sizes, for context on the crossover.
        let req = ExplainRequest {
            reference: &case.reference,
            test: &case.test,
            cfg: &cfg,
            preference: Some(&pref),
            seed: scale.seed,
        };
        let k = m.explain(&req).map_or(0, |v| v.len());
        let grd_size = Greedy.explain(&req).map_or(0, |v| v.len());

        table.push_row(vec![
            w.to_string(),
            fmt_secs(t_m),
            fmt_secs(t_mns),
            fmt_secs(t_grd),
            k.to_string(),
            grd_size.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "Paper shape: MOCHE at least 10x faster than GRD at every size; \
         GRD does not finish at w = 1e5 within 2 hours in the paper's setup.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5b_runs_at_small_scale() {
        let mut scale = ExperimentScale::quick();
        scale.fig5b_sizes = vec![500, 1_000];
        scale.timing_reps = 1;
        let report = fig5b(&scale);
        assert!(report.contains("Figure 5b"));
        assert!(report.contains("500"));
        assert!(report.contains("1000"));
    }

    #[test]
    fn fig5a_runs_at_tiny_scale() {
        let mut scale = ExperimentScale::quick();
        scale.fig5a_sizes = vec![100];
        scale.max_series_per_family = 1;
        scale.timing_reps = 1;
        scale.cs_max_samples = 200;
        scale.grc_max_steps = 50;
        let report = fig5a(&scale);
        assert!(report.contains("Figure 5a"));
        assert!(report.contains("Mns"));
    }

    #[test]
    fn moche_beats_grd_on_moderate_synthetic() {
        // The headline efficiency claim at a size where both finish fast.
        // Wall-clock A/B comparisons flake under parallel test load, so
        // take the best of several alternating reps and retry the whole
        // comparison before declaring a loss.
        let cfg = ks_config();
        let pair = moche_data::failing_kifer_pair(4_000, 0.03, &cfg, 5, 50).unwrap();
        let case = FailedTest {
            series_name: "t".into(),
            window: 4_000,
            reference_start: 0,
            test_start: 4_000,
            reference: pair.reference,
            test: pair.test,
            overlaps_anomaly: true,
            statistic: 0.0,
        };
        let pref = PreferenceList::random(4_000, 9);
        let mut best = (f64::INFINITY, f64::INFINITY);
        for attempt in 0..3 {
            let (t_m, rev_m) = time_method(&MocheExplainer::default(), &case, &pref, 3, 1);
            let (t_grd, rev_grd) = time_method(&Greedy, &case, &pref, 3, 1);
            assert!(rev_m && rev_grd);
            best = (best.0.min(t_m), best.1.min(t_grd));
            if best.0 < best.1 {
                return;
            }
            eprintln!(
                "attempt {attempt}: MOCHE {} vs GRD {} — retrying under less noise",
                fmt_secs(t_m),
                fmt_secs(t_grd)
            );
        }
        panic!("MOCHE ({}) should beat GRD ({}) here", fmt_secs(best.0), fmt_secs(best.1));
    }
}
