//! Figure 6: the estimation error `EE = k - k̂` of the Phase-1 lower bound,
//! summarized as box-plot statistics per test-set size.

use crate::experiments::{all_failed_tests, ks_config};
use crate::report::{fmt_f, Table};
use crate::scale::ExperimentScale;
use moche_core::Moche;
use moche_sigproc::BoxPlotStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Computes EE for every sampled failed test, grouped by window size, and
/// renders the box-plot statistics of the paper's Figure 6.
pub fn fig6(scale: &ExperimentScale) -> String {
    let cfg = ks_config();
    let moche = Moche::with_config(cfg);
    let cases = all_failed_tests(scale);

    let mut by_window: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    let mut k_by_window: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for (case, _family) in &cases {
        if let Ok(s) = moche.explanation_size(&case.reference, &case.test) {
            by_window.entry(case.window).or_default().push(s.estimation_error() as f64);
            k_by_window.entry(case.window).or_default().push(s.k as f64);
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6: estimation error EE = k - k_hat of the Phase-1 lower bound, \
         by test set size ({} failed tests)",
        cases.len()
    );
    let mut table = Table::new(vec![
        "Test size",
        "# tests",
        "min",
        "q1",
        "median",
        "q3",
        "max",
        "mean",
        "mean k",
    ]);
    for (window, errors) in &by_window {
        let stats = BoxPlotStats::from(errors);
        let mean_k = k_by_window[window].iter().sum::<f64>() / errors.len() as f64;
        table.push_row(vec![
            window.to_string(),
            errors.len().to_string(),
            fmt_f(stats.min, 0),
            fmt_f(stats.q1, 1),
            fmt_f(stats.median, 1),
            fmt_f(stats.q3, 1),
            fmt_f(stats.max, 0),
            fmt_f(stats.mean, 2),
            fmt_f(mean_k, 1),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "Paper: EE = 0 for >25% of tests, <= 1 for >75%, worst case 6 at size 2000; \
         mean < 1 for large test sets.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_runs_and_reports_small_errors() {
        let mut scale = ExperimentScale::quick();
        scale.max_series_per_family = 1;
        scale.per_combination = 2;
        scale.window_sizes = vec![100, 200];
        let report = fig6(&scale);
        assert!(report.contains("Figure 6"));
        assert!(report.contains("median"));
    }

    #[test]
    fn estimation_errors_are_nonnegative_and_small() {
        let mut scale = ExperimentScale::quick();
        scale.max_series_per_family = 1;
        scale.per_combination = 3;
        scale.window_sizes = vec![100];
        let cfg = ks_config();
        let moche = Moche::with_config(cfg);
        let mut seen = 0;
        for (case, _) in all_failed_tests(&scale) {
            if let Ok(s) = moche.explanation_size(&case.reference, &case.test) {
                seen += 1;
                // EE is by construction >= 0; the paper observes it is tiny
                // relative to the test size.
                assert!(s.estimation_error() <= case.test.len() / 2);
            }
        }
        assert!(seen > 0, "no failed tests found");
    }
}
