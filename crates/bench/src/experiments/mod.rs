//! One submodule per experiment of the paper's Section 6; each exposes a
//! `run(scale) -> String` (or finer-grained functions) that regenerates the
//! corresponding table or figure as plain text. The binaries in `src/bin`
//! are thin wrappers; `run_all` composes everything into one report.

pub mod covid;
pub mod effectiveness;
pub mod estimation;
pub mod runtime;
pub mod table1;

use crate::scale::ExperimentScale;
use moche_core::KsConfig;
use moche_data::nab::{generate_family, NabFamily, NabSeries};
use moche_data::rng::derive_seed;
use moche_data::sliding::paper_failed_tests;
use moche_data::FailedTest;

/// The significance level used throughout the paper's experiments.
pub const ALPHA: f64 = 0.05;

/// The standard KS configuration (`α = 0.05`).
pub fn ks_config() -> KsConfig {
    KsConfig::new(ALPHA).expect("0.05 is a valid significance level")
}

/// Generates the scaled family series roster.
pub fn family_series(family: NabFamily, scale: &ExperimentScale) -> Vec<NabSeries> {
    let mut series = generate_family(family, derive_seed(scale.seed, "nab"));
    series.truncate(scale.max_series_per_family);
    series
}

/// Collects sampled failed KS tests for one family under the configured
/// scale, tagged with the family name.
pub fn family_failed_tests(
    family: NabFamily,
    scale: &ExperimentScale,
) -> Vec<(FailedTest, String)> {
    let cfg = ks_config();
    let mut out = Vec::new();
    for (i, series) in family_series(family, scale).iter().enumerate() {
        let tests = paper_failed_tests(
            series,
            &scale.window_sizes,
            &cfg,
            scale.per_combination,
            derive_seed(scale.seed, &format!("sample-{}-{i}", family.short_name())),
        );
        out.extend(tests.into_iter().map(|t| (t, family.short_name().to_string())));
    }
    out
}

/// Collects failed tests across all six families.
pub fn all_failed_tests(scale: &ExperimentScale) -> Vec<(FailedTest, String)> {
    NabFamily::ALL.iter().flat_map(|&f| family_failed_tests(f, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_produces_failed_tests() {
        let scale = ExperimentScale::quick();
        let tests = family_failed_tests(NabFamily::Art, &scale);
        assert!(!tests.is_empty(), "ART series with drifts must fail somewhere");
        for (t, fam) in &tests {
            assert_eq!(fam, "ART");
            assert_eq!(t.reference.len(), t.window);
            assert_eq!(t.test.len(), t.window);
        }
    }

    #[test]
    fn family_series_respects_cap() {
        let mut scale = ExperimentScale::quick();
        scale.max_series_per_family = 2;
        assert_eq!(family_series(NabFamily::Aws, &scale).len(), 2);
    }
}
