//! The COVID-19 case study: Figure 1 (dataset and explanation overview) and
//! Figure 4 (explanations of MOCHE, GRD and D3, with post-removal ECDFs).

use crate::experiments::ks_config;
use crate::metrics::rmse_after_removal;
use crate::report::{fmt_f, histogram, Table};
use moche_baselines::{ExplainRequest, Greedy, KsExplainer, D3};
use moche_core::{Ecdf, Moche};
use moche_data::covid::{CovidCase, CovidDataset, AGE_LABELS};
use moche_data::HealthAuthority;
use std::fmt::Write as _;

fn age_hist_items(cases: &[CovidCase], denom: f64) -> Vec<(String, f64)> {
    CovidDataset::age_histogram(cases)
        .iter()
        .enumerate()
        .map(|(i, &c)| (AGE_LABELS[i].to_string(), c as f64 / denom))
        .collect()
}

fn ha_hist_items(cases: &[CovidCase]) -> Vec<(String, f64)> {
    CovidDataset::ha_histogram(cases)
        .iter()
        .zip(HealthAuthority::ALL)
        .map(|(&c, ha)| (ha.short_name().to_string(), c as f64))
        .collect()
}

/// Figure 1: reference/test histograms plus the two most comprehensible
/// explanations `I_p` (population preference) and `I_a` (age preference).
pub fn fig1(seed: u64) -> String {
    let ds = CovidDataset::generate(seed);
    let cfg = ks_config();
    let r = ds.reference_values();
    let t = ds.test_values();
    let moche = Moche::with_config(cfg);

    let outcome = moche.test(&r, &t).expect("valid data");
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1: COVID-19 case study (synthetic twin, seed {seed})");
    let _ = writeln!(
        out,
        "KS test: D = {:.4}, threshold = {:.4} -> {}",
        outcome.statistic,
        outcome.threshold,
        if outcome.rejected { "FAILED" } else { "passed" }
    );
    let _ = writeln!(out, "\n(a) Reference set (August, n = {}), relative frequency:", r.len());
    out.push_str(&histogram(&age_hist_items(&ds.reference, r.len() as f64), 40));
    let _ = writeln!(out, "\n(a) Test set (September, m = {}), relative frequency:", t.len());
    out.push_str(&histogram(&age_hist_items(&ds.test, t.len() as f64), 40));

    let e_p = moche.explain(&r, &t, &ds.preference_by_population()).expect("failed test");
    let e_a = moche.explain(&r, &t, &ds.preference_by_age()).expect("failed test");
    let cases_p: Vec<CovidCase> = e_p.indices().iter().map(|&i| ds.test[i]).collect();
    let cases_a: Vec<CovidCase> = e_a.indices().iter().map(|&i| ds.test[i]).collect();

    let _ = writeln!(
        out,
        "\nBoth explanations have size k = {} ({:.1}% of |T|); paper: 291 (8.6%).",
        e_p.size(),
        100.0 * e_p.removed_fraction()
    );
    let _ = writeln!(out, "\n(b) Explanation I_p by health authority (# cases):");
    out.push_str(&histogram(&ha_hist_items(&cases_p), 40));
    let _ = writeln!(out, "\n(b) Explanation I_a by health authority (# cases):");
    out.push_str(&histogram(&ha_hist_items(&cases_a), 40));
    let _ = writeln!(out, "\n(c) Explanation I_p by age group (# cases):");
    out.push_str(&histogram(&age_hist_items(&cases_p, 1.0), 40));
    let _ = writeln!(out, "\n(c) Explanation I_a by age group (# cases):");
    out.push_str(&histogram(&age_hist_items(&cases_a, 1.0), 40));
    out
}

/// Figure 4: the COVID explanations of MOCHE, GRD and D3, their sizes, and
/// the ECDFs of `R` and `T \ I` after each removal.
pub fn fig4(seed: u64) -> String {
    let ds = CovidDataset::generate(seed);
    let cfg = ks_config();
    let r = ds.reference_values();
    let t = ds.test_values();
    let pref = ds.preference_by_population();
    let m = t.len();

    let moche = Moche::with_config(cfg);
    let e_m = moche.explain(&r, &t, &pref).expect("failed test");

    let req = ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: Some(&pref), seed };
    let grd = Greedy.explain(&req);
    let d3 = D3::default().explain(&req);

    let mut out = String::new();
    let _ = writeln!(out, "Figure 4: explanations on the COVID-19 failed KS test (seed {seed})");
    let mut size_table =
        Table::new(vec!["Method", "Size", "% of |T|", "RMSE after removal", "Paper size"]);
    let rows: Vec<(&str, Option<Vec<usize>>, &str)> = vec![
        ("MOCHE", Some(e_m.indices().to_vec()), "291 (8.6%)"),
        ("GRD", grd.clone(), "3115 (92.3%)"),
        ("D3", d3.clone(), "3370 (99.9%)"),
    ];
    for (name, indices, paper) in &rows {
        match indices {
            Some(idx) => {
                let rmse = rmse_after_removal(&r, &t, idx);
                size_table.push_row(vec![
                    name.to_string(),
                    idx.len().to_string(),
                    format!("{:.1}%", 100.0 * idx.len() as f64 / m as f64),
                    fmt_f(rmse, 4),
                    paper.to_string(),
                ]);
            }
            None => {
                size_table.push_row(vec![
                    name.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    paper.to_string(),
                ]);
            }
        }
    }
    out.push_str(&size_table.render());

    // (a)-(c): explanation histograms over age groups, normalized by |T|.
    for (name, indices, _) in &rows {
        if let Some(idx) = indices {
            let cases: Vec<CovidCase> = idx.iter().map(|&i| ds.test[i]).collect();
            let _ = writeln!(out, "\n({name}) explanation age histogram (# cases / |T|):");
            out.push_str(&histogram(&age_hist_items(&cases, m as f64), 40));
        }
    }

    // (d): post-removal ECDFs at each age group code.
    let _ = writeln!(out, "\n(d) ECDFs at each age group (reference vs T \\ I):");
    let mut ecdf_table = Table::new(vec!["Age", "Ref.", "Test", "M", "GRD", "D3"]);
    let ref_ecdf = Ecdf::new(&r);
    let test_ecdf = Ecdf::new(&t);
    let after = |indices: &Option<Vec<usize>>| -> Option<Ecdf> {
        indices.as_ref().map(|idx| {
            let mut keep = vec![true; t.len()];
            for &i in idx {
                keep[i] = false;
            }
            let kept: Vec<f64> =
                t.iter().zip(&keep).filter_map(|(&v, &k)| k.then_some(v)).collect();
            Ecdf::new(&kept)
        })
    };
    let e_m_ecdf = after(&Some(e_m.indices().to_vec()));
    let grd_ecdf = after(&grd);
    let d3_ecdf = after(&d3);
    for g in 1..=10 {
        let x = g as f64;
        let cell = |e: &Option<Ecdf>| e.as_ref().map_or("-".to_string(), |e| fmt_f(e.eval(x), 3));
        ecdf_table.push_row(vec![
            AGE_LABELS[g - 1].to_string(),
            fmt_f(ref_ecdf.eval(x), 3),
            fmt_f(test_ecdf.eval(x), 3),
            cell(&e_m_ecdf),
            cell(&grd_ecdf),
            cell(&d3_ecdf),
        ]);
    }
    out.push_str(&ecdf_table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reports_failed_test_and_sizes() {
        let report = fig1(1);
        assert!(report.contains("FAILED"));
        assert!(report.contains("Both explanations have size"));
        assert!(report.contains("FHA"));
        assert!(report.contains("90+"));
    }

    #[test]
    fn fig4_reports_three_methods() {
        let report = fig4(1);
        for name in ["MOCHE", "GRD", "D3"] {
            assert!(report.contains(name), "missing {name}");
        }
        assert!(report.contains("ECDFs"));
    }

    #[test]
    fn moche_explanation_is_much_smaller_than_greedy() {
        // The headline of the case study: MOCHE ~8.6% vs GRD >90%.
        let ds = CovidDataset::generate(1);
        let cfg = ks_config();
        let r = ds.reference_values();
        let t = ds.test_values();
        let pref = ds.preference_by_population();
        let e = Moche::with_config(cfg).explain(&r, &t, &pref).unwrap();
        let req =
            ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: Some(&pref), seed: 1 };
        let grd = Greedy.explain(&req).expect("GRD reverses");
        assert!(
            grd.len() > 3 * e.size(),
            "GRD ({}) should be far larger than MOCHE ({})",
            grd.len(),
            e.size()
        );
    }
}
