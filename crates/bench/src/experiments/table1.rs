//! Table 1: dataset statistics (number of series and length ranges per
//! family).

use crate::report::Table;
use moche_data::nab::{generate_all, NabFamily};

/// Regenerates Table 1 from the synthetic NAB twin.
pub fn run(seed: u64) -> String {
    let all = generate_all(seed);
    let mut table = Table::new(vec!["Dataset", "# Time series", "Length", "Paper length"]);
    for family in NabFamily::ALL {
        let series: Vec<_> = all.iter().filter(|s| s.family == family).collect();
        let min = series.iter().map(|s| s.len()).min().unwrap_or(0);
        let max = series.iter().map(|s| s.len()).max().unwrap_or(0);
        let (plo, phi) = family.length_range();
        let paper = if plo == phi { format!("{plo}") } else { format!("{plo}~{phi}") };
        let measured = if min == max { format!("{min}") } else { format!("{min}~{max}") };
        table.push_row(vec![
            family.short_name().to_string(),
            series.len().to_string(),
            measured,
            paper,
        ]);
    }
    format!("Table 1: dataset statistics (synthetic NAB twin, seed {seed})\n{}", table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_families() {
        let report = run(2021);
        for name in ["AWS", "AD", "TRF", "TWT", "KC", "ART"] {
            assert!(report.contains(name), "missing {name} in:\n{report}");
        }
        assert!(report.contains("17"), "AWS series count");
        assert!(report.contains("4032"), "ART length");
    }
}
