//! A deliberately small Rust "lexer": just enough structure to scan source
//! for invariant violations without false positives from prose.
//!
//! The passes never need a real parse tree. They need three things:
//!
//! 1. **Scrubbed text** — the source with every comment and every string /
//!    char literal interior blanked to spaces (newlines preserved), so byte
//!    offsets and line numbers in the scrubbed text match the original file
//!    exactly. Searching the scrubbed text for `panic!` or
//!    `Ordering::Relaxed` cannot hit doc-comment prose or log messages.
//! 2. **Test spans** — the byte ranges of `#[cfg(test)]` `mod`/`fn` items,
//!    found by brace matching on the scrubbed text (comments and strings are
//!    blank, so every remaining brace is structural).
//! 3. **Annotations** — `// lint:allow(<pass>): <reason>` comments, captured
//!    during scrubbing (they are comments, so they vanish from the scrubbed
//!    text) together with the line they sit on.
//!
//! The scrubber understands line comments, nested block comments, string
//! literals with escapes, byte strings, raw (byte) strings with `#` fences,
//! and the char-literal-vs-lifetime ambiguity. That is the entire Rust
//! grammar surface these passes depend on.

/// One `// lint:allow(...)` annotation, parsed out of a comment.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// 1-based line of the comment.
    pub line: usize,
    /// The pass being silenced: `panic`, `relaxed`, ...
    pub pass: String,
    /// `lint:allow(<pass>, fn)` — applies to the whole body of the next `fn`.
    pub fn_scope: bool,
    /// Free-text justification (required to be non-empty).
    pub reason: String,
}

/// A parse failure in an annotation: the comment mentions `lint:allow` but
/// does not follow the grammar. Surfaced as a diagnostic so a typo cannot
/// silently fail to silence (or silently silence) a pass.
#[derive(Debug, Clone)]
pub struct AnnotationError {
    pub line: usize,
    pub message: String,
}

/// A source file plus everything the passes need to scan it.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Original text.
    pub raw: String,
    /// Comment/string-blanked text; same length and line structure as `raw`.
    pub scrubbed: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Byte ranges whitelisted per pass by `fn`-scoped annotations.
    pub fn_allow_spans: Vec<(String, usize, usize)>,
    pub annotations: Vec<Annotation>,
    pub annotation_errors: Vec<AnnotationError>,
}

impl SourceFile {
    pub fn parse(rel_path: String, raw: String) -> SourceFile {
        let (scrubbed, comments) = scrub(&raw);
        let line_starts = line_starts(&raw);
        let mut annotations = Vec::new();
        let mut annotation_errors = Vec::new();
        for (line, text) in &comments {
            match parse_annotation(*line, text) {
                Some(Ok(a)) => annotations.push(a),
                Some(Err(message)) => {
                    annotation_errors.push(AnnotationError { line: *line, message })
                }
                None => {}
            }
        }
        let test_spans = test_spans(&scrubbed);
        let mut file = SourceFile {
            rel_path,
            raw,
            scrubbed,
            line_starts,
            test_spans,
            fn_allow_spans: Vec::new(),
            annotations,
            annotation_errors,
        };
        file.fn_allow_spans = file.compute_fn_allow_spans();
        file
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i, // offset sits inside line i (1-based)
        }
    }

    /// Byte offset of the start of a 1-based line (clamped to EOF).
    pub fn line_start(&self, line: usize) -> usize {
        self.line_starts.get(line - 1).copied().unwrap_or(self.raw.len())
    }

    /// The scrubbed text of a 1-based line, without the trailing newline.
    pub fn scrubbed_line(&self, line: usize) -> &str {
        let start = self.line_start(line);
        let end = self.line_starts.get(line).map_or(self.scrubbed.len(), |e| *e);
        self.scrubbed[start..end].trim_end_matches('\n')
    }

    /// The raw text of a 1-based line, without the trailing newline.
    pub fn raw_line(&self, line: usize) -> &str {
        let start = self.line_start(line);
        let end = self.line_starts.get(line).map_or(self.raw.len(), |e| *e);
        self.raw[start..end].trim_end_matches('\n')
    }

    pub fn is_test_offset(&self, offset: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| offset >= s && offset < e)
    }

    /// Is a site at `line` (1-based, byte `offset`) whitelisted for `pass`?
    ///
    /// Three annotation placements count: the same line, anywhere in the
    /// contiguous `//` comment block directly above the line (so a wrapped
    /// annotation still applies to the statement it precedes), or an
    /// `fn`-scoped annotation whose function body contains the offset.
    pub fn is_allowed(&self, pass: &str, line: usize, offset: usize) -> bool {
        if self.fn_allow_spans.iter().any(|(p, s, e)| p == pass && offset >= *s && offset < *e) {
            return true;
        }
        let on = |l: usize| {
            self.annotations.iter().any(|a| !a.fn_scope && a.pass == pass && a.line == l)
        };
        if on(line) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if !self.raw_line(l).trim_start().starts_with("//") {
                return false;
            }
            if on(l) {
                return true;
            }
        }
        false
    }

    /// Resolve each `fn`-scoped annotation to the body of the next `fn`.
    fn compute_fn_allow_spans(&self) -> Vec<(String, usize, usize)> {
        let mut spans = Vec::new();
        for a in &self.annotations {
            if !a.fn_scope {
                continue;
            }
            let from = self.line_start(a.line + 1);
            if let Some((start, end)) = next_fn_body(&self.scrubbed, from) {
                spans.push((a.pass.clone(), start, end));
            }
        }
        spans
    }

    /// Find the body `{ ... }` of `fn <name>` (first match), as byte range.
    pub fn fn_body(&self, name: &str) -> Option<(usize, usize)> {
        let needle = format!("fn {name}");
        let mut from = 0;
        while let Some(pos) = self.scrubbed[from..].find(&needle) {
            let at = from + pos;
            let after = self.scrubbed.as_bytes().get(at + needle.len()).copied();
            let before_ok = at == 0 || !is_ident_byte(self.scrubbed.as_bytes()[at - 1]);
            let after_ok = matches!(after, Some(b'(') | Some(b'<'));
            if before_ok && after_ok {
                if let Some(open) = find_body_open(&self.scrubbed, at + needle.len()) {
                    let end = match_brace(&self.scrubbed, open)?;
                    return Some((open, end));
                }
            }
            from = at + needle.len();
        }
        None
    }

    /// Every occurrence of `needle` in the scrubbed text at a token
    /// boundary on the left: when the needle starts with an identifier
    /// character, the byte before must not be `[A-Za-z0-9_]` (so `panic!`
    /// does not match `some_panic!`); needles starting with punctuation
    /// (`.unwrap()`) match anywhere.
    pub fn find_token(&self, needle: &str) -> Vec<usize> {
        let mut hits = Vec::new();
        let bytes = self.scrubbed.as_bytes();
        let ident_start = needle.as_bytes().first().is_some_and(|b| is_ident_byte(*b));
        let mut from = 0;
        while let Some(pos) = self.scrubbed[from..].find(needle) {
            let at = from + pos;
            if !ident_start || at == 0 || !is_ident_byte(bytes[at - 1]) {
                hits.push(at);
            }
            from = at + needle.len();
        }
        hits
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Blank comments and literal interiors; collect `//` comments by line.
///
/// The output has the same byte length as the input, with the same bytes at
/// every position that is not inside a comment or a literal; blanked bytes
/// become spaces except newlines, which are preserved.
fn scrub(raw: &str) -> (String, Vec<(usize, String)>) {
    let bytes = raw.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        // Line comment. Captured verbatim for annotation parsing.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            comments.push((line, String::from_utf8_lossy(&bytes[start..i]).into_owned()));
            continue;
        }
        // Block comment, possibly nested.
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            out.extend_from_slice(b"  ");
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    push_blanked(&mut out, bytes[i], &mut line);
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings and byte strings: r"..", r#".."#, b"..", br#".."#.
        if (b == b'r' || b == b'b') && (i == 0 || !is_ident_byte(bytes[i - 1])) {
            let mut j = i + 1;
            let mut raw_marker = b == b'r';
            if b == b'b' && bytes.get(j) == Some(&b'r') {
                raw_marker = true;
                j += 1;
            }
            if raw_marker {
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    // Raw string: no escapes; ends at `"` + `hashes` hashes.
                    out.extend(std::iter::repeat_n(b' ', j - i));
                    out.push(b'"');
                    i = j + 1;
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let mut k = 0;
                            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                                k += 1;
                            }
                            if k == hashes {
                                out.push(b'"');
                                out.extend(std::iter::repeat_n(b' ', hashes));
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        push_blanked(&mut out, bytes[i], &mut line);
                        i += 1;
                    }
                    continue;
                }
            } else if bytes.get(j) == Some(&b'"') {
                // b"..": cooked byte string; falls through to the string
                // scanner below after blanking the prefix.
                out.push(b' ');
                i = j;
                scan_cooked_string(bytes, &mut i, &mut out, &mut line);
                continue;
            } else if bytes.get(j) == Some(&b'\'') {
                // b'..': byte char literal.
                out.push(b' ');
                i = j;
                scan_char_literal(bytes, &mut i, &mut out, &mut line);
                continue;
            }
            // Plain identifier starting with r/b.
            out.push(b);
            i += 1;
            continue;
        }
        if b == b'"' {
            scan_cooked_string(bytes, &mut i, &mut out, &mut line);
            continue;
        }
        if b == b'\'' {
            if is_char_literal(bytes, i) {
                scan_char_literal(bytes, &mut i, &mut out, &mut line);
            } else {
                out.push(b'\''); // lifetime tick
                i += 1;
            }
            continue;
        }
        push_blanked_keep(&mut out, b, &mut line);
        i += 1;
    }
    (String::from_utf8_lossy(&out).into_owned(), comments)
}

/// Push a byte inside a blanked region: newline preserved, others → space.
fn push_blanked(out: &mut Vec<u8>, b: u8, line: &mut usize) {
    if b == b'\n' {
        *line += 1;
        out.push(b'\n');
    } else {
        out.push(b' ');
    }
}

/// Push a byte outside any blanked region, tracking line numbers.
fn push_blanked_keep(out: &mut Vec<u8>, b: u8, line: &mut usize) {
    if b == b'\n' {
        *line += 1;
    }
    out.push(b);
}

/// Consume a `"..."` literal starting at `bytes[*i] == b'"'`.
fn scan_cooked_string(bytes: &[u8], i: &mut usize, out: &mut Vec<u8>, line: &mut usize) {
    out.push(b'"');
    *i += 1;
    while *i < bytes.len() {
        match bytes[*i] {
            b'\\' => {
                out.push(b' ');
                *i += 1;
                if *i < bytes.len() {
                    push_blanked(out, bytes[*i], line);
                    *i += 1;
                }
            }
            b'"' => {
                out.push(b'"');
                *i += 1;
                return;
            }
            other => {
                push_blanked(out, other, line);
                *i += 1;
            }
        }
    }
}

/// Consume a `'.'` char literal starting at `bytes[*i] == b'\''`.
fn scan_char_literal(bytes: &[u8], i: &mut usize, out: &mut Vec<u8>, line: &mut usize) {
    out.push(b'\'');
    *i += 1;
    if *i < bytes.len() && bytes[*i] == b'\\' {
        out.push(b' ');
        *i += 1;
        if *i < bytes.len() {
            out.push(b' ');
            *i += 1;
        }
    }
    while *i < bytes.len() && bytes[*i] != b'\'' {
        push_blanked(out, bytes[*i], line);
        *i += 1;
    }
    if *i < bytes.len() {
        out.push(b'\'');
        *i += 1;
    }
}

/// Char literal vs lifetime: a literal closes its quote within a few bytes
/// on the same line (`'x'`, `'\n'`, `'é'`); a lifetime never closes.
fn is_char_literal(bytes: &[u8], at: usize) -> bool {
    if bytes.get(at + 1) == Some(&b'\\') {
        return true;
    }
    for k in 2..=5 {
        match bytes.get(at + k) {
            Some(b'\'') => return k == 2 || bytes[at + 1] >= 0x80,
            Some(b'\n') | None => return false,
            _ => {}
        }
    }
    false
}

/// Parse one comment for a `lint:allow` annotation.
fn parse_annotation(line: usize, text: &str) -> Option<Result<Annotation, String>> {
    const MARK: &str = "lint:allow";
    let at = text.find(MARK)?;
    let rest = &text[at + MARK.len()..];
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(Err(format!("malformed annotation: expected `(` after `{MARK}`")));
    };
    let Some(close) = rest.find(')') else {
        return Some(Err("malformed annotation: missing `)`".to_string()));
    };
    let inside = &rest[..close];
    let mut parts = inside.split(',').map(str::trim);
    let pass = parts.next().unwrap_or("").to_string();
    let scope = parts.next();
    if parts.next().is_some() {
        return Some(Err(format!("malformed annotation: too many arguments in `({inside})`")));
    }
    let fn_scope = match scope {
        None => false,
        Some("fn") => true,
        Some(other) => {
            return Some(Err(format!("malformed annotation: unknown scope `{other}` (only `fn`)")))
        }
    };
    if !matches!(pass.as_str(), "panic" | "relaxed") {
        return Some(Err(format!("malformed annotation: unknown pass `{pass}` (panic|relaxed)")));
    }
    let after = rest[close + 1..].trim_start();
    let reason = match after.strip_prefix(':') {
        Some(r) => r.trim(),
        None => return Some(Err("malformed annotation: expected `): <reason>`".to_string())),
    };
    if reason.is_empty() {
        return Some(Err("annotation without a reason: add `: <why this is safe>`".to_string()));
    }
    Some(Ok(Annotation { line, pass, fn_scope, reason: reason.to_string() }))
}

/// Byte ranges of `#[cfg(test)] mod { .. }` / `#[cfg(test)] fn .. { .. }`.
fn test_spans(scrubbed: &str) -> Vec<(usize, usize)> {
    const ATTR: &str = "#[cfg(test)]";
    let mut spans = Vec::new();
    let mut from = 0;
    while let Some(pos) = scrubbed[from..].find(ATTR) {
        let attr_at = from + pos;
        from = attr_at + ATTR.len();
        let mut j = attr_at + ATTR.len();
        let bytes = scrubbed.as_bytes();
        // Skip whitespace and any further attributes between cfg and item.
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if scrubbed[j..].starts_with("#[") {
                let mut depth = 0usize;
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        // Skip visibility / `unsafe` / `extern` modifiers up to mod/fn.
        let mut guard = 0;
        while guard < 6 {
            guard += 1;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if scrubbed[j..].starts_with("pub") {
                j += 3;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if bytes.get(j) == Some(&b'(') {
                    while j < bytes.len() && bytes[j] != b')' {
                        j += 1;
                    }
                    j += 1;
                }
                continue;
            }
            break;
        }
        let is_item = scrubbed[j..].starts_with("mod") || scrubbed[j..].starts_with("fn");
        if !is_item {
            continue;
        }
        // Find the item body; a `mod name;` declaration has no body here.
        let mut k = j;
        while k < bytes.len() && bytes[k] != b'{' && bytes[k] != b';' {
            k += 1;
        }
        if k < bytes.len() && bytes[k] == b'{' {
            if let Some(end) = match_brace(scrubbed, k) {
                spans.push((attr_at, end));
            }
        }
    }
    spans
}

/// Given `scrubbed[open] == '{'`, return the offset just past the matching
/// `}`. Comments/strings are blank, so depth counting is exact.
fn match_brace(scrubbed: &str, open: usize) -> Option<usize> {
    let bytes = scrubbed.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// From a position inside a `fn` signature, find the body's opening brace.
/// Stops at `;` (trait method declarations have no body).
fn find_body_open(scrubbed: &str, from: usize) -> Option<usize> {
    let bytes = scrubbed.as_bytes();
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => return Some(i),
            b';' => return None,
            _ => i += 1,
        }
    }
    None
}

/// Find the first `fn` keyword at/after `from` and return its body range.
fn next_fn_body(scrubbed: &str, from: usize) -> Option<(usize, usize)> {
    let bytes = scrubbed.as_bytes();
    let mut i = from;
    while i + 2 < bytes.len() {
        if &scrubbed[i..i + 2] == "fn"
            && (i == 0 || !is_ident_byte(bytes[i - 1]))
            && !is_ident_byte(bytes[i + 2])
        {
            let open = find_body_open(scrubbed, i + 2)?;
            let end = match_brace(scrubbed, open)?;
            return Some((open, end));
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("test.rs".to_string(), src.to_string())
    }

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let f = file("let x = \"panic!\"; // panic!\nlet y = 1;\n");
        assert!(!f.scrubbed.contains("panic!"));
        assert_eq!(f.scrubbed.len(), f.raw.len());
        assert!(f.scrubbed.contains("let y = 1;"));
    }

    #[test]
    fn scrub_handles_raw_strings_and_chars() {
        let f =
            file("let s = r#\"unwrap() \"inner\" \"#; let c = 'x'; let l: &'static str = \"\";");
        assert!(!f.scrubbed.contains("unwrap"));
        assert!(f.scrubbed.contains("'static"));
        let f2 = file("let q = '\\''; let b = b\"expect(\"; let nl = '\\n';");
        assert!(!f2.scrubbed.contains("expect"));
    }

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let src =
            "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = file(src);
        let prod_at = f.scrubbed.find(".unwrap").unwrap();
        let test_at = f.scrubbed.rfind(".unwrap").unwrap();
        assert!(!f.is_test_offset(prod_at));
        assert!(f.is_test_offset(test_at));
    }

    #[test]
    fn annotations_parse_and_apply() {
        let src = "// lint:allow(panic): invariant\nlet x = v.last().unwrap();\n\
                   let y = v.first().unwrap();\n";
        let f = file(src);
        assert_eq!(f.annotations.len(), 1);
        assert!(f.is_allowed("panic", 2, 0));
        assert!(!f.is_allowed("panic", 3, usize::MAX - 1));
        assert!(!f.is_allowed("relaxed", 2, 0));
    }

    #[test]
    fn fn_scoped_annotation_covers_body() {
        let src = "// lint:allow(relaxed, fn): stats counters\n\
                   fn view(&self) -> V {\n    self.a.load(Ordering::Relaxed)\n}\n\
                   fn other() {\n    self.b.load(Ordering::Relaxed);\n}\n";
        let f = file(src);
        let first = f.scrubbed.find("Ordering::Relaxed").unwrap();
        let second = f.scrubbed.rfind("Ordering::Relaxed").unwrap();
        assert!(f.is_allowed("relaxed", f.line_of(first), first));
        assert!(!f.is_allowed("relaxed", f.line_of(second), second));
    }

    #[test]
    fn malformed_annotation_is_an_error() {
        let f = file("// lint:allow(panic)\nlet x = 1;\n");
        assert_eq!(f.annotation_errors.len(), 1);
        let f2 = file("// lint:allow(bogus): reason\n");
        assert_eq!(f2.annotation_errors.len(), 1);
    }

    #[test]
    fn fn_body_finds_named_function() {
        let src = "impl S {\n    pub fn view(&self) -> u64 {\n        self.x\n    }\n}\n";
        let f = file(src);
        let (open, end) = f.fn_body("view").unwrap();
        assert!(f.scrubbed[open..end].contains("self.x"));
    }
}
