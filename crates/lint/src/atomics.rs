//! Pass 2 — atomics-ordering.
//!
//! Every `Ordering::Relaxed` in production code must carry a
//! `// lint:allow(relaxed): <reason>` annotation. The workspace's rule:
//! cross-thread *flags* (shutdown, drain, accept-waker) use
//! Acquire/Release or SeqCst so the data they publish is visible to the
//! observer; only monotonic *counters* — where readers tolerate a stale
//! value and no other memory hangs off the load — stay Relaxed, and the
//! annotation is the whitelist. A new Relaxed site therefore cannot land
//! without a reviewer-visible claim that it is a counter, not a flag.

use crate::{Diagnostic, Workspace};

const PASS: &str = "atomics-ordering";

pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for src in &ws.sources {
        if !Workspace::in_checked_crate(&src.rel_path) {
            continue;
        }
        for at in src.find_token("Ordering::Relaxed") {
            if src.is_test_offset(at) {
                continue;
            }
            let line = src.line_of(at);
            if src.is_allowed("relaxed", line, at) {
                continue;
            }
            diags.push(Diagnostic::new(
                PASS,
                &src.rel_path,
                line,
                "`Ordering::Relaxed` without justification; counters get \
                 `// lint:allow(relaxed): <reason>`, cross-thread flags get Acquire/Release"
                    .to_string(),
            ));
        }
    }
}
