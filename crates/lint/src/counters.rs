//! Pass 5 — counter-plumbing.
//!
//! A `FleetStats` counter that is incremented but never reported is worse
//! than no counter: the operator reads STATUS, sees nothing, and trusts
//! it. Every `AtomicU64` field of `FleetStats` must therefore flow
//! through all three reporting surfaces:
//!
//! 1. `FleetStats::view()` — the consistent snapshot everything reads;
//! 2. the STATUS serializer (`status_json` in `serve.rs`) — the wire view;
//! 3. the shutdown `health:`/summary block in `run_serve` — the operator's
//!    last line, either directly as `view.<counter>` or via the
//!    `evicted_connections()` aggregate.

use crate::{Diagnostic, Workspace};

const PASS: &str = "counter-plumbing";
const FLEET_RS: &str = "crates/stream/src/fleet.rs";
const SERVE_RS: &str = "crates/cli/src/serve.rs";

pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let Some(fleet) = ws.source(FLEET_RS) else {
        diags.push(Diagnostic::new(
            PASS,
            FLEET_RS,
            1,
            "missing file: cannot check counters".into(),
        ));
        return;
    };
    let Some(serve) = ws.source(SERVE_RS) else {
        diags.push(Diagnostic::new(
            PASS,
            SERVE_RS,
            1,
            "missing file: cannot check counters".into(),
        ));
        return;
    };

    // Field list: `pub <name>: AtomicU64,` inside `struct FleetStats`.
    let Some(struct_at) = fleet.find_token("struct FleetStats").first().copied() else {
        diags.push(Diagnostic::new(PASS, FLEET_RS, 1, "no `struct FleetStats` found".into()));
        return;
    };
    let Some(open) = fleet.scrubbed[struct_at..].find('{').map(|p| struct_at + p) else {
        return;
    };
    let body_end = match_depth(&fleet.scrubbed, open);
    let mut counters: Vec<(String, usize)> = Vec::new();
    let start_line = fleet.line_of(open);
    let end_line = fleet.line_of(body_end.saturating_sub(1));
    for line_no in start_line..=end_line {
        let t = fleet.scrubbed_line(line_no).trim();
        let Some(rest) = t.strip_prefix("pub ") else { continue };
        let Some((name, ty)) = rest.split_once(':') else { continue };
        if ty.trim().trim_end_matches(',') == "AtomicU64" {
            counters.push((name.trim().to_string(), line_no));
        }
    }
    if counters.is_empty() {
        diags.push(Diagnostic::new(
            PASS,
            FLEET_RS,
            fleet.line_of(struct_at),
            "no `pub <name>: AtomicU64` fields parsed from `struct FleetStats`".into(),
        ));
        return;
    }

    let view_body = fleet.fn_body("view").map(|(s, e)| &fleet.scrubbed[s..e]);
    let status_body = serve.fn_body("status_json").map(|(s, e)| &serve.raw[s..e]);
    let run_serve_body = serve.fn_body("run_serve").map(|(s, e)| &serve.raw[s..e]);
    let evicted: Vec<String> = fleet
        .fn_body("evicted_connections")
        .map(|(s, e)| {
            counters
                .iter()
                .filter(|(name, _)| contains_token(&fleet.scrubbed[s..e], name))
                .map(|(name, _)| name.clone())
                .collect()
        })
        .unwrap_or_default();

    for (name, line) in &counters {
        match view_body {
            Some(body) if contains_token(body, name) => {}
            Some(_) => diags.push(Diagnostic::new(
                PASS,
                FLEET_RS,
                *line,
                format!("counter `{name}` is not loaded by `FleetStats::view()`"),
            )),
            None => {
                diags.push(Diagnostic::new(PASS, FLEET_RS, 1, "no `fn view` found".into()));
                return;
            }
        }
        match status_body {
            Some(body) if body.contains(&format!("\"{name}\"")) => {}
            Some(_) => diags.push(Diagnostic::new(
                PASS,
                FLEET_RS,
                *line,
                format!("counter `{name}` is not serialized by `status_json` in {SERVE_RS}"),
            )),
            None => {
                diags.push(Diagnostic::new(PASS, SERVE_RS, 1, "no `fn status_json` found".into()));
                return;
            }
        }
        match run_serve_body {
            Some(body)
                if contains_token(body, &format!("view.{name}"))
                    || (evicted.contains(name) && body.contains("evicted_connections")) => {}
            Some(_) => diags.push(Diagnostic::new(
                PASS,
                FLEET_RS,
                *line,
                format!(
                    "counter `{name}` does not reach the shutdown health/summary block in \
                     `run_serve` ({SERVE_RS}), directly or via `evicted_connections()`"
                ),
            )),
            None => {
                diags.push(Diagnostic::new(PASS, SERVE_RS, 1, "no `fn run_serve` found".into()));
                return;
            }
        }
    }
}

/// `needle` occurs in `text` with non-identifier bytes on both sides.
fn contains_token(text: &str, needle: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(needle) {
        let at = from + pos;
        let left_ok = at == 0 || !is_ident(bytes[at - 1]);
        let right = at + needle.len();
        let right_ok = right >= bytes.len() || !is_ident(bytes[right]);
        if left_ok && right_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Offset just past the `}` matching `text[open] == '{'` (or EOF).
fn match_depth(text: &str, open: usize) -> usize {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (i, b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    text.len()
}
