//! Pass 1 — panic-safety.
//!
//! Production code (everything outside `#[cfg(test)]` spans) in the
//! checked crates must not call `.unwrap()` / `.expect(..)` or expand
//! `panic!` / `unreachable!` unless the site carries
//! `// lint:allow(panic): <reason>`. Worker seams catch panics with
//! `catch_unwind`, but an unjustified panic in a seam still costs an
//! alarm's explanation — every intentional one must say why it cannot
//! fire (invariant) or why firing is the contract (failpoints, documented
//! input rejection).
//!
//! The scrubbed text makes this robust: `panic!` in doc comments, log
//! strings, and test modules never match. `unwrap_or`/`unwrap_or_else`
//! never match because the needle requires the closing paren / opening
//! paren directly after the method name.

use crate::{Diagnostic, Workspace};

const PASS: &str = "panic-safety";

/// (needle, display name) — needle shapes chosen so near-miss identifiers
/// (`unwrap_or`, `expected`, `some_panic!`) cannot match.
const FORBIDDEN: [(&str, &str); 4] = [
    (".unwrap()", "unwrap()"),
    (".expect(", "expect()"),
    ("panic!", "panic!"),
    ("unreachable!", "unreachable!"),
];

pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for src in &ws.sources {
        if !Workspace::in_checked_crate(&src.rel_path) {
            continue;
        }
        for (needle, name) in FORBIDDEN {
            for at in src.find_token(needle) {
                if src.is_test_offset(at) {
                    continue;
                }
                // `debug_assert!`-style bangs: `panic!` needle never matches
                // them, but `unreachable!` could appear as a path
                // (`std::unreachable!`) — same macro, still flagged.
                let line = src.line_of(at);
                if src.is_allowed("panic", line, at) {
                    continue;
                }
                diags.push(Diagnostic::new(
                    PASS,
                    &src.rel_path,
                    line,
                    format!(
                        "`{name}` in production code; fix it or annotate with \
                         `// lint:allow(panic): <reason>`"
                    ),
                ));
            }
        }
    }
}
