//! Pass 4 — wire/exit-code conformance.
//!
//! The README is the protocol's contract for people writing clients, and
//! the exit-code paragraphs are the contract for supervisors. Both are
//! markdown, so nothing stops them drifting from `protocol.rs` and
//! `CliError::exit_code()` — except this pass, which parses them.
//!
//! Wire: every `pub const NAME: u8 = 0x..;` in `protocol.rs`'s `op`
//! module (except the `REPLY` bit) must appear as a README table row
//! `` | `0xNN` NAME | ... | `` with the same code, and every such row must
//! name a real constant. `REPLY` is prose, not a row: the README must
//! mention `0x80`.
//!
//! Exit codes: the set is derived from code — `0` (success), the arms of
//! `CliError::exit_code()` in `io.rs`, and `2` if `main.rs` exits with it
//! on usage errors. Every README paragraph starting a sentence with
//! "Exit codes" must mention exactly that set in backticks.

use std::collections::BTreeMap;

use crate::{Diagnostic, Workspace};

const PASS: &str = "wire-conformance";
const PROTOCOL_RS: &str = "crates/cli/src/protocol.rs";
const IO_RS: &str = "crates/cli/src/io.rs";
const MAIN_RS: &str = "crates/cli/src/main.rs";

pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    check_wire(ws, diags);
    check_exit_codes(ws, diags);
}

fn check_wire(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let Some(proto) = ws.source(PROTOCOL_RS) else {
        diags.push(Diagnostic::new(
            PASS,
            PROTOCOL_RS,
            1,
            "missing file: cannot check opcodes".into(),
        ));
        return;
    };
    // `pub const NAME: u8 = 0xNN;` inside `pub mod op { .. }`.
    let mut consts: BTreeMap<String, (u8, usize)> = BTreeMap::new();
    let Some(mod_at) = proto.find_token("mod op").first().copied() else {
        diags.push(Diagnostic::new(PASS, PROTOCOL_RS, 1, "no `mod op` found".into()));
        return;
    };
    for (idx, line) in proto.raw.lines().enumerate() {
        if idx < proto.line_of(mod_at) {
            continue;
        }
        let t = line.trim_start();
        if t.starts_with('}') && line.starts_with('}') {
            break;
        }
        let Some(rest) = t.strip_prefix("pub const ") else { continue };
        let Some((name, value)) = rest.split_once(": u8 = ") else { continue };
        let Some(code) = parse_hex_u8(value.trim_end_matches(';').trim()) else { continue };
        consts.insert(name.trim().to_string(), (code, idx + 1));
    }
    if consts.is_empty() {
        diags.push(Diagnostic::new(
            PASS,
            PROTOCOL_RS,
            proto.line_of(mod_at),
            "no opcode constants parsed from `mod op`".into(),
        ));
        return;
    }

    let Some(readme) = &ws.readme else {
        diags.push(Diagnostic::new(PASS, "README.md", 1, "missing README.md".into()));
        return;
    };
    // README rows: `| `0xNN` NAME | payload | meaning |`.
    let mut rows: BTreeMap<String, (u8, usize)> = BTreeMap::new();
    for (idx, line) in readme.lines().enumerate() {
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix("| `0x") else { continue };
        let Some((hex, after)) = rest.split_once('`') else { continue };
        let Some(code) = parse_hex_u8(&format!("0x{hex}")) else { continue };
        let name: String =
            after.trim_start().chars().take_while(|c| c.is_ascii_uppercase()).collect();
        if !name.is_empty() {
            rows.insert(name, (code, idx + 1));
        }
    }

    for (name, (code, line)) in &consts {
        if name == "REPLY" {
            if !readme.contains("0x80") {
                diags.push(Diagnostic::new(
                    PASS,
                    PROTOCOL_RS,
                    *line,
                    "the `REPLY` bit (0x80) is not mentioned in README.md".into(),
                ));
            }
            continue;
        }
        match rows.get(name) {
            None => diags.push(Diagnostic::new(
                PASS,
                PROTOCOL_RS,
                *line,
                format!("opcode `{name}` (0x{code:02x}) has no row in the README wire table"),
            )),
            Some((row_code, row_line)) if row_code != code => diags.push(Diagnostic::new(
                PASS,
                "README.md",
                *row_line,
                format!("wire table says `{name}` is 0x{row_code:02x}, but protocol.rs says 0x{code:02x}"),
            )),
            Some(_) => {}
        }
    }
    for (name, (code, row_line)) in &rows {
        if !consts.contains_key(name) {
            diags.push(Diagnostic::new(
                PASS,
                "README.md",
                *row_line,
                format!("wire table row `{name}` (0x{code:02x}) matches no constant in protocol.rs `mod op`"),
            ));
        }
    }
}

fn check_exit_codes(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let Some(io) = ws.source(IO_RS) else {
        diags.push(Diagnostic::new(PASS, IO_RS, 1, "missing file: cannot check exit codes".into()));
        return;
    };
    let mut derived = vec![0i64];
    match io.fn_body("exit_code") {
        Some((open, end)) => {
            let body = &io.scrubbed[open..end];
            let mut from = 0;
            while let Some(pos) = body[from..].find("=> ") {
                let at = from + pos + 3;
                from = at;
                let digits: String =
                    body[at..].chars().take_while(|c| c.is_ascii_digit()).collect();
                if let Ok(code) = digits.parse::<i64>() {
                    derived.push(code);
                }
            }
        }
        None => {
            diags.push(Diagnostic::new(PASS, IO_RS, 1, "no `fn exit_code` found".into()));
            return;
        }
    }
    if let Some(main) = ws.source(MAIN_RS) {
        if main.scrubbed.contains("exit(2)") {
            derived.push(2);
        }
    }
    derived.sort_unstable();
    derived.dedup();

    let Some(readme) = &ws.readme else {
        return; // already reported by the wire check
    };
    let mut paragraphs: Vec<(usize, String)> = Vec::new();
    let mut current_start = 0usize;
    let mut current = String::new();
    for (idx, line) in readme.lines().enumerate() {
        if line.trim().is_empty() {
            if !current.is_empty() {
                paragraphs.push((current_start, std::mem::take(&mut current)));
            }
        } else {
            if current.is_empty() {
                current_start = idx + 1;
            }
            current.push_str(line);
            current.push('\n');
        }
    }
    if !current.is_empty() {
        paragraphs.push((current_start, current));
    }

    let mut saw_paragraph = false;
    for (line, text) in &paragraphs {
        if !text.contains("Exit codes") {
            continue;
        }
        saw_paragraph = true;
        let mentioned = backticked_digits(text);
        for code in &derived {
            if !mentioned.contains(code) {
                diags.push(Diagnostic::new(
                    PASS,
                    "README.md",
                    *line,
                    format!("exit-code paragraph does not mention code `{code}` (derived from {IO_RS}/{MAIN_RS})"),
                ));
            }
        }
        for code in &mentioned {
            if !derived.contains(code) {
                diags.push(Diagnostic::new(
                    PASS,
                    "README.md",
                    *line,
                    format!("exit-code paragraph mentions `{code}`, which no code path produces"),
                ));
            }
        }
    }
    if !saw_paragraph {
        diags.push(Diagnostic::new(
            PASS,
            "README.md",
            1,
            "no paragraph documenting \"Exit codes\" found".into(),
        ));
    }
}

fn parse_hex_u8(s: &str) -> Option<u8> {
    u8::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

/// Single digits in backticks: `` `0` `` → 0. Longer backticked numbers
/// (`0x85`, timeouts) are not exit codes and are ignored.
fn backticked_digits(text: &str) -> Vec<i64> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for i in 0..bytes.len().saturating_sub(2) {
        if bytes[i] == b'`' && bytes[i + 1].is_ascii_digit() && bytes[i + 2] == b'`' {
            out.push((bytes[i + 1] - b'0') as i64);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}
