//! `moche-lint` binary: run the invariant passes and report.
//!
//! ```text
//! cargo run -p moche-lint -- --check                 # CI mode: exit 1 on violations
//! cargo run -p moche-lint -- --check --report r.json # also write the JSON report
//! cargo run -p moche-lint -- --root path/to/tree     # lint another tree (fixtures)
//! ```
//!
//! Without `--check` the scan still runs and prints, but always exits 0 —
//! useful while annotating a tree incrementally. Exit codes: 0 clean (or
//! no `--check`), 1 violations found, 2 usage error, 3 I/O failure.

use std::io::Write as _;
use std::path::PathBuf;

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("moche-lint: error: {e}");
            std::process::exit(3);
        }
    }
}

fn run() -> std::io::Result<i32> {
    let mut check = false;
    let mut report: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--report" => match args.next() {
                Some(p) => report = Some(PathBuf::from(p)),
                None => return usage("--report needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                let stdout = std::io::stdout();
                writeln!(
                    stdout.lock(),
                    "usage: moche-lint [--check] [--report <path>] [--root <path>]\n\
                     runs the workspace invariant passes; --check exits 1 on violations"
                )?;
                return Ok(0);
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => find_workspace_root()?,
    };

    let diags = moche_lint::run_checks(&root)?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for d in &diags {
        writeln!(out, "{d}")?;
    }
    writeln!(out, "moche-lint: {} violation(s) in {}", diags.len(), root.display())?;
    if let Some(path) = report {
        std::fs::write(&path, moche_lint::json_report(&diags))?;
        writeln!(out, "moche-lint: report written to {}", path.display())?;
    }
    Ok(if check && !diags.is_empty() { 1 } else { 0 })
}

fn usage(msg: &str) -> std::io::Result<i32> {
    eprintln!("moche-lint: {msg}");
    eprintln!("usage: moche-lint [--check] [--report <path>] [--root <path>]");
    Ok(2)
}

/// Walk up from the current directory to the workspace root (the first
/// ancestor holding both `Cargo.toml` and a `crates/` directory). With
/// `cargo run -p moche-lint` the current directory already is the root.
fn find_workspace_root() -> std::io::Result<PathBuf> {
    let mut dir = std::env::current_dir()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no workspace root found (want a dir with Cargo.toml and crates/); use --root",
            ));
        }
    }
}
