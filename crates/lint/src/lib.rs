//! `moche-lint`: the workspace's in-tree invariant analyzer.
//!
//! The repo's headline guarantee — explanations bit-identical to the
//! paper's exact KS construction under every optimization — rests on
//! invariants that a compiler cannot see: no panics in production worker
//! seams, justified atomics orderings, failpoint names that exist in
//! exactly one registry, README wire/exit-code tables that match the code,
//! and `FleetStats` counters that actually reach the operator. This crate
//! checks them mechanically. Zero external dependencies; run as
//! `cargo run -p moche-lint -- --check`.
//!
//! Five passes (see README "Static analysis" for the operator view):
//!
//! | pass                 | invariant |
//! |----------------------|-----------|
//! | `panic-safety`       | no `unwrap()`/`expect()`/`panic!`/`unreachable!` in production code of core/stream/cli/sigproc/multidim without `// lint:allow(panic): <reason>` |
//! | `atomics-ordering`   | every `Ordering::Relaxed` carries `// lint:allow(relaxed): <reason>` |
//! | `failpoint-registry` | fault seams agree across registry ⇄ call sites ⇄ README ⇄ tests |
//! | `wire-conformance`   | README opcode table == `protocol.rs` `op` consts; README exit codes == `CliError::exit_code()` + `main.rs` |
//! | `counter-plumbing`   | every `FleetStats` counter reaches `view()`, the STATUS serializer, and the shutdown `health:`/summary block |
//!
//! Annotation grammar: `// lint:allow(<pass>): <reason>` on the offending
//! line or the line directly above; `// lint:allow(<pass>, fn): <reason>`
//! directly above a `fn` whitelists its whole body. Malformed annotations
//! are themselves diagnostics — a typo can neither silently silence a pass
//! nor silently fail to.

use std::fmt;
use std::path::{Path, PathBuf};

mod atomics;
mod conformance;
mod counters;
mod failpoints;
mod lexer;
mod panic_safety;

pub use lexer::SourceFile;

/// One violation. Ordered and formatted stably so the machine-readable
/// report can be diffed across runs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Pass name: `panic-safety`, `atomics-ordering`, `failpoint-registry`,
    /// `wire-conformance`, `counter-plumbing`, or `annotation-grammar`.
    pub pass: String,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
}

impl Diagnostic {
    pub fn new(pass: &str, file: &str, line: usize, message: String) -> Diagnostic {
        Diagnostic { pass: pass.to_string(), file: file.to_string(), line, message }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.pass, self.message)
    }
}

/// The crates whose production code is held to the panic/atomics bar.
pub const CHECKED_CRATES: [&str; 5] = ["core", "stream", "cli", "sigproc", "multidim"];

/// The loaded workspace: parsed production sources, raw test sources, and
/// the README. Missing files are reported by the passes that need them.
pub struct Workspace {
    pub root: PathBuf,
    /// `src/**/*.rs` of the checked crates plus `signal` (signal is scanned
    /// for failpoints but exempt from the panic/atomics passes).
    pub sources: Vec<SourceFile>,
    /// `crates/*/tests/**/*.rs`, raw text keyed by relative path.
    pub test_files: Vec<(String, String)>,
    pub readme: Option<String>,
}

impl Workspace {
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut sources = Vec::new();
        for krate in CHECKED_CRATES.iter().chain(std::iter::once(&"signal")) {
            let src_dir = root.join("crates").join(krate).join("src");
            for path in rs_files(&src_dir) {
                let rel = rel_path(root, &path);
                let raw = std::fs::read_to_string(&path)?;
                sources.push(SourceFile::parse(rel, raw));
            }
        }
        let mut test_files = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for dir in crate_dirs {
                // The analyzer's own tests carry seeded-violation fixtures;
                // mistaking them for workspace tests would manufacture
                // failpoint "coverage" (and orphan arms) out of thin air.
                if dir.file_name().is_some_and(|n| n == "lint") {
                    continue;
                }
                for path in rs_files(&dir.join("tests")) {
                    let rel = rel_path(root, &path);
                    let raw = std::fs::read_to_string(&path)?;
                    test_files.push((rel, raw));
                }
            }
        }
        let readme = std::fs::read_to_string(root.join("README.md")).ok();
        Ok(Workspace { root: root.to_path_buf(), sources, test_files, readme })
    }

    pub fn source(&self, rel_path: &str) -> Option<&SourceFile> {
        self.sources.iter().find(|s| s.rel_path == rel_path)
    }

    /// Does `rel_path` belong to one of the panic/atomics-checked crates?
    fn in_checked_crate(rel_path: &str) -> bool {
        CHECKED_CRATES.iter().any(|c| {
            rel_path
                .strip_prefix("crates/")
                .and_then(|r| r.strip_prefix(c))
                .is_some_and(|r| r.starts_with('/'))
        })
    }
}

/// Run every pass; the returned list is sorted (pass, file, line, message).
pub fn run_checks(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let ws = Workspace::load(root)?;
    let mut diags = Vec::new();
    for src in &ws.sources {
        for err in &src.annotation_errors {
            diags.push(Diagnostic::new(
                "annotation-grammar",
                &src.rel_path,
                err.line,
                err.message.clone(),
            ));
        }
    }
    panic_safety::check(&ws, &mut diags);
    atomics::check(&ws, &mut diags);
    failpoints::check(&ws, &mut diags);
    conformance::check(&ws, &mut diags);
    counters::check(&ws, &mut diags);
    diags.sort();
    diags.dedup();
    Ok(diags)
}

/// Render the stable machine-readable report (JSON, sorted, no deps).
pub fn json_report(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"violations\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!(
            "\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"",
            json_escape(&d.pass),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// All `.rs` files under `dir`, recursively, sorted for determinism.
/// A missing directory yields an empty list.
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
