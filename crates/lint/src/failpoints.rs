//! Pass 3 — failpoint-registry.
//!
//! The fault seams live in four places that must agree: the registry doc
//! table in `crates/core/src/fault.rs` ("Injection points"), the
//! `failpoint("...")` call sites compiled into the pipelines, the README
//! `MOCHE_FAULTS` documentation, and at least one test that arms the seam.
//! No orphans in any direction: an undocumented call site is an invisible
//! chaos knob, a documented-but-uncalled seam is a fault-tolerance claim
//! nothing exercises, and a test arming an unregistered name silently
//! tests nothing.

use std::collections::BTreeMap;

use crate::{Diagnostic, Workspace};

const PASS: &str = "failpoint-registry";
const FAULT_RS: &str = "crates/core/src/fault.rs";

pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let Some(fault) = ws.source(FAULT_RS) else {
        diags.push(Diagnostic::new(
            PASS,
            FAULT_RS,
            1,
            "missing file: cannot check registry".into(),
        ));
        return;
    };

    // Registry = the doc table rows: `//! | `name` | location | faults |`.
    let mut registry: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, line) in fault.raw.lines().enumerate() {
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix("//! | `") else { continue };
        let Some(name) = rest.split('`').next() else { continue };
        if is_seam_name(name) {
            registry.insert(name.to_string(), idx + 1);
        }
    }
    if registry.is_empty() {
        diags.push(Diagnostic::new(
            PASS,
            FAULT_RS,
            1,
            "no registry rows found (expected `//! | \\`name\\` | ...` doc-table rows)".into(),
        ));
        return;
    }

    // Call sites: `failpoint("name")` string literals in production spans
    // of every scanned crate except the registry module itself.
    let mut call_sites: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for src in &ws.sources {
        if src.rel_path == FAULT_RS {
            continue;
        }
        for at in src.find_token("failpoint(") {
            if src.is_test_offset(at) {
                continue;
            }
            let Some(name) = literal_arg(&src.raw, at + "failpoint(".len()) else { continue };
            let line = src.line_of(at);
            if !registry.contains_key(&name) {
                diags.push(Diagnostic::new(
                    PASS,
                    &src.rel_path,
                    line,
                    format!("failpoint `{name}` is not in the registry table in {FAULT_RS}"),
                ));
            }
            call_sites.entry(name).or_insert_with(|| (src.rel_path.clone(), line));
        }
    }
    for (name, row_line) in &registry {
        if !call_sites.contains_key(name) {
            diags.push(Diagnostic::new(
                PASS,
                FAULT_RS,
                *row_line,
                format!("registered failpoint `{name}` has no production call site"),
            ));
        }
    }

    // README: every seam must be documented for MOCHE_FAULTS users.
    match &ws.readme {
        Some(readme) => {
            for (name, row_line) in &registry {
                if !readme.contains(name) {
                    diags.push(Diagnostic::new(
                        PASS,
                        FAULT_RS,
                        *row_line,
                        format!("registered failpoint `{name}` is not documented in README.md"),
                    ));
                }
            }
        }
        None => {
            diags.push(Diagnostic::new(PASS, "README.md", 1, "missing README.md".into()));
        }
    }

    // Tests: every seam is armed (or named in a MOCHE_FAULTS spec) by at
    // least one integration test, and no test arms an unregistered name.
    for (name, row_line) in &registry {
        let covered = ws.test_files.iter().any(|(_, raw)| raw.contains(name.as_str()));
        if !covered {
            diags.push(Diagnostic::new(
                PASS,
                FAULT_RS,
                *row_line,
                format!("registered failpoint `{name}` is armed by no test under crates/*/tests"),
            ));
        }
    }
    for (rel, raw) in &ws.test_files {
        for (name, line) in armed_names(raw) {
            if !registry.contains_key(&name) {
                diags.push(Diagnostic::new(
                    PASS,
                    rel,
                    line,
                    format!("test arms failpoint `{name}`, which is not in the registry table"),
                ));
            }
        }
    }
}

/// Seam names are dotted lowercase identifiers: `serve.read`, not prose.
fn is_seam_name(name: &str) -> bool {
    name.contains('.')
        && !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'_')
}

/// If `raw[from..]` (after optional whitespace) starts a string literal,
/// return its contents up to the closing quote.
fn literal_arg(raw: &str, from: usize) -> Option<String> {
    let bytes = raw.as_bytes();
    let mut i = from;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    let end = raw[i..].find('"')?;
    Some(raw[i..i + end].to_string())
}

/// Failpoint names a test file arms: `arm("name", ...)` calls plus
/// `name=fault` pairs inside `MOCHE_FAULTS`-style spec strings.
fn armed_names(raw: &str) -> Vec<(String, usize)> {
    let mut names = Vec::new();
    let mut from = 0;
    while let Some(pos) = raw[from..].find("arm(") {
        let at = from + pos;
        from = at + 4;
        // Token boundary: reject `disarm(`.
        if at > 0
            && (raw.as_bytes()[at - 1].is_ascii_alphanumeric() || raw.as_bytes()[at - 1] == b'_')
        {
            continue;
        }
        if let Some(name) = literal_arg(raw, at + 4) {
            if is_seam_name(&name) {
                names.push((name, line_at(raw, at)));
            }
        }
    }
    for fault_kind in ["=panic", "=error", "=truncate"] {
        let mut from = 0;
        while let Some(pos) = raw[from..].find(fault_kind) {
            let at = from + pos;
            from = at + fault_kind.len();
            let head = &raw[..at];
            let start = head
                .rfind(|c: char| {
                    !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
                })
                .map_or(0, |p| p + 1);
            let name = &head[start..];
            if is_seam_name(name) {
                names.push((name.to_string(), line_at(raw, at)));
            }
        }
    }
    names
}

fn line_at(raw: &str, offset: usize) -> usize {
    raw[..offset].bytes().filter(|b| *b == b'\n').count() + 1
}
