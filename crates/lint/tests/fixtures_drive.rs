//! Self-test of `moche-lint` against seeded-violation fixtures.
//!
//! Every pass gets one overlay under `fixtures/violations/<pass>/` that
//! replaces exactly one file of the clean fixture tree. Each test merges
//! clean + overlay into a temp workspace, drives the *real binary*
//! (`--check --root`), and pins both the exit code and the exact
//! diagnostic line — so a refactor that silently stops a pass from
//! firing, or reshuffles the `file:line:` format CI greps for, fails
//! here first. The final test holds the analyzer to its own standard:
//! the actual repository must lint clean.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Recursively copy `src` over `dst` (files overwrite; dirs merge).
fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create fixture dir");
    for entry in std::fs::read_dir(src).expect("read fixture dir") {
        let entry = entry.expect("fixture dir entry");
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_tree(&from, &to);
        } else {
            std::fs::copy(&from, &to).expect("copy fixture file");
        }
    }
}

/// Fresh temp workspace: the clean tree, plus `overlay` on top if given.
fn fixture_workspace(name: &str, overlay: Option<&str>) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-fixtures").join(name);
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clear stale fixture workspace");
    }
    copy_tree(&fixtures_dir().join("clean"), &root);
    if let Some(overlay) = overlay {
        copy_tree(&fixtures_dir().join("violations").join(overlay), &root);
    }
    root
}

/// Run `moche-lint --check --root <root> --report <root>/report.json`.
fn run_lint(root: &Path) -> (i32, String, String) {
    let report = root.join("report.json");
    let output = Command::new(env!("CARGO_BIN_EXE_moche-lint"))
        .args(["--check", "--root"])
        .arg(root)
        .arg("--report")
        .arg(&report)
        .output()
        .expect("run moche-lint");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    let report = std::fs::read_to_string(&report).expect("report written");
    (output.status.code().expect("exit code"), stdout, report)
}

/// One seeded violation, end to end: nonzero exit, the pinned diagnostic
/// on stdout, and the pass name in the JSON report.
fn assert_overlay_fires(overlay: &str, pinned: &str) {
    let root = fixture_workspace(overlay, Some(overlay));
    let (code, stdout, report) = run_lint(&root);
    assert_eq!(code, 1, "overlay `{overlay}` must fail --check; stdout:\n{stdout}");
    assert!(stdout.contains(pinned), "missing pinned diagnostic `{pinned}` in:\n{stdout}");
    assert!(
        report.contains(&format!("\"pass\": \"{overlay}\"")),
        "report must attribute a violation to `{overlay}`:\n{report}"
    );
}

#[test]
fn clean_fixture_lints_clean() {
    let root = fixture_workspace("clean", None);
    let (code, stdout, report) = run_lint(&root);
    assert_eq!(code, 0, "clean fixture must pass --check; stdout:\n{stdout}");
    assert!(stdout.contains("moche-lint: 0 violation(s)"), "{stdout}");
    assert!(report.contains("\"violations\": 0"), "{report}");
}

#[test]
fn seeded_unannotated_unwrap_fires_panic_safety() {
    assert_overlay_fires(
        "panic-safety",
        "crates/core/src/lib.rs:15: [panic-safety] `unwrap()` in production code; \
         fix it or annotate with `// lint:allow(panic): <reason>`",
    );
}

#[test]
fn seeded_unjustified_relaxed_fires_atomics_ordering() {
    assert_overlay_fires(
        "atomics-ordering",
        "crates/core/src/lib.rs:14: [atomics-ordering] `Ordering::Relaxed` without \
         justification; counters get `// lint:allow(relaxed): <reason>`, cross-thread \
         flags get Acquire/Release",
    );
}

#[test]
fn seeded_orphan_seam_fires_failpoint_registry() {
    let overlay = "failpoint-registry";
    let root = fixture_workspace(overlay, Some(overlay));
    let (code, stdout, _) = run_lint(&root);
    assert_eq!(code, 1, "{stdout}");
    // An orphan registry row is wrong three ways at once; all three land
    // on the row's own line.
    for pinned in [
        "crates/core/src/fault.rs:9: [failpoint-registry] registered failpoint \
         `ghost.seam` has no production call site",
        "crates/core/src/fault.rs:9: [failpoint-registry] registered failpoint \
         `ghost.seam` is not documented in README.md",
        "crates/core/src/fault.rs:9: [failpoint-registry] registered failpoint \
         `ghost.seam` is armed by no test under crates/*/tests",
    ] {
        assert!(stdout.contains(pinned), "missing `{pinned}` in:\n{stdout}");
    }
}

#[test]
fn seeded_opcode_drift_fires_wire_conformance() {
    assert_overlay_fires(
        "wire-conformance",
        "README.md:14: [wire-conformance] wire table says `OBS` is 0x09, \
         but protocol.rs says 0x01",
    );
}

#[test]
fn seeded_unplumbed_counter_fires_counter_plumbing() {
    let overlay = "counter-plumbing";
    let root = fixture_workspace(overlay, Some(overlay));
    let (code, stdout, _) = run_lint(&root);
    assert_eq!(code, 1, "{stdout}");
    // A counter plumbed nowhere misses all three reporting surfaces.
    for pinned in [
        "crates/stream/src/fleet.rs:13: [counter-plumbing] counter `lost_updates` \
         is not loaded by `FleetStats::view()`",
        "crates/stream/src/fleet.rs:13: [counter-plumbing] counter `lost_updates` \
         is not serialized by `status_json` in crates/cli/src/serve.rs",
        "crates/stream/src/fleet.rs:13: [counter-plumbing] counter `lost_updates` \
         does not reach the shutdown health/summary block",
    ] {
        assert!(stdout.contains(pinned), "missing `{pinned}` in:\n{stdout}");
    }
}

#[test]
fn seeded_reasonless_annotation_fires_annotation_grammar() {
    let overlay = "annotation-grammar";
    let root = fixture_workspace(overlay, Some(overlay));
    let (code, stdout, _) = run_lint(&root);
    assert_eq!(code, 1, "{stdout}");
    assert!(
        stdout.contains(
            "crates/core/src/lib.rs:17: [annotation-grammar] malformed annotation: \
             expected `): <reason>`"
        ),
        "{stdout}"
    );
    // The malformed annotation covers nothing: the site below it must
    // trip panic-safety as well.
    assert!(stdout.contains("crates/core/src/lib.rs:18: [panic-safety]"), "{stdout}");
}

/// The analyzer's own standard applies to this repository: the real tree
/// lints clean, via the library entry point CI's binary wraps.
#[test]
fn real_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let diags = moche_lint::run_checks(root).expect("scan workspace");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}
