//! Overlay: the registry documents a seam no code calls, no README
//! section explains, and no test arms — failpoint-registry must fire.
//!
//! # Injection points
//!
//! | name | location | faults |
//! |---|---|---|
//! | `demo.seam` | the demo pipeline | error |
//! | `ghost.seam` | nowhere at all | error |

/// Fixture failpoint hook: a no-op, like the real one without the
/// `fault-injection` feature.
pub fn failpoint(_name: &str) -> Option<()> {
    None
}
