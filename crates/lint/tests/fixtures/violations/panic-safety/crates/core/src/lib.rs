//! Overlay: the unwrap lost its annotation — panic-safety must fire.

pub mod fault;

use std::sync::atomic::{AtomicU64, Ordering};

/// How many times [`step`] ran.
pub static STEPS: AtomicU64 = AtomicU64::new(0);

/// One unit of fixture work.
pub fn step(values: &[f64]) -> f64 {
    fault::failpoint("demo.seam");
    // lint:allow(relaxed): monotonic fixture counter; nothing synchronizes on it
    STEPS.fetch_add(1, Ordering::Relaxed);
    *values.last().unwrap()
}
