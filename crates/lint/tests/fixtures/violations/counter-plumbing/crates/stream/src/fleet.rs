//! Overlay: a counter was added to the struct but plumbed nowhere —
//! counter-plumbing must fire on all three reporting surfaces.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters the fixture daemon reports.
pub struct FleetStats {
    /// Connections accepted.
    pub connections_opened: AtomicU64,
    /// Reads evicted for stalling.
    pub stalled_reads: AtomicU64,
    /// Incremented but reported nowhere: the exact bug this pass exists for.
    pub lost_updates: AtomicU64,
}

/// A consistent snapshot of [`FleetStats`].
pub struct FleetView {
    /// Connections accepted.
    pub connections_opened: u64,
    /// Reads evicted for stalling.
    pub stalled_reads: u64,
}

impl FleetStats {
    /// Snapshot every counter.
    pub fn view(&self) -> FleetView {
        FleetView {
            connections_opened: self.connections_opened.load(Ordering::SeqCst),
            stalled_reads: self.stalled_reads.load(Ordering::SeqCst),
        }
    }
}

impl FleetView {
    /// Total evictions, all causes.
    pub fn evicted_connections(&self) -> u64 {
        self.stalled_reads
    }
}
