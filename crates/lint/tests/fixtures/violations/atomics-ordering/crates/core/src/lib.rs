//! Overlay: the relaxed counter lost its justification — atomics-ordering
//! must fire.

pub mod fault;

use std::sync::atomic::{AtomicU64, Ordering};

/// How many times [`step`] ran.
pub static STEPS: AtomicU64 = AtomicU64::new(0);

/// One unit of fixture work.
pub fn step(values: &[f64]) -> f64 {
    fault::failpoint("demo.seam");
    STEPS.fetch_add(1, Ordering::Relaxed);
    // lint:allow(panic): the fixture always passes a non-empty slice
    *values.last().unwrap()
}
