//! Overlay: an annotation lost its reason — annotation-grammar must fire
//! (and the site it no longer covers trips panic-safety too: a typo can
//! neither silently silence a pass nor silently fail to).

pub mod fault;

use std::sync::atomic::{AtomicU64, Ordering};

/// How many times [`step`] ran.
pub static STEPS: AtomicU64 = AtomicU64::new(0);

/// One unit of fixture work.
pub fn step(values: &[f64]) -> f64 {
    fault::failpoint("demo.seam");
    // lint:allow(relaxed): monotonic fixture counter; nothing synchronizes on it
    STEPS.fetch_add(1, Ordering::Relaxed);
    // lint:allow(panic)
    *values.last().unwrap()
}
