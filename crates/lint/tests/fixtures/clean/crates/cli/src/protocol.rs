//! Fixture wire protocol.

/// Frame opcodes.
pub mod op {
    /// One observation.
    pub const OBS: u8 = 0x01;
    /// Counters snapshot.
    pub const STATUS: u8 = 0x02;
    /// OR-ed onto the request opcode in replies.
    pub const REPLY: u8 = 0x80;
}
