//! Fixture entry point: usage errors exit `2`.

mod io;
mod protocol;
mod serve;

fn main() {
    if std::env::args().len() > 1 {
        eprintln!("usage: fixture");
        std::process::exit(2);
    }
}
