//! Fixture error type with supervisor-facing exit codes.

/// Everything the fixture CLI can fail with.
pub enum CliError {
    /// Snapshot write failed.
    Snapshot(String),
    /// Anything else.
    Other(String),
}

impl CliError {
    /// The process exit code a supervisor sees for this error.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Snapshot(_) => 3,
            CliError::Other(_) => 1,
        }
    }
}
