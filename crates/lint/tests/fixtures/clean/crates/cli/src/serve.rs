//! Fixture daemon: STATUS serializer and shutdown summary, the two
//! reporting surfaces the counter-plumbing pass checks.

/// Serialize a snapshot for the STATUS reply.
pub fn status_json(connections_opened: u64, stalled_reads: u64) -> String {
    let mut out = String::from("{");
    field(&mut out, "connections_opened", connections_opened);
    out.push(',');
    field(&mut out, "stalled_reads", stalled_reads);
    out.push('}');
    out
}

fn field(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\": ");
    out.push_str(&value.to_string());
}

/// Run the fixture daemon to completion and print the operator summary.
pub fn run_serve() -> String {
    let view = fixture_view();
    format!(
        "health: {} opened, {} evicted ({} stalled reads)",
        view.connections_opened,
        view.evicted_connections(),
        view.stalled_reads
    )
}

struct View {
    connections_opened: u64,
    stalled_reads: u64,
}

impl View {
    fn evicted_connections(&self) -> u64 {
        self.stalled_reads
    }
}

fn fixture_view() -> View {
    View { connections_opened: 0, stalled_reads: 0 }
}
