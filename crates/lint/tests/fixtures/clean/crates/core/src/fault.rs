//! Fixture failpoint registry.
//!
//! # Injection points
//!
//! | name | location | faults |
//! |---|---|---|
//! | `demo.seam` | the demo pipeline | error |

/// Fixture failpoint hook: a no-op, like the real one without the
/// `fault-injection` feature.
pub fn failpoint(_name: &str) -> Option<()> {
    None
}
