//! Fixture integration test: arms the one registered seam so the
//! failpoint-registry pass sees test coverage.

#[test]
fn demo_seam_is_armed() {
    std::env::set_var("MOCHE_FAULTS", "demo.seam=error:0:1");
}
