//! The Extended-CornerSearch baseline (Section 6.1.2), adapted from Croce &
//! Hein's CornerSearch `L0` adversarial attack (ICCV 2019).
//!
//! CornerSearch attacks a classifier by (1) scoring single-element
//! perturbations, then (2) randomly sampling small subsets of the top-`K`
//! candidates until the prediction flips. The paper extends it to failed KS
//! tests: data points play the role of pixels, "perturbing" a point means
//! removing it from `T`, and a sampled subset is accepted when `R` and
//! `T \ I` pass the KS test.
//!
//! Faithful to the paper's evaluation protocol:
//!
//! * candidates are restricted to the top-`K` points of the preference
//!   list (`K = 100` in Section 6.2.1), so the method *aborts* when no
//!   subset of the top-`K` reverses the test — this is what drives its
//!   reverse factor below 1 in Table 2;
//! * sampling favours better-ranked candidates (the original attack's
//!   rank-biased sampling);
//! * the sample budget caps runtime (the paper reports 150,000 samples in
//!   the worst case; the default here is lower and configurable).

use crate::explainer::{ExplainRequest, KsExplainer};
use moche_core::base_vector::BaseVector;
use moche_core::cumulative::SubsetCounts;
use moche_core::PreferenceList;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of Extended-CornerSearch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerSearchConfig {
    /// Number of top-ranked preference-list points considered (`K`).
    pub top_k: usize,
    /// Total sampling budget across all subset sizes.
    pub max_samples: usize,
    /// Largest sampled subset size, as a fraction of `K`.
    pub max_size_fraction: f64,
}

impl Default for CornerSearchConfig {
    fn default() -> Self {
        Self { top_k: 100, max_samples: 10_000, max_size_fraction: 1.0 }
    }
}

/// The Extended-CornerSearch explainer.
#[derive(Debug, Clone, Copy, Default)]
pub struct CornerSearch {
    /// Tunable parameters.
    pub config: CornerSearchConfig,
}

impl CornerSearch {
    /// Creates the baseline with an explicit configuration.
    pub fn new(config: CornerSearchConfig) -> Self {
        Self { config }
    }
}

impl KsExplainer for CornerSearch {
    fn name(&self) -> &'static str {
        "CS"
    }

    fn explain(&self, req: &ExplainRequest<'_>) -> Option<Vec<usize>> {
        let fallback = PreferenceList::identity(req.test.len());
        let preference = req.preference.unwrap_or(&fallback);
        let base = BaseVector::build(req.reference, req.test).ok()?;
        if base.outcome(req.cfg).passes() {
            return Some(Vec::new());
        }
        let m = base.m();
        let k = self.config.top_k.min(m.saturating_sub(1));
        if k == 0 {
            return None;
        }
        let candidates: &[usize] = &preference.as_order()[..k];
        let mut rng = StdRng::seed_from_u64(req.seed ^ 0xC0C0_57A6);

        let reverses = |subset: &[usize]| -> bool {
            let counts = SubsetCounts::from_test_indices(&base, subset);
            base.outcome_after_removal(counts.as_slice(), req.cfg).passes()
        };

        // Phase 1: single-point "corners", in rank order.
        let mut budget = self.config.max_samples;
        for &c in candidates {
            if budget == 0 {
                return None;
            }
            budget -= 1;
            if reverses(&[c]) {
                return Some(vec![c]);
            }
        }

        // Phase 2: rank-biased random subsets of growing size. Sizes grow,
        // so the first reversing subset found is the smallest this search
        // will see.
        if k < 2 {
            return None; // no multi-point subsets available
        }
        let max_size = ((k as f64) * self.config.max_size_fraction).ceil() as usize;
        let max_size = max_size.clamp(2, k);
        // Rank-biased weights: linearly decaying with rank.
        let weights: Vec<f64> = (0..k).map(|r| (k - r) as f64).collect();
        let total_w: f64 = weights.iter().sum();
        let mut scratch: Vec<usize> = Vec::with_capacity(max_size);
        let mut used = vec![false; req.test.len()];
        for size in 2..=max_size {
            // Budget share proportional to remaining sizes.
            let tries = (budget / (max_size - size + 1)).max(1);
            for _ in 0..tries {
                if budget == 0 {
                    return None;
                }
                budget -= 1;
                // Sample `size` distinct candidates, rank-biased.
                scratch.clear();
                let mut guard = 0usize;
                while scratch.len() < size && guard < size * 50 {
                    guard += 1;
                    let mut x = rng.random::<f64>() * total_w;
                    let mut pick = k - 1;
                    for (i, &w) in weights.iter().enumerate() {
                        x -= w;
                        if x <= 0.0 {
                            pick = i;
                            break;
                        }
                    }
                    let idx = candidates[pick];
                    if !used[idx] {
                        used[idx] = true;
                        scratch.push(idx);
                    }
                }
                for &i in &scratch {
                    used[i] = false;
                }
                if scratch.len() == size && reverses(&scratch) {
                    let mut found = scratch.clone();
                    found.sort_by_key(|&i| {
                        candidates.iter().position(|&c| c == i).unwrap_or(usize::MAX)
                    });
                    return Some(found);
                }
            }
        }
        None
    }

    fn uses_preference(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moche_core::KsConfig;

    fn paper_setup() -> (Vec<f64>, Vec<f64>, KsConfig) {
        (
            vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0],
            vec![13.0, 13.0, 12.0, 20.0],
            KsConfig::new(0.3).unwrap(),
        )
    }

    fn verify(r: &[f64], t: &[f64], cfg: &KsConfig, subset: &[usize]) -> bool {
        let base = BaseVector::build(r, t).unwrap();
        let counts = SubsetCounts::from_test_indices(&base, subset);
        base.outcome_after_removal(counts.as_slice(), cfg).passes()
    }

    #[test]
    fn finds_a_reversing_subset_on_tiny_instance() {
        let (r, t, cfg) = paper_setup();
        let pref = PreferenceList::identity(4);
        let req =
            ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: Some(&pref), seed: 3 };
        let out = CornerSearch::default().explain(&req).expect("should reverse");
        assert!(verify(&r, &t, &cfg, &out));
        assert!(out.len() >= 2, "no single point reverses this test");
    }

    #[test]
    fn aborts_when_top_k_is_insufficient() {
        // Restrict candidates to a single unhelpful point: must abort.
        let (r, t, cfg) = paper_setup();
        let pref = PreferenceList::new(vec![3, 0, 1, 2]).unwrap(); // t4 first
        let cs = CornerSearch::new(CornerSearchConfig {
            top_k: 1,
            max_samples: 100,
            max_size_fraction: 1.0,
        });
        let req =
            ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: Some(&pref), seed: 1 };
        assert_eq!(cs.explain(&req), None, "t4 alone cannot reverse the test");
    }

    #[test]
    fn respects_sample_budget() {
        let (r, t, cfg) = paper_setup();
        let pref = PreferenceList::new(vec![3, 0, 1, 2]).unwrap();
        // Budget so small phase 1 cannot even finish.
        let cs = CornerSearch::new(CornerSearchConfig {
            top_k: 4,
            max_samples: 1,
            max_size_fraction: 1.0,
        });
        let req =
            ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: Some(&pref), seed: 1 };
        assert_eq!(cs.explain(&req), None);
    }

    #[test]
    fn single_outlier_found_in_phase_one() {
        // A test set that reverses by removing one extreme point.
        let r: Vec<f64> = (0..200).map(|i| f64::from(i % 20)).collect();
        let mut t: Vec<f64> = (0..40).map(|i| f64::from(i % 20)).collect();
        t.extend([100.0; 9]);
        let cfg = KsConfig::new(0.05).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        if base.outcome(&cfg).rejected {
            let pref = PreferenceList::from_scores_desc(&t.to_vec()).unwrap();
            let req = ExplainRequest {
                reference: &r,
                test: &t,
                cfg: &cfg,
                preference: Some(&pref),
                seed: 5,
            };
            if let Some(out) = CornerSearch::default().explain(&req) {
                assert!(verify(&r, &t, &cfg, &out));
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (r, t, cfg) = paper_setup();
        let pref = PreferenceList::identity(4);
        let req = ExplainRequest {
            reference: &r,
            test: &t,
            cfg: &cfg,
            preference: Some(&pref),
            seed: 42,
        };
        let a = CornerSearch::default().explain(&req);
        let b = CornerSearch::default().explain(&req);
        assert_eq!(a, b);
    }
}
