//! # moche-baselines
//!
//! The six baseline explainers the MOCHE paper compares against
//! (Section 6.1.2), plus the shared [`KsExplainer`] interface and a MOCHE
//! adapter so the experiment harness can benchmark everything uniformly:
//!
//! | Method | Module | Accepts preferences? | Time-series only? |
//! |---|---|---|---|
//! | GRD (greedy prefix) | [`greedy`] | yes | no |
//! | Extended-CornerSearch (CS) | [`corner_search`] | yes | no |
//! | Extended-GRACE (GRC) | [`grace`] | yes | no |
//! | Extended-D3 | [`d3`] | no | no |
//! | Extended-STOMP (STMP) | [`stomp`] | no | yes |
//! | Extended-Series2Graph (S2G) | [`series2graph`] | no | yes |
//!
//! Every baseline's output is verified against the same KS predicate as
//! MOCHE's; CS and GRC may legitimately *abort* (return `None`), which the
//! harness counts against their reverse factor (Table 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corner_search;
pub mod d3;
pub mod explainer;
pub mod grace;
pub mod greedy;
pub mod series2graph;
pub mod stomp;

pub use corner_search::{CornerSearch, CornerSearchConfig};
pub use d3::{DensityModel, D3};
pub use explainer::{ExplainRequest, KsExplainer, MocheExplainer};
pub use grace::{Grace, GraceConfig};
pub use greedy::{greedy_prefix, Greedy};
pub use series2graph::{S2gConfig, Series2GraphExplainer};
pub use stomp::{Stomp, StompConfig};
