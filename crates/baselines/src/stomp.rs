//! The Extended-STOMP baseline (Section 6.1.2), adapted from the STOMP
//! matrix-profile algorithm (Yeh et al. / Zhu et al.).
//!
//! For a failed sliding-window KS test, let `N` be the reference window and
//! `Q` the test window, both in time order. Extended-STOMP computes the
//! AB-join matrix profile of `Q` against `N` (the z-normalized distance of
//! every length-`q` subsequence of `Q` to its nearest neighbour in `N`),
//! sorts the subsequences by anomaly score (profile value) in decreasing
//! order, and greedily removes the points of the top-ranked subsequences
//! until the KS test passes.
//!
//! The paper sets `q = 5% |T|` after a sweep over `{5, 10, 20, 40}% |T|`.
//! Because the anomaly score is computed on *z-normalized* subsequences
//! (whose original distribution is destroyed), the selected points are
//! often irrelevant to the distribution change the KS test detected — that
//! is exactly the weakness the paper's Figure 2 exposes.

use crate::explainer::{ExplainRequest, KsExplainer};
use crate::greedy::greedy_prefix;
use moche_sigproc::matrix_profile::ab_join;

/// Configuration of Extended-STOMP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StompConfig {
    /// Subsequence length as a fraction of `|T|` (the paper's 5%).
    pub subsequence_fraction: f64,
    /// Lower bound on the subsequence length.
    pub min_subsequence: usize,
}

impl Default for StompConfig {
    fn default() -> Self {
        Self { subsequence_fraction: 0.05, min_subsequence: 2 }
    }
}

/// The Extended-STOMP explainer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stomp {
    /// Tunable parameters.
    pub config: StompConfig,
}

impl Stomp {
    /// Creates the baseline with an explicit configuration.
    pub fn new(config: StompConfig) -> Self {
        Self { config }
    }

    /// The point ordering induced by the subsequence ranking: walk
    /// subsequences from most to least anomalous, appending each
    /// subsequence's not-yet-listed points in time order.
    pub fn point_order(&self, reference: &[f64], test: &[f64]) -> Option<Vec<usize>> {
        let m = test.len();
        let q = ((m as f64 * self.config.subsequence_fraction).round() as usize)
            .max(self.config.min_subsequence);
        if q > m || q > reference.len() {
            return None; // windows too short for the configured q
        }
        let profile = ab_join(test, reference, q);
        let mut sub_order: Vec<usize> = (0..profile.len()).collect();
        // Index tie-break (as in `PreferenceList::from_scores_desc`):
        // subsequences with equal profile scores must rank
        // deterministically, or the derived point order — and with it the
        // baseline's selections — varies across platforms and sorts.
        sub_order.sort_by(|&a, &b| profile[b].total_cmp(&profile[a]).then_with(|| a.cmp(&b)));
        let mut listed = vec![false; m];
        let mut order = Vec::with_capacity(m);
        for &s in &sub_order {
            #[allow(clippy::needless_range_loop)] // span indices, not a slice walk
            for i in s..s + q {
                if !listed[i] {
                    listed[i] = true;
                    order.push(i);
                }
            }
        }
        // Points not covered by any subsequence (none, given q <= m) would
        // be appended here for safety.
        for (i, l) in listed.iter().enumerate() {
            if !l {
                order.push(i);
            }
        }
        Some(order)
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;

    #[test]
    fn tied_profile_scores_rank_by_time_order() {
        // Constant windows: every subsequence has the same distance to the
        // reference, so the profile is all ties. The index tie-break must
        // resolve them to time order, deterministically.
        let stomp = Stomp::default();
        let r = vec![1.0; 64];
        let t = vec![1.0; 32];
        let order = stomp.point_order(&r, &t).expect("windows are long enough");
        assert_eq!(order, (0..32).collect::<Vec<_>>(), "ties must resolve to time order");
        assert_eq!(stomp.point_order(&r, &t).unwrap(), order, "ranking must be repeatable");
    }
}

impl KsExplainer for Stomp {
    fn name(&self) -> &'static str {
        "STMP"
    }

    fn explain(&self, req: &ExplainRequest<'_>) -> Option<Vec<usize>> {
        let order = self.point_order(req.reference, req.test)?;
        greedy_prefix(req.reference, req.test, req.cfg, &order)
    }

    fn time_series_only(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moche_core::base_vector::BaseVector;
    use moche_core::cumulative::SubsetCounts;
    use moche_core::KsConfig;

    /// Reference: smooth sine. Test: same sine with a level-shifted patch,
    /// which both breaks the KS test and is shape-anomalous.
    fn drifted_windows() -> (Vec<f64>, Vec<f64>, KsConfig) {
        let base = |i: usize| (i as f64 * 0.2).sin() * 2.0;
        let r: Vec<f64> = (0..200).map(base).collect();
        let mut t: Vec<f64> = (200..400).map(base).collect();
        for x in &mut t[80..160] {
            *x += 6.0;
        }
        (r, t, KsConfig::new(0.05).unwrap())
    }

    #[test]
    fn point_order_prioritizes_shape_anomalies() {
        // z-normalization erases level shifts (that is the weakness the
        // paper exposes), so prioritization is only expected for *shape*
        // anomalies: inject an alternating patch instead.
        let base = |i: usize| (i as f64 * 0.2).sin() * 2.0;
        let r: Vec<f64> = (0..200).map(base).collect();
        let mut t: Vec<f64> = (200..400).map(base).collect();
        for (i, x) in t.iter_mut().enumerate().take(160).skip(80) {
            *x += if i % 2 == 0 { 6.0 } else { -6.0 };
        }
        let order = Stomp::default().point_order(&r, &t).unwrap();
        assert_eq!(order.len(), t.len());
        // Most of the first 80 listed points should fall inside the patch.
        let hits = order[..80].iter().filter(|&&i| (80..160).contains(&i)).count();
        assert!(hits > 50, "only {hits} of the first 80 points are in the patch");
    }

    #[test]
    fn level_shift_is_invisible_to_znormalized_profiles() {
        // Documents the paper's Figure 2 finding: a pure level shift leaves
        // the z-normalized shape unchanged, so STOMP does NOT rank the
        // shifted patch's interior highly.
        let (r, t, _) = drifted_windows();
        let order = Stomp::default().point_order(&r, &t).unwrap();
        let hits = order[..40].iter().filter(|&&i| (90..150).contains(&i)).count();
        assert!(hits < 30, "z-normalization should hide the patch interior, hits = {hits}");
    }

    #[test]
    fn explanation_reverses_the_test() {
        let (r, t, cfg) = drifted_windows();
        let base = BaseVector::build(&r, &t).unwrap();
        assert!(base.outcome(&cfg).rejected);
        let req = ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: None, seed: 0 };
        let out = Stomp::default().explain(&req).expect("STMP must reverse");
        let counts = SubsetCounts::from_test_indices(&base, &out);
        assert!(base.outcome_after_removal(counts.as_slice(), &cfg).passes());
    }

    #[test]
    fn point_order_is_a_permutation() {
        let (r, t, _) = drifted_windows();
        let mut order = Stomp::default().point_order(&r, &t).unwrap();
        order.sort_unstable();
        assert_eq!(order, (0..t.len()).collect::<Vec<_>>());
    }

    #[test]
    fn too_short_windows_abort() {
        let cfg = KsConfig::new(0.05).unwrap();
        let stomp = Stomp::new(StompConfig { subsequence_fraction: 0.5, min_subsequence: 10 });
        let req = ExplainRequest {
            reference: &[1.0, 2.0, 3.0],
            test: &[4.0, 5.0, 6.0],
            cfg: &cfg,
            preference: None,
            seed: 0,
        };
        assert_eq!(stomp.explain(&req), None);
    }

    #[test]
    fn is_time_series_only() {
        assert!(Stomp::default().time_series_only());
        assert!(!Stomp::default().uses_preference());
    }
}
