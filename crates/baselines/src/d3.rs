//! The Extended-D3 baseline (Section 6.1.2), adapted from Subramaniam et
//! al.'s D3 streaming outlier detector (VLDB 2006).
//!
//! Extended-D3 ranks test points by the density ratio `f_T(t) / f_R(t)`
//! (high density under the test distribution, low under the reference) and
//! greedily removes the top-ranked points until the KS test passes. For
//! continuous data the densities are Gaussian KDEs (as in D3); for discrete
//! data — the COVID-19 age groups — the paper substitutes the empirical
//! probability mass functions, which [`DensityModel::Auto`] selects
//! automatically.
//!
//! D3 cannot take user preferences, so its explanations are never
//! "comprehensible" in the paper's sense — it competes on size and RMSE
//! only.

use crate::explainer::{ExplainRequest, KsExplainer};
use crate::greedy::greedy_prefix;
use moche_core::PreferenceList;
use moche_sigproc::kde::{Epmf, GaussianKde};

/// How Extended-D3 estimates the two densities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DensityModel {
    /// Choose [`DensityModel::Discrete`] when every value is integral and
    /// the union has at most 50 distinct values, else
    /// [`DensityModel::Continuous`].
    #[default]
    Auto,
    /// Gaussian KDE with Silverman bandwidth.
    Continuous,
    /// Empirical probability mass functions.
    Discrete,
}

/// The Extended-D3 explainer.
#[derive(Debug, Clone, Copy, Default)]
pub struct D3 {
    /// Density estimation mode.
    pub model: DensityModel,
}

impl D3 {
    /// Density-ratio scores `f_T(t_i) / f_R(t_i)` for every test point.
    pub fn scores(&self, reference: &[f64], test: &[f64]) -> Vec<f64> {
        const FLOOR: f64 = 1e-12;
        let discrete = match self.model {
            DensityModel::Discrete => true,
            DensityModel::Continuous => false,
            DensityModel::Auto => {
                let mut distinct: Vec<u64> = Vec::new();
                let mut integral = true;
                for &v in reference.iter().chain(test) {
                    if (v - v.round()).abs() > 1e-9 {
                        integral = false;
                        break;
                    }
                    let bits = v.to_bits();
                    if !distinct.contains(&bits) {
                        distinct.push(bits);
                        if distinct.len() > 50 {
                            break;
                        }
                    }
                }
                integral && distinct.len() <= 50
            }
        };
        if discrete {
            let f_r = Epmf::fit(reference);
            let f_t = Epmf::fit(test);
            test.iter().map(|&v| f_t.mass(v) / f_r.mass(v).max(FLOOR)).collect()
        } else {
            let f_r = GaussianKde::fit(reference);
            let f_t = GaussianKde::fit(test);
            test.iter().map(|&v| f_t.density(v) / f_r.density(v).max(FLOOR)).collect()
        }
    }
}

impl KsExplainer for D3 {
    fn name(&self) -> &'static str {
        "D3"
    }

    fn explain(&self, req: &ExplainRequest<'_>) -> Option<Vec<usize>> {
        let scores = self.scores(req.reference, req.test);
        let order = PreferenceList::from_scores_desc(&scores).ok()?;
        greedy_prefix(req.reference, req.test, req.cfg, order.as_order())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moche_core::base_vector::BaseVector;
    use moche_core::cumulative::SubsetCounts;
    use moche_core::KsConfig;

    fn contaminated_instance() -> (Vec<f64>, Vec<f64>, KsConfig) {
        // Reference: tight cluster near 0. Test: same cluster plus a lump
        // near 8 that the density ratio should single out.
        let r: Vec<f64> = (0..120).map(|i| (i % 11) as f64 * 0.1).collect();
        let mut t: Vec<f64> = (0..60).map(|i| (i % 11) as f64 * 0.1).collect();
        t.extend((0..25).map(|i| 8.0 + (i % 5) as f64 * 0.05));
        (r, t, KsConfig::new(0.05).unwrap())
    }

    #[test]
    fn scores_rank_the_lump_highest() {
        let (r, t, _) = contaminated_instance();
        let scores = D3::default().scores(&r, &t);
        let mut order: Vec<usize> = (0..t.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)));
        // The top 25 ranked points should be exactly the lump (indices 60+).
        let top_lump = order[..25].iter().filter(|&&i| i >= 60).count();
        assert!(top_lump >= 23, "only {top_lump} of the top 25 are lump points");
    }

    #[test]
    fn explanation_reverses_the_test() {
        let (r, t, cfg) = contaminated_instance();
        let req = ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: None, seed: 0 };
        let out = D3::default().explain(&req).expect("D3 must reverse");
        let base = BaseVector::build(&r, &t).unwrap();
        assert!(base.outcome(&cfg).rejected, "instance must fail first");
        let counts = SubsetCounts::from_test_indices(&base, &out);
        assert!(base.outcome_after_removal(counts.as_slice(), &cfg).passes());
        // The lump is 25 points; D3 should not need drastically more.
        assert!(out.len() <= 40, "D3 selected {} points", out.len());
    }

    #[test]
    fn discrete_mode_uses_pmf() {
        // Integer-valued data with few levels: auto should behave like
        // Discrete and differ from Continuous only smoothly.
        let r: Vec<f64> = (0..100).map(|i| f64::from(i % 5)).collect();
        let t: Vec<f64> = (0..80).map(|i| f64::from(i % 3) + 2.0).collect();
        let auto = D3 { model: DensityModel::Auto }.scores(&r, &t);
        let disc = D3 { model: DensityModel::Discrete }.scores(&r, &t);
        assert_eq!(auto, disc);
        let cont = D3 { model: DensityModel::Continuous }.scores(&r, &t);
        assert_ne!(auto, cont);
    }

    #[test]
    fn auto_detects_continuous_data() {
        let r: Vec<f64> = (0..60).map(|i| i as f64 * 0.37).collect();
        let t: Vec<f64> = (0..60).map(|i| i as f64 * 0.41 + 0.1).collect();
        let auto = D3 { model: DensityModel::Auto }.scores(&r, &t);
        let cont = D3 { model: DensityModel::Continuous }.scores(&r, &t);
        assert_eq!(auto, cont);
    }

    #[test]
    fn unseen_reference_values_get_large_scores() {
        let r = vec![0.0; 50];
        let mut t = vec![0.0; 40];
        t.extend([5.0; 10]);
        let scores = D3 { model: DensityModel::Discrete }.scores(&r, &t);
        // Points at 5.0 (absent from R) must outrank points at 0.0.
        assert!(scores[45] > scores[0]);
    }

    #[test]
    fn ignores_preference_list() {
        let (r, t, cfg) = contaminated_instance();
        let pref = PreferenceList::reversed(t.len());
        let with = D3::default().explain(&ExplainRequest {
            reference: &r,
            test: &t,
            cfg: &cfg,
            preference: Some(&pref),
            seed: 0,
        });
        let without = D3::default().explain(&ExplainRequest {
            reference: &r,
            test: &t,
            cfg: &cfg,
            preference: None,
            seed: 0,
        });
        assert_eq!(with, without);
        assert!(!D3::default().uses_preference());
    }
}
