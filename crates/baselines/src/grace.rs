//! The Extended-GRACE baseline (Section 6.1.2), adapted from Le et al.'s
//! GRACE contrastive-sample explainer (KDD 2020).
//!
//! GRACE perturbs the most important `K` features of an input to change a
//! model's prediction. The paper extends it to failed KS tests by relaxing
//! the removal mask to a continuous vector `x ∈ [0, 1]^m` (a point `t_i` is
//! removed when `x_i` projects to 0) and minimizing the objective
//!
//! ```text
//! g(x) = sqrt( n (m - |S|) / (n + (m - |S|)) ) * D(R, T \ S)
//! ```
//!
//! which is the KS statistic rescaled so that `g(x) <= c_α` iff the test
//! passes. Since `g` is non-differentiable (piecewise constant in `x`), the
//! paper optimizes it with the zeroth-order scheme of Cheng et al. (ICLR
//! 2019): random sparse directions, finite-difference directional
//! derivatives, and a step-size update, restricted to the top-`K`
//! preference-ranked coordinates and capped at a fixed number of steps —
//! both caps make the method abort on hard instances, which is what drives
//! its reverse factor below 1 in Table 2.

use crate::explainer::{ExplainRequest, KsExplainer};
use moche_core::base_vector::BaseVector;
use moche_core::cumulative::SubsetCounts;
use moche_core::PreferenceList;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of Extended-GRACE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraceConfig {
    /// Number of top-ranked preference-list coordinates optimized (`K`).
    pub top_k: usize,
    /// Maximum optimization steps (`l`; the paper reports up to 10,000).
    pub max_steps: usize,
    /// Finite-difference smoothing radius `μ`.
    pub mu: f64,
    /// Step size `η`.
    pub eta: f64,
    /// Coordinates perturbed per random direction.
    pub direction_sparsity: usize,
}

impl Default for GraceConfig {
    fn default() -> Self {
        Self { top_k: 100, max_steps: 2_000, mu: 0.35, eta: 0.6, direction_sparsity: 8 }
    }
}

/// The Extended-GRACE explainer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Grace {
    /// Tunable parameters.
    pub config: GraceConfig,
}

impl Grace {
    /// Creates the baseline with an explicit configuration.
    pub fn new(config: GraceConfig) -> Self {
        Self { config }
    }
}

/// Evaluates `g(x)`: the rescaled KS statistic after removing the points
/// masked out by `x` (coordinates listed in `coords`; `x[i] < 0.5` removes
/// `coords[i]`). Returns `(g, removed_indices)`.
fn objective(base: &BaseVector, coords: &[usize], x: &[f64]) -> (f64, Vec<usize>) {
    let removed: Vec<usize> =
        coords.iter().zip(x).filter_map(|(&c, &xi)| (xi < 0.5).then_some(c)).collect();
    let m_rem = base.m() - removed.len();
    if m_rem == 0 {
        return (f64::INFINITY, removed);
    }
    let counts = SubsetCounts::from_test_indices(base, &removed);
    let d = base.statistic_after_removal(counts.as_slice());
    let n = base.n() as f64;
    let m_rem = m_rem as f64;
    let g = (n * m_rem / (n + m_rem)).sqrt() * d;
    (g, removed)
}

impl KsExplainer for Grace {
    fn name(&self) -> &'static str {
        "GRC"
    }

    fn explain(&self, req: &ExplainRequest<'_>) -> Option<Vec<usize>> {
        let fallback = PreferenceList::identity(req.test.len());
        let preference = req.preference.unwrap_or(&fallback);
        let base = BaseVector::build(req.reference, req.test).ok()?;
        if base.outcome(req.cfg).passes() {
            return Some(Vec::new());
        }
        let m = base.m();
        let k = self.config.top_k.min(m.saturating_sub(1));
        if k == 0 {
            return None;
        }
        let coords: Vec<usize> = preference.as_order()[..k].to_vec();
        let c_alpha = req.cfg.critical_value();
        let mut rng = StdRng::seed_from_u64(req.seed ^ 0x67AC_E000);

        // Start from "keep everything".
        let mut x = vec![1.0f64; k];
        let (mut g_cur, _) = objective(&base, &coords, &x);

        let mut x_try = vec![0.0f64; k];
        for _ in 0..self.config.max_steps {
            // Random sparse direction u with ±1 entries.
            let nnz = self.config.direction_sparsity.min(k);
            let mut dir: Vec<(usize, f64)> = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                let i = rng.random_range(0..k);
                let s = if rng.random::<bool>() { 1.0 } else { -1.0 };
                dir.push((i, s));
            }

            // Finite difference along u.
            x_try.copy_from_slice(&x);
            for &(i, s) in &dir {
                x_try[i] = (x_try[i] + self.config.mu * s).clamp(0.0, 1.0);
            }
            let (g_fwd, removed_fwd) = objective(&base, &coords, &x_try);
            if g_fwd <= c_alpha {
                return finish(removed_fwd, preference);
            }
            let delta = (g_fwd - g_cur) / self.config.mu;

            // Descent step: x <- x - eta * delta * u, accepted if it does
            // not increase the objective.
            x_try.copy_from_slice(&x);
            for &(i, s) in &dir {
                x_try[i] = (x_try[i] - self.config.eta * delta * s).clamp(0.0, 1.0);
            }
            let (g_new, removed_new) = objective(&base, &coords, &x_try);
            if g_new <= c_alpha {
                return finish(removed_new, preference);
            }
            if g_new <= g_cur {
                x.copy_from_slice(&x_try);
                g_cur = g_new;
            }
        }
        None
    }

    fn uses_preference(&self) -> bool {
        true
    }
}

fn finish(mut removed: Vec<usize>, preference: &PreferenceList) -> Option<Vec<usize>> {
    let ranks = preference.ranks();
    removed.sort_by_key(|&i| ranks[i]);
    Some(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moche_core::KsConfig;

    fn shifted_instance() -> (Vec<f64>, Vec<f64>, KsConfig) {
        // 60 reference points on 0..6, 40 test points shifted by +3: a
        // comfortably failing test with a clear fix (drop shifted points).
        let r: Vec<f64> = (0..60).map(|i| f64::from(i % 6)).collect();
        let t: Vec<f64> = (0..40).map(|i| f64::from(i % 6) + 3.0).collect();
        (r, t, KsConfig::new(0.05).unwrap())
    }

    fn verify(r: &[f64], t: &[f64], cfg: &KsConfig, subset: &[usize]) -> bool {
        let base = BaseVector::build(r, t).unwrap();
        let counts = SubsetCounts::from_test_indices(&base, subset);
        base.outcome_after_removal(counts.as_slice(), cfg).passes()
    }

    #[test]
    fn objective_matches_test_decision() {
        let (r, t, cfg) = shifted_instance();
        let base = BaseVector::build(&r, &t).unwrap();
        let coords: Vec<usize> = (0..t.len()).collect();
        // Empty removal: g > c_alpha because the test fails.
        let (g, removed) = objective(&base, &coords, &vec![1.0; t.len()]);
        assert!(removed.is_empty());
        assert!(g > cfg.critical_value());
        // g(x) = sqrt(nm/(n+m)) * D by construction.
        let expected = {
            let n = r.len() as f64;
            let m = t.len() as f64;
            (n * m / (n + m)).sqrt() * base.statistic()
        };
        assert!((g - expected).abs() < 1e-12);
    }

    #[test]
    fn reverses_a_soluble_instance() {
        let (r, t, cfg) = shifted_instance();
        let pref = PreferenceList::from_scores_desc(&t).unwrap(); // big values first
        let req =
            ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: Some(&pref), seed: 7 };
        let out = Grace::default().explain(&req);
        if let Some(subset) = out {
            assert!(verify(&r, &t, &cfg, &subset), "GRC returned a non-reversing subset");
            assert!(!subset.is_empty());
        }
        // (Abort is allowed — GRACE's reverse factor is below 1 — but the
        // returned subset, if any, must be sound.)
    }

    #[test]
    fn aborts_with_zero_steps() {
        let (r, t, cfg) = shifted_instance();
        let grc = Grace::new(GraceConfig { max_steps: 0, ..GraceConfig::default() });
        let req = ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: None, seed: 1 };
        assert_eq!(grc.explain(&req), None);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (r, t, cfg) = shifted_instance();
        let pref = PreferenceList::from_scores_desc(&t).unwrap();
        let req = ExplainRequest {
            reference: &r,
            test: &t,
            cfg: &cfg,
            preference: Some(&pref),
            seed: 11,
        };
        assert_eq!(Grace::default().explain(&req), Grace::default().explain(&req));
    }

    #[test]
    fn result_is_sorted_by_preference_rank() {
        let (r, t, cfg) = shifted_instance();
        let pref = PreferenceList::from_scores_desc(&t).unwrap();
        let ranks = pref.ranks();
        let req =
            ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: Some(&pref), seed: 3 };
        if let Some(out) = Grace::default().explain(&req) {
            for w in out.windows(2) {
                assert!(ranks[w[0]] < ranks[w[1]]);
            }
        }
    }
}
