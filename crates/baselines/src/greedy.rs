//! The GRD baseline (Section 6.1.2): greedily take the shortest prefix of
//! the preference list whose removal reverses the failed KS test.
//!
//! When the preference list comes from an outlier detector (as in the
//! paper's time-series experiments), GRD is "an extension of the outlier
//! detection method to interpret failed KS tests". The same prefix engine
//! is reused by Extended-D3, Extended-STOMP and Extended-Series2Graph,
//! which differ only in how they rank the points.

use crate::explainer::{ExplainRequest, KsExplainer};
use moche_core::base_vector::BaseVector;
use moche_core::cumulative::SubsetCounts;
use moche_core::{KsConfig, PreferenceList};

/// Runs the shared greedy-prefix engine: walk `order` (original test
/// indices, most preferred first), removing one point at a time, and return
/// the prefix at the first point where the KS test against `reference`
/// passes. Each step re-checks the test in `O(q)` via cumulative counts,
/// mirroring the baselines' "conduct the KS test after removing each data
/// point" cost model.
///
/// Returns `None` if the test never passes (possible only for
/// `alpha > 2/e^2`, or when `order` is shorter than the test set).
pub fn greedy_prefix(
    reference: &[f64],
    test: &[f64],
    cfg: &KsConfig,
    order: &[usize],
) -> Option<Vec<usize>> {
    let base = BaseVector::build(reference, test).ok()?;
    if base.outcome(cfg).passes() {
        return Some(Vec::new());
    }
    let mut counts = SubsetCounts::empty(base.q());
    let mut selected = Vec::new();
    for &orig in order {
        if selected.len() + 1 >= base.m() {
            break; // cannot remove the whole test set
        }
        counts.add(base.test_point_index(orig));
        selected.push(orig);
        if base.outcome_after_removal(counts.as_slice(), cfg).passes() {
            return Some(selected);
        }
    }
    None
}

/// The GRD baseline explainer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl KsExplainer for Greedy {
    fn name(&self) -> &'static str {
        "GRD"
    }

    fn explain(&self, req: &ExplainRequest<'_>) -> Option<Vec<usize>> {
        let fallback = PreferenceList::identity(req.test.len());
        let preference = req.preference.unwrap_or(&fallback);
        greedy_prefix(req.reference, req.test, req.cfg, preference.as_order())
    }

    fn uses_preference(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moche_core::Moche;

    fn paper_setup() -> (Vec<f64>, Vec<f64>, KsConfig) {
        (
            vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0],
            vec![13.0, 13.0, 12.0, 20.0],
            KsConfig::new(0.3).unwrap(),
        )
    }

    #[test]
    fn greedy_reverses_the_test() {
        let (r, t, cfg) = paper_setup();
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let req =
            ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: Some(&pref), seed: 0 };
        let out = Greedy.explain(&req).expect("greedy must reverse");
        // Verify reversal directly.
        let base = BaseVector::build(&r, &t).unwrap();
        let counts = SubsetCounts::from_test_indices(&base, &out);
        assert!(base.outcome_after_removal(counts.as_slice(), &cfg).passes());
    }

    #[test]
    fn greedy_is_a_prefix_of_the_preference() {
        let (r, t, cfg) = paper_setup();
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let req =
            ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: Some(&pref), seed: 0 };
        let out = Greedy.explain(&req).unwrap();
        assert_eq!(out, pref.as_order()[..out.len()].to_vec());
    }

    #[test]
    fn greedy_never_smaller_than_moche() {
        let (r, t, cfg) = paper_setup();
        let moche = Moche::with_config(cfg);
        for seed in 0..20u64 {
            let pref = PreferenceList::random(t.len(), seed);
            let req = ExplainRequest {
                reference: &r,
                test: &t,
                cfg: &cfg,
                preference: Some(&pref),
                seed,
            };
            let grd = Greedy.explain(&req).unwrap();
            let m = moche.explain(&r, &t, &pref).unwrap();
            assert!(
                grd.len() >= m.size(),
                "GRD found {} points, below the optimum {}",
                grd.len(),
                m.size()
            );
        }
    }

    #[test]
    fn already_passing_test_needs_nothing() {
        let cfg = KsConfig::new(0.05).unwrap();
        let r: Vec<f64> = (0..20).map(f64::from).collect();
        let out = greedy_prefix(&r, &r, &cfg, &(0..20).collect::<Vec<_>>()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn truncated_order_can_fail() {
        let (r, t, cfg) = paper_setup();
        // Only offering the single point t4 = 20 cannot reverse the test.
        assert_eq!(greedy_prefix(&r, &t, &cfg, &[3]), None);
    }
}
