//! The Extended-Series2Graph baseline (Section 6.1.2), adapted from Boniol
//! & Palpanas's Series2Graph subsequence anomaly detector (VLDB 2020).
//!
//! Extended-Series2Graph learns the shape graph of the reference window
//! (see [`moche_sigproc::series2graph`]), scores every point of the test
//! window by the unfamiliarity of the shape transitions covering it, and
//! greedily removes the most anomalous points until the KS test passes.
//! Like Extended-STOMP it judges *shapes*, not value distributions, so its
//! selections are often irrelevant to the KS failure (Figure 2).

use crate::explainer::{ExplainRequest, KsExplainer};
use crate::greedy::greedy_prefix;
use moche_core::PreferenceList;
use moche_sigproc::series2graph::{Series2Graph, Series2GraphConfig};

/// Configuration of Extended-Series2Graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct S2gConfig {
    /// Subsequence length as a fraction of `|T|` (the paper's 5%).
    pub subsequence_fraction: f64,
    /// Lower bound on the subsequence length.
    pub min_subsequence: usize,
    /// Number of angular graph nodes.
    pub nodes: usize,
    /// Smoothing window for the embedding.
    pub smoothing: usize,
}

impl Default for S2gConfig {
    fn default() -> Self {
        Self { subsequence_fraction: 0.05, min_subsequence: 4, nodes: 24, smoothing: 3 }
    }
}

/// The Extended-Series2Graph explainer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Series2GraphExplainer {
    /// Tunable parameters.
    pub config: S2gConfig,
}

impl Series2GraphExplainer {
    /// Creates the baseline with an explicit configuration.
    pub fn new(config: S2gConfig) -> Self {
        Self { config }
    }

    /// Per-point anomaly scores of the test window under the reference
    /// window's shape graph, or `None` when the windows are too short.
    pub fn scores(&self, reference: &[f64], test: &[f64]) -> Option<Vec<f64>> {
        let m = test.len();
        let q = ((m as f64 * self.config.subsequence_fraction).round() as usize)
            .max(self.config.min_subsequence);
        if q < 2 || reference.len() < 2 * q || test.len() < q {
            return None;
        }
        let cfg = Series2GraphConfig {
            subsequence_len: q,
            nodes: self.config.nodes,
            smoothing: self.config.smoothing,
        };
        let graph = Series2Graph::fit(reference, cfg);
        Some(graph.score_points(test))
    }
}

impl KsExplainer for Series2GraphExplainer {
    fn name(&self) -> &'static str {
        "S2G"
    }

    fn explain(&self, req: &ExplainRequest<'_>) -> Option<Vec<usize>> {
        let scores = self.scores(req.reference, req.test)?;
        let order = PreferenceList::from_scores_desc(&scores).ok()?;
        greedy_prefix(req.reference, req.test, req.cfg, order.as_order())
    }

    fn time_series_only(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moche_core::base_vector::BaseVector;
    use moche_core::cumulative::SubsetCounts;
    use moche_core::KsConfig;

    fn drifted_windows() -> (Vec<f64>, Vec<f64>, KsConfig) {
        let base = |i: usize| (i as f64 * 0.2).sin() * 2.0;
        let r: Vec<f64> = (0..300).map(base).collect();
        let mut t: Vec<f64> = (300..600).map(base).collect();
        for x in &mut t[120..220] {
            *x += 6.0;
        }
        (r, t, KsConfig::new(0.05).unwrap())
    }

    #[test]
    fn explanation_reverses_the_test() {
        let (r, t, cfg) = drifted_windows();
        let base = BaseVector::build(&r, &t).unwrap();
        assert!(base.outcome(&cfg).rejected);
        let req = ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: None, seed: 0 };
        let out = Series2GraphExplainer::default().explain(&req).expect("S2G must reverse");
        let counts = SubsetCounts::from_test_indices(&base, &out);
        assert!(base.outcome_after_removal(counts.as_slice(), &cfg).passes());
    }

    #[test]
    fn scores_cover_every_point() {
        let (r, t, _) = drifted_windows();
        let scores = Series2GraphExplainer::default().scores(&r, &t).unwrap();
        assert_eq!(scores.len(), t.len());
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn anomalous_patch_scores_higher_on_average() {
        let (r, t, _) = drifted_windows();
        let scores = Series2GraphExplainer::default().scores(&r, &t).unwrap();
        let patch: f64 = scores[120..220].iter().sum::<f64>() / 100.0;
        let rest: f64 = (scores[..120].iter().sum::<f64>() + scores[220..].iter().sum::<f64>())
            / (scores.len() - 100) as f64;
        assert!(patch > rest, "patch mean {patch} <= rest mean {rest}");
    }

    #[test]
    fn too_short_windows_abort() {
        let cfg = KsConfig::new(0.05).unwrap();
        let req = ExplainRequest {
            reference: &[1.0, 2.0, 3.0, 4.0],
            test: &[5.0, 6.0, 7.0, 8.0],
            cfg: &cfg,
            preference: None,
            seed: 0,
        };
        assert_eq!(Series2GraphExplainer::default().explain(&req), None);
    }

    #[test]
    fn is_time_series_only() {
        let s2g = Series2GraphExplainer::default();
        assert!(s2g.time_series_only());
        assert!(!s2g.uses_preference());
        assert_eq!(s2g.name(), "S2G");
    }
}
