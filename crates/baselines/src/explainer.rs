//! The common interface all explainers (MOCHE and the six baselines)
//! implement, so the experiment harness can treat them uniformly.

use moche_core::{KsConfig, Moche, PreferenceList};

/// One explanation request: a failed KS test plus optional context.
#[derive(Debug, Clone, Copy)]
pub struct ExplainRequest<'a> {
    /// The reference set `R`.
    pub reference: &'a [f64],
    /// The test set `T`. For time-series methods the slice order is the
    /// time order of the test window.
    pub test: &'a [f64],
    /// KS configuration (significance level).
    pub cfg: &'a KsConfig,
    /// The user preference list, for methods that accept one (MOCHE, GRD,
    /// CS, GRC). Methods that cannot take preferences ignore it.
    pub preference: Option<&'a PreferenceList>,
    /// Seed for randomized methods (CS, GRC).
    pub seed: u64,
}

/// A method that proposes counterfactual explanations on failed KS tests.
pub trait KsExplainer {
    /// Short method name as used in the paper's figures (`M`, `GRD`, `CS`,
    /// `GRC`, `D3`, `STMP`, `S2G`).
    fn name(&self) -> &'static str;

    /// Attempts to explain the failed test. Returns the selected original
    /// test indices, or `None` when the method aborts without reversing the
    /// test (counts against its reverse factor).
    fn explain(&self, req: &ExplainRequest<'_>) -> Option<Vec<usize>>;

    /// Whether the method consumes the user preference list.
    fn uses_preference(&self) -> bool {
        false
    }

    /// Whether the method only applies to time-series data (the paper's
    /// STMP and S2G "can only work on time series").
    fn time_series_only(&self) -> bool {
        false
    }
}

/// MOCHE wrapped as a [`KsExplainer`], so the harness can benchmark it next
/// to the baselines.
#[derive(Debug, Clone, Copy, Default)]
pub struct MocheExplainer {
    /// Use the `MOCHE_ns` ablation (no Phase-1 lower bound).
    pub no_lower_bound: bool,
}

impl KsExplainer for MocheExplainer {
    fn name(&self) -> &'static str {
        if self.no_lower_bound {
            "Mns"
        } else {
            "M"
        }
    }

    fn explain(&self, req: &ExplainRequest<'_>) -> Option<Vec<usize>> {
        let mut moche = Moche::with_config(*req.cfg);
        if self.no_lower_bound {
            moche = moche.size_search(moche_core::SizeSearchStrategy::NoLowerBound);
        }
        let fallback = PreferenceList::identity(req.test.len());
        let preference = req.preference.unwrap_or(&fallback);
        moche.explain(req.reference, req.test, preference).ok().map(|e| e.indices().to_vec())
    }

    fn uses_preference(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_setup() -> (Vec<f64>, Vec<f64>, KsConfig) {
        (
            vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0],
            vec![13.0, 13.0, 12.0, 20.0],
            KsConfig::new(0.3).unwrap(),
        )
    }

    #[test]
    fn moche_explainer_reproduces_example_6() {
        let (r, t, cfg) = paper_setup();
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let req =
            ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: Some(&pref), seed: 0 };
        let m = MocheExplainer::default();
        assert_eq!(m.name(), "M");
        assert!(m.uses_preference());
        assert_eq!(m.explain(&req), Some(vec![2, 1]));
    }

    #[test]
    fn ablation_name_and_agreement() {
        let (r, t, cfg) = paper_setup();
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let req =
            ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: Some(&pref), seed: 0 };
        let m = MocheExplainer { no_lower_bound: true };
        assert_eq!(m.name(), "Mns");
        assert_eq!(m.explain(&req), MocheExplainer::default().explain(&req));
    }

    #[test]
    fn missing_preference_falls_back_to_identity() {
        let (r, t, cfg) = paper_setup();
        let req = ExplainRequest { reference: &r, test: &t, cfg: &cfg, preference: None, seed: 0 };
        let out = MocheExplainer::default().explain(&req).unwrap();
        assert_eq!(out.len(), 2);
    }
}
