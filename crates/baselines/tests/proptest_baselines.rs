//! Property-based tests over all baselines: every produced explanation
//! must actually reverse the failed test, contain no duplicates, stay in
//! range, and never beat MOCHE's optimum.

use moche_baselines::{
    CornerSearch, CornerSearchConfig, ExplainRequest, Grace, GraceConfig, Greedy, KsExplainer,
    MocheExplainer, Series2GraphExplainer, Stomp, D3,
};
use moche_core::base_vector::BaseVector;
use moche_core::brute_force::removal_reverses;
use moche_core::{KsConfig, PreferenceList};
use proptest::prelude::*;

/// Shifted integer-grid instances that usually fail the KS test.
fn failing_instance() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        proptest::collection::vec(0i32..10, 20..60),
        proptest::collection::vec(0i32..10, 12..40),
        3i32..8,
    )
        .prop_map(|(r, t, shift)| {
            (
                r.into_iter().map(f64::from).collect(),
                t.into_iter().map(|v| f64::from(v + shift)).collect(),
            )
        })
}

fn roster() -> Vec<Box<dyn KsExplainer>> {
    vec![
        Box::new(MocheExplainer::default()),
        Box::new(Greedy),
        Box::new(D3::default()),
        Box::new(Stomp::default()),
        Box::new(Series2GraphExplainer::default()),
        Box::new(CornerSearch::new(CornerSearchConfig {
            max_samples: 500,
            ..CornerSearchConfig::default()
        })),
        Box::new(Grace::new(GraceConfig { max_steps: 120, ..GraceConfig::default() })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_global_rejects: 4096,
        ..ProptestConfig::default()
    })]

    #[test]
    fn all_outputs_are_sound((r, t) in failing_instance(), seed in 0u64..500) {
        let cfg = KsConfig::new(0.05).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);
        let pref = PreferenceList::random(t.len(), seed);
        let req = ExplainRequest {
            reference: &r,
            test: &t,
            cfg: &cfg,
            preference: Some(&pref),
            seed,
        };
        for method in roster() {
            if let Some(indices) = method.explain(&req) {
                // In range, no duplicates.
                let mut sorted = indices.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), indices.len(), "{} duplicated", method.name());
                prop_assert!(
                    indices.iter().all(|&i| i < t.len()),
                    "{} out of range",
                    method.name()
                );
                // Sound: removal reverses the test.
                prop_assert!(
                    removal_reverses(&base, &cfg, &indices),
                    "{} returned a non-reversing set",
                    method.name()
                );
            }
        }
    }

    #[test]
    fn moche_is_the_lower_envelope((r, t) in failing_instance(), seed in 0u64..500) {
        let cfg = KsConfig::new(0.05).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);
        let pref = PreferenceList::random(t.len(), seed);
        let req = ExplainRequest {
            reference: &r,
            test: &t,
            cfg: &cfg,
            preference: Some(&pref),
            seed,
        };
        let k = MocheExplainer::default()
            .explain(&req)
            .expect("MOCHE always reverses in the guaranteed regime")
            .len();
        for method in roster() {
            if let Some(indices) = method.explain(&req) {
                prop_assert!(
                    indices.len() >= k,
                    "{} found {} < optimum {}",
                    method.name(),
                    indices.len(),
                    k
                );
            }
        }
    }

    #[test]
    fn greedy_prefix_is_a_preference_prefix((r, t) in failing_instance(), seed in 0u64..500) {
        let cfg = KsConfig::new(0.05).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);
        let pref = PreferenceList::random(t.len(), seed);
        let req = ExplainRequest {
            reference: &r,
            test: &t,
            cfg: &cfg,
            preference: Some(&pref),
            seed,
        };
        let out = Greedy.explain(&req).expect("GRD reverses");
        prop_assert_eq!(&out[..], &pref.as_order()[..out.len()]);
        // Minimality of the *prefix*: one point shorter must not reverse.
        if out.len() > 1 {
            prop_assert!(!removal_reverses(&base, &cfg, &out[..out.len() - 1]));
        }
    }

    #[test]
    fn d3_is_preference_independent((r, t) in failing_instance(), s1 in 0u64..100, s2 in 100u64..200) {
        let cfg = KsConfig::new(0.05).unwrap();
        let base = BaseVector::build(&r, &t).unwrap();
        prop_assume!(base.outcome(&cfg).rejected);
        let p1 = PreferenceList::random(t.len(), s1);
        let p2 = PreferenceList::random(t.len(), s2);
        let mk = |p: &PreferenceList, seed| {
            D3::default().explain(&ExplainRequest {
                reference: &r,
                test: &t,
                cfg: &cfg,
                preference: Some(p),
                seed,
            })
        };
        prop_assert_eq!(mk(&p1, s1), mk(&p2, s2));
    }
}
