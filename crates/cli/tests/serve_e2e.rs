//! End-to-end soak of the `moche serve` daemon: the real binary, a real
//! TCP socket, a real `kill -9`, a checkpoint resume — and an
//! uninterrupted in-process reference fleet to prove **zero lost
//! alarms**.
//!
//! The harness is the CI `fleet-soak` lane:
//!
//! 1. start the daemon with per-shard checkpointing, push the first part
//!    of a deterministic multi-series script over the binary protocol;
//! 2. `SIGKILL` it mid-stream — no flush, no goodbye;
//! 3. restart with `--resume`, ask each series for its durable offset
//!    (`SERIES` doubles as a write barrier), replay the script from
//!    exactly there, and finish the load;
//! 4. compare per-series alarm counts against a reference fleet that ran
//!    the same script with no crash, and require a clean shutdown
//!    health line.
//!
//! Everything the run produces — both daemon logs, the checkpoint files,
//! and a machine-readable stats summary — lands in `target/fleet-soak/`
//! for CI to upload as artifacts.

use moche_cli::protocol::{self, op, JsonObject};
use moche_stream::{FleetConfig, MonitorConfig, MonitorFleet};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// Series in the scripted load.
const SERIES_N: u64 = 12;
/// Observations per series over the whole script.
const LEN: usize = 240;
/// Observations per series delivered before the `kill -9`.
const CUT: usize = 150;
/// `--window` for the daemon and the reference fleet.
const WINDOW: usize = 8;
/// `--alpha` for both.
const ALPHA: f64 = 0.05;

/// The deterministic script: a small repeating pattern per series, with a
/// large mean shift at the halfway point (before the kill) and a second
/// one near the end (after the resume) — so alarm parity is checked on
/// both sides of the crash.
fn value(id: u64, i: usize) -> f64 {
    let base = ((i as u64 * 13 + id * 7) % 11) as f64 * 0.5;
    if i >= 200 {
        base + 90.0
    } else if i >= LEN / 2 {
        base + 40.0
    } else {
        base
    }
}

/// `target/fleet-soak/`, derived from the test binary's own location so
/// it works under any `CARGO_TARGET_DIR`.
fn soak_dir() -> PathBuf {
    Path::new(env!("CARGO_BIN_EXE_moche"))
        .parent()
        .and_then(Path::parent)
        .expect("binary lives under target/<profile>/")
        .join("fleet-soak")
}

struct Daemon {
    child: Child,
    addr: String,
    pump: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Spawns the real `moche serve`, tees its stdout to `log_path`, and
    /// blocks until the startup line reveals the bound address.
    fn spawn(checkpoint_dir: &Path, resume: bool, log_path: &Path, faults: Option<&str>) -> Self {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_moche"));
        cmd.args(["serve", "--listen", "127.0.0.1:0", "--window"])
            .arg(WINDOW.to_string())
            .args(["--alpha"])
            .arg(ALPHA.to_string())
            .args(["--workers", "2", "--checkpoint-every", "16"])
            .arg("--checkpoint-dir")
            .arg(checkpoint_dir);
        if resume {
            cmd.arg("--resume");
        }
        match faults {
            Some(spec) => {
                cmd.env("MOCHE_FAULTS", spec);
            }
            None => {
                cmd.env_remove("MOCHE_FAULTS");
            }
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn moche serve");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut lines = BufReader::new(stdout).lines();
        let mut log = std::fs::File::create(log_path).expect("create daemon log");
        let mut addr = None;
        for line in lines.by_ref() {
            let line = line.expect("read daemon stdout");
            writeln!(log, "{line}").expect("write daemon log");
            if let Some(rest) = line.strip_prefix("moche serve: listening on ") {
                addr = Some(rest.trim().to_string());
                break;
            }
        }
        let addr = addr.expect("daemon printed its listen address before closing stdout");
        // Keep draining stdout so the daemon's log writes never block on a
        // full pipe; the log file doubles as the CI artifact.
        let pump = std::thread::spawn(move || {
            for line in lines.map_while(Result::ok) {
                let _ = writeln!(log, "{line}");
            }
            let _ = log.flush();
        });
        Daemon { child, addr, pump: Some(pump) }
    }

    /// `kill -9`: the whole point — no signal handler gets to run.
    fn kill_dash_nine(&mut self) {
        self.child.kill().expect("SIGKILL the daemon");
        let status = self.child.wait().expect("reap the daemon");
        assert!(!status.success(), "SIGKILL must not look like a clean exit");
        self.join_pump();
    }

    fn wait_clean_exit(&mut self) {
        let status = self.child.wait().expect("reap the daemon");
        assert!(status.success(), "clean shutdown must exit 0, got {status}");
        self.join_pump();
    }

    fn join_pump(&mut self) {
        if let Some(pump) = self.pump.take() {
            pump.join().expect("stdout pump");
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.join_pump();
    }
}

fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat).unwrap_or_else(|| panic!("no {key:?} in {json}")) + pat.len();
    json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("u64 field")
}

fn json_bool(json: &str, key: &str) -> bool {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat).unwrap_or_else(|| panic!("no {key:?} in {json}")) + pat.len();
    json[at..].starts_with("true")
}

/// Sends a `SERIES` query and decodes the reply. Because queries ride the
/// same per-shard ring as observations, the answer is also proof that
/// every earlier observation for this series on this connection landed.
fn query_series(conn: &mut TcpStream, id: u64) -> (bool, u64, u64) {
    conn.write_all(&protocol::encode_series(id)).expect("send SERIES");
    let (opcode, payload) = protocol::read_reply(conn).expect("SERIES reply");
    assert_eq!(opcode, op::SERIES | op::REPLY);
    let json = String::from_utf8(payload).expect("JSON reply");
    if json_bool(&json, "found") {
        (true, json_u64(&json, "pushes"), json_u64(&json, "alarms"))
    } else {
        (false, 0, 0)
    }
}

fn query(conn: &mut TcpStream, opcode: u8) -> String {
    conn.write_all(&protocol::encode_op(opcode)).expect("send op");
    let (reply, payload) = protocol::read_reply(conn).expect("op reply");
    assert_eq!(reply, opcode | op::REPLY);
    String::from_utf8(payload).expect("JSON reply")
}

#[test]
fn kill_dash_nine_soak_loses_no_alarms() {
    let dir = soak_dir();
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create soak dir");
    let ckpt = dir.join("checkpoints");

    // The uninterrupted truth: the same script through an in-process
    // fleet with the daemon's exact monitor configuration.
    let mut monitor = MonitorConfig::new(WINDOW, ALPHA);
    monitor.explain_on_drift = true;
    let mut reference = MonitorFleet::new(FleetConfig::new(2, monitor)).expect("reference config");
    for i in 0..LEN {
        for id in 0..SERIES_N {
            reference.push(id, value(id, i)).expect("finite");
        }
    }
    let expected: Vec<u64> =
        (0..SERIES_N).map(|id| reference.series_stats(id).expect("tracked").alarms).collect();
    assert!(expected.iter().sum::<u64>() > 0, "the script must actually provoke alarms");

    // Phase 1: load the daemon, then kill it without ceremony. Under the
    // fault-injection feature the first accept also fails (injected) to
    // prove the MOCHE_FAULTS env wiring end to end.
    let faults =
        if cfg!(feature = "fault-injection") { Some("serve.accept=error:0:1") } else { None };
    let phase1_log = dir.join("daemon-phase1.log");
    let mut daemon = Daemon::spawn(&ckpt, false, &phase1_log, faults);
    {
        let mut conn = TcpStream::connect(&daemon.addr).expect("connect");
        for i in 0..CUT {
            for id in 0..SERIES_N {
                conn.write_all(&protocol::encode_obs(id, value(id, i))).expect("send OBS");
            }
        }
        for id in 0..SERIES_N {
            let (found, pushes, _) = query_series(&mut conn, id);
            assert!(found && pushes == CUT as u64, "series {id}: barrier saw {pushes}/{CUT}");
        }
    }
    let shard_files = std::fs::read_dir(&ckpt)
        .expect("checkpoint dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
        .count();
    assert!(shard_files > 0, "at least one shard checkpointed before the kill");
    daemon.kill_dash_nine();

    // Phase 2: resume, replay each series from its durable offset, and
    // settle the books.
    let phase2_log = dir.join("daemon-phase2.log");
    let mut daemon = Daemon::spawn(&ckpt, true, &phase2_log, None);
    let status;
    {
        let mut conn = TcpStream::connect(&daemon.addr).expect("reconnect");
        for id in 0..SERIES_N {
            let (found, pushes, _) = query_series(&mut conn, id);
            let from = if found { pushes as usize } else { 0 };
            assert!(from <= CUT, "series {id}: resumed past what was ever sent ({from})");
            for i in from..LEN {
                conn.write_all(&protocol::encode_obs(id, value(id, i))).expect("send OBS");
            }
        }
        let mut summary = JsonObject::new();
        for id in 0..SERIES_N {
            let (found, pushes, alarms) = query_series(&mut conn, id);
            assert!(found, "series {id} must survive the crash");
            assert_eq!(pushes, LEN as u64, "series {id}: observations lost or duplicated");
            assert_eq!(
                alarms, expected[id as usize],
                "series {id}: alarms lost (or invented) across kill -9 + resume"
            );
            summary = summary.field_u64(&format!("series_{id}_alarms"), alarms);
        }
        status = query(&mut conn, op::STATUS);
        assert_eq!(json_u64(&status, "worker_panics"), 0);
        assert_eq!(json_u64(&status, "skipped_observations"), 0);
        let total: u64 = expected.iter().sum();
        let stats = summary
            .field_u64("total_alarms", total)
            .field_u64("series", SERIES_N)
            .field_u64("script_len", LEN as u64)
            .field_u64("killed_after", CUT as u64)
            .build();
        std::fs::write(dir.join("soak-stats.json"), format!("{stats}\n{status}\n"))
            .expect("write stats artifact");
        let shutdown = query(&mut conn, op::SHUTDOWN);
        assert!(json_bool(&shutdown, "clean"), "shutdown status must be clean: {shutdown}");
    }
    daemon.wait_clean_exit();

    let log = std::fs::read_to_string(&phase2_log).expect("phase-2 log");
    assert!(
        log.contains("health: 0 worker panic(s), 0 skipped observation(s)"),
        "resumed run must end healthy:\n{log}"
    );
    assert!(!log.contains("[DEGRADED]"), "resumed run must not be degraded:\n{log}");
    if cfg!(feature = "fault-injection") {
        let log1 = std::fs::read_to_string(&phase1_log).expect("phase-1 log");
        assert!(
            log1.contains("ACCEPT failed (injected): retrying"),
            "MOCHE_FAULTS wiring must reach the accept seam:\n{log1}"
        );
    }
}
