//! End-to-end soak of the `moche serve` daemon: the real binary, a real
//! TCP socket, a real `kill -9`, a checkpoint resume — and an
//! uninterrupted in-process reference fleet to prove **zero lost
//! alarms**.
//!
//! The harness is the CI `fleet-soak` lane:
//!
//! 1. start the daemon with per-shard checkpointing, push the first part
//!    of a deterministic multi-series script over the binary protocol;
//! 2. `SIGKILL` it mid-stream — no flush, no goodbye;
//! 3. restart with `--resume`, ask each series for its durable offset
//!    (`SERIES` doubles as a write barrier), replay the script from
//!    exactly there, and finish the load;
//! 4. compare per-series alarm counts against a reference fleet that ran
//!    the same script with no crash, and require a clean shutdown
//!    health line.
//!
//! Everything the run produces — both daemon logs, the checkpoint files,
//! and a machine-readable stats summary — lands in `target/fleet-soak/`
//! for CI to upload as artifacts.

mod harness;

use harness::{artifact_dir, json_bool, json_u64, query, query_series, Daemon};
use moche_cli::protocol::{self, op, JsonObject};
use moche_stream::{FleetConfig, MonitorConfig, MonitorFleet};
use std::io::Write;
use std::net::TcpStream;
use std::path::Path;

/// Series in the scripted load.
const SERIES_N: u64 = 12;
/// Observations per series over the whole script.
const LEN: usize = 240;
/// Observations per series delivered before the `kill -9`.
const CUT: usize = 150;
/// `--window` for the daemon and the reference fleet.
const WINDOW: usize = 8;

/// The deterministic script: a small repeating pattern per series, with a
/// large mean shift at the halfway point (before the kill) and a second
/// one near the end (after the resume) — so alarm parity is checked on
/// both sides of the crash.
fn value(id: u64, i: usize) -> f64 {
    let base = ((i as u64 * 13 + id * 7) % 11) as f64 * 0.5;
    if i >= 200 {
        base + 90.0
    } else if i >= LEN / 2 {
        base + 40.0
    } else {
        base
    }
}

/// Spawns the soak daemon with this suite's fixed monitor configuration.
fn spawn_daemon(ckpt: &Path, resume: bool, log_path: &Path, faults: Option<&str>) -> Daemon {
    let window = WINDOW.to_string();
    let ckpt = ckpt.to_str().expect("utf-8 checkpoint path");
    let mut args = vec![
        "--window",
        window.as_str(),
        "--alpha",
        "0.05",
        "--workers",
        "2",
        "--checkpoint-every",
        "16",
        "--checkpoint-dir",
        ckpt,
    ];
    if resume {
        args.push("--resume");
    }
    Daemon::spawn(log_path, &args, faults)
}

#[test]
fn kill_dash_nine_soak_loses_no_alarms() {
    let dir = artifact_dir("fleet-soak");
    let ckpt = dir.join("checkpoints");

    // The uninterrupted truth: the same script through an in-process
    // fleet with the daemon's exact monitor configuration.
    let mut monitor = MonitorConfig::new(WINDOW, 0.05);
    monitor.explain_on_drift = true;
    let mut reference = MonitorFleet::new(FleetConfig::new(2, monitor)).expect("reference config");
    for i in 0..LEN {
        for id in 0..SERIES_N {
            reference.push(id, value(id, i)).expect("finite");
        }
    }
    let expected: Vec<u64> =
        (0..SERIES_N).map(|id| reference.series_stats(id).expect("tracked").alarms).collect();
    assert!(expected.iter().sum::<u64>() > 0, "the script must actually provoke alarms");

    // Phase 1: load the daemon, then kill it without ceremony. Under the
    // fault-injection feature the first accept also fails (injected) to
    // prove the MOCHE_FAULTS env wiring end to end.
    let faults =
        if cfg!(feature = "fault-injection") { Some("serve.accept=error:0:1") } else { None };
    let phase1_log = dir.join("daemon-phase1.log");
    let mut daemon = spawn_daemon(&ckpt, false, &phase1_log, faults);
    {
        let mut conn = TcpStream::connect(&daemon.addr).expect("connect");
        for i in 0..CUT {
            for id in 0..SERIES_N {
                conn.write_all(&protocol::encode_obs(id, value(id, i))).expect("send OBS");
            }
        }
        for id in 0..SERIES_N {
            let (found, pushes, _) = query_series(&mut conn, id);
            assert!(found && pushes == CUT as u64, "series {id}: barrier saw {pushes}/{CUT}");
        }
    }
    let shard_files = std::fs::read_dir(&ckpt)
        .expect("checkpoint dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
        .count();
    assert!(shard_files > 0, "at least one shard checkpointed before the kill");
    daemon.kill_dash_nine();

    // Phase 2: resume, replay each series from its durable offset, and
    // settle the books.
    let phase2_log = dir.join("daemon-phase2.log");
    let mut daemon = spawn_daemon(&ckpt, true, &phase2_log, None);
    let status;
    {
        let mut conn = TcpStream::connect(&daemon.addr).expect("reconnect");
        for id in 0..SERIES_N {
            let (found, pushes, _) = query_series(&mut conn, id);
            let from = if found { pushes as usize } else { 0 };
            assert!(from <= CUT, "series {id}: resumed past what was ever sent ({from})");
            for i in from..LEN {
                conn.write_all(&protocol::encode_obs(id, value(id, i))).expect("send OBS");
            }
        }
        let mut summary = JsonObject::new();
        for id in 0..SERIES_N {
            let (found, pushes, alarms) = query_series(&mut conn, id);
            assert!(found, "series {id} must survive the crash");
            assert_eq!(pushes, LEN as u64, "series {id}: observations lost or duplicated");
            assert_eq!(
                alarms, expected[id as usize],
                "series {id}: alarms lost (or invented) across kill -9 + resume"
            );
            summary = summary.field_u64(&format!("series_{id}_alarms"), alarms);
        }
        status = query(&mut conn, op::STATUS);
        assert_eq!(json_u64(&status, "worker_panics"), 0);
        assert_eq!(json_u64(&status, "skipped_observations"), 0);
        let total: u64 = expected.iter().sum();
        let stats = summary
            .field_u64("total_alarms", total)
            .field_u64("series", SERIES_N)
            .field_u64("script_len", LEN as u64)
            .field_u64("killed_after", CUT as u64)
            .build();
        std::fs::write(dir.join("soak-stats.json"), format!("{stats}\n{status}\n"))
            .expect("write stats artifact");
        let shutdown = query(&mut conn, op::SHUTDOWN);
        assert!(json_bool(&shutdown, "clean"), "shutdown status must be clean: {shutdown}");
    }
    daemon.wait_clean_exit();

    let log = std::fs::read_to_string(&phase2_log).expect("phase-2 log");
    assert!(
        log.contains("health: 0 worker panic(s), 0 skipped observation(s)"),
        "resumed run must end healthy:\n{log}"
    );
    assert!(!log.contains("[DEGRADED]"), "resumed run must not be degraded:\n{log}");
    if cfg!(feature = "fault-injection") {
        let log1 = std::fs::read_to_string(&phase1_log).expect("phase-1 log");
        assert!(
            log1.contains("ACCEPT failed (injected): retrying"),
            "MOCHE_FAULTS wiring must reach the accept seam:\n{log1}"
        );
    }
}
