//! End-to-end tests of the `moche` binary: real process spawns over real
//! files in a temporary directory.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_moche"))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("moche-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn write(&self, name: &str, content: &str) -> PathBuf {
        let path = self.0.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn numbers(values: impl IntoIterator<Item = f64>) -> String {
    values.into_iter().map(|v| format!("{v}\n")).collect()
}

fn shifted_files(dir: &TempDir) -> (PathBuf, PathBuf) {
    let r = dir.write("ref.txt", &numbers((0..80).map(|i| f64::from(i % 8))));
    let t = dir.write("test.txt", &numbers((0..40).map(|i| f64::from(i % 8) + 4.0)));
    (r, t)
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("explain"));
}

#[test]
fn test_subcommand_detects_failure() {
    let dir = TempDir::new("test");
    let (r, t) = shifted_files(&dir);
    let out = bin().args(["test", r.to_str().unwrap(), t.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("FAILED"), "{stdout}");
}

#[test]
fn explain_csv_output_parses_back() {
    let dir = TempDir::new("explain");
    let (r, t) = shifted_files(&dir);
    let out = bin()
        .args([
            "explain",
            r.to_str().unwrap(),
            t.to_str().unwrap(),
            "--preference",
            "value-desc",
            "--format",
            "csv",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let mut lines = stdout.lines();
    assert_eq!(lines.next(), Some("index,value"));
    let mut count = 0;
    for line in lines {
        let (idx, val) = line.split_once(',').expect("csv row");
        let idx: usize = idx.parse().unwrap();
        let val: f64 = val.parse().unwrap();
        assert!(idx < 40);
        assert!(val.is_finite());
        count += 1;
    }
    assert!(count >= 1);
}

#[test]
fn size_subcommand_reports_k() {
    let dir = TempDir::new("size");
    let (r, t) = shifted_files(&dir);
    let out = bin().args(["size", r.to_str().unwrap(), t.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("explanation size k ="), "{stdout}");
}

#[test]
fn monitor_detects_level_shift() {
    let dir = TempDir::new("monitor");
    let mut series: Vec<f64> = (0..200).map(|i| f64::from(i % 7)).collect();
    series.extend((0..200).map(|i| f64::from(i % 7) + 30.0));
    let path = dir.write("series.txt", &numbers(series));
    let out = bin().args(["monitor", path.to_str().unwrap(), "--window", "50"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("DRIFT"), "{stdout}");
}

#[test]
fn monitor_with_non_finite_observations_exits_nonzero_without_panicking() {
    // `nan` and `inf` parse as valid f64: a corrupt data file used to trip
    // the monitor's finiteness assert and abort the process. It must now
    // report the offending indices, keep monitoring, and exit 1.
    let dir = TempDir::new("monitor-nan");
    let mut series: Vec<f64> = (0..200).map(|i| f64::from(i % 7)).collect();
    series.extend((0..200).map(|i| f64::from(i % 7) + 30.0));
    let mut content = numbers(series);
    content.push_str("nan\ninf\n-inf\n");
    let path = dir.write("series.txt", &content);
    let out = bin().args(["monitor", path.to_str().unwrap(), "--window", "50"]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}\nstderr: {stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(stdout.contains("t = 400: skipped non-finite observation"), "{stdout}");
    assert!(stdout.contains("3 non-finite observation(s) skipped"), "{stdout}");
    assert!(stdout.contains("DRIFT"), "the level shift must still be detected: {stdout}");
}

fn windows_file(dir: &TempDir) -> (PathBuf, PathBuf) {
    let r = dir.write("ref.txt", &numbers((0..80).map(|i| f64::from(i % 8))));
    let content: String = (0..5)
        .map(|w| {
            (0..40)
                .map(|i| (f64::from((i + w) % 8) + 4.0).to_string())
                .collect::<Vec<_>>()
                .join(",")
                + "\n"
        })
        .collect();
    let windows = dir.write("wins.csv", &content);
    (r, windows)
}

#[test]
fn batch_stream_matches_eager_batch() {
    let dir = TempDir::new("batch-stream");
    let (r, w) = windows_file(&dir);
    let run = |extra: &[&str]| {
        let mut args = vec!["batch", r.to_str().unwrap(), w.to_str().unwrap(), "--format", "csv"];
        args.extend_from_slice(extra);
        let out = bin().args(&args).output().unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).unwrap()
    };
    let eager = run(&[]);
    let streamed = run(&["--stream"]);
    let rows =
        |s: &str| s.lines().filter(|l| !l.starts_with('#')).map(String::from).collect::<Vec<_>>();
    assert_eq!(rows(&eager), rows(&streamed));
    assert!(eager.lines().any(|l| l.starts_with("# threads: ")), "{eager}");
}

#[test]
fn batch_size_only_reports_sizes() {
    let dir = TempDir::new("batch-size-only");
    let (r, w) = windows_file(&dir);
    let out = bin()
        .args(["batch", r.to_str().unwrap(), w.to_str().unwrap(), "--stream", "--size-only"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("window 0: k = "), "{stdout}");
    assert!(stdout.contains("sized"), "{stdout}");
}

#[test]
fn monitor_size_only_reports_sizes() {
    let dir = TempDir::new("monitor-size-only");
    let mut series: Vec<f64> = (0..200).map(|i| f64::from(i % 7)).collect();
    series.extend((0..200).map(|i| f64::from(i % 7) + 30.0));
    let path = dir.write("series.txt", &numbers(series));
    let out = bin()
        .args(["monitor", path.to_str().unwrap(), "--window", "50", "--size-only"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("DRIFT"), "{stdout}");
    assert!(stdout.contains("size: k = "), "{stdout}");
}

/// A windows file where every window errors (NaN parses as a float, then
/// fails input validation): the run must exit nonzero, for both the eager
/// and the streaming path.
#[test]
fn batch_with_only_erroring_windows_exits_nonzero() {
    let dir = TempDir::new("batch-all-error");
    let r = dir.write("ref.txt", &numbers((0..80).map(|i| f64::from(i % 8))));
    let w = dir.write("wins.csv", "NaN,1,2,3,4\nNaN,5,6,7,8\n");
    for extra in [&[][..], &["--stream"][..]] {
        let mut args = vec!["batch", r.to_str().unwrap(), w.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = bin().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "extra = {extra:?}");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("error:"), "per-window errors stay visible: {stdout}");
    }
}

/// One healthy window among erroring ones keeps the run successful — the
/// nonzero exit is reserved for runs that explained nothing at all.
#[test]
fn batch_with_some_explained_windows_exits_zero() {
    let dir = TempDir::new("batch-mixed-error");
    let r = dir.write("ref.txt", &numbers((0..80).map(|i| f64::from(i % 8))));
    let good: String =
        (0..40).map(|i| (f64::from(i % 8) + 4.0).to_string()).collect::<Vec<_>>().join(",");
    let w = dir.write("wins.csv", &format!("NaN,1,2,3,4\n{good}\n"));
    for extra in [&[][..], &["--stream"][..]] {
        let mut args = vec!["batch", r.to_str().unwrap(), w.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = bin().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(0), "extra = {extra:?}");
    }
}

#[test]
fn missing_file_exits_nonzero_with_message() {
    let out = bin().args(["test", "/nonexistent/r.txt", "/nonexistent/t.txt"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn bad_usage_exits_with_code_2() {
    let out = bin().args(["explain", "only-one-file"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("try 'moche help'"));
}

#[test]
fn passing_test_explain_reports_nothing_to_do() {
    let dir = TempDir::new("pass");
    let r = dir.write("r.txt", &numbers((0..50).map(|i| f64::from(i % 5))));
    let out = bin().args(["explain", r.to_str().unwrap(), r.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("already passes"), "{stderr}");
}

#[test]
fn comments_and_score_columns_are_accepted() {
    let dir = TempDir::new("scores");
    let r = dir.write("r.txt", &numbers((0..80).map(|i| f64::from(i % 8))));
    let t_content: String = (0..40)
        .map(|i| format!("{} , {}\n", f64::from(i % 8) + 4.0, 40 - i))
        .chain(std::iter::once("# trailing comment\n".to_string()))
        .collect();
    let t = dir.write("t.txt", &t_content);
    let out = bin()
        .args([
            "explain",
            r.to_str().unwrap(),
            t.to_str().unwrap(),
            "--preference",
            "scores",
            "--format",
            "csv",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Highest score = earliest index, so index 0 should appear first.
    assert!(stdout.lines().nth(1).unwrap().starts_with("0,"), "{stdout}");
}

#[test]
fn monitor_checkpoint_resume_round_trip_matches_full_run() {
    let dir = TempDir::new("checkpoint");
    let mut series: Vec<f64> = (0..200).map(|i| f64::from(i % 7)).collect();
    series.extend((0..200).map(|i| f64::from(i % 7) + 30.0));
    let cut = 230;
    let full = dir.write("full.txt", &numbers(series.clone()));
    let head = dir.write("head.txt", &numbers(series[..cut].iter().copied()));
    let tail = dir.write("tail.txt", &numbers(series[cut..].iter().copied()));
    let snap = dir.0.join("state.snap");

    let full_out =
        bin().args(["monitor", full.to_str().unwrap(), "--window", "50"]).output().unwrap();
    assert!(full_out.status.success());
    let full_stdout = String::from_utf8(full_out.stdout).unwrap();

    let head_out = bin()
        .args([
            "monitor",
            head.to_str().unwrap(),
            "--window",
            "50",
            "--checkpoint",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(head_out.status.success());
    let head_stdout = String::from_utf8(head_out.stdout).unwrap();
    assert!(head_stdout.contains("checkpoint(s) written"), "{head_stdout}");
    assert!(snap.exists(), "the checkpoint file must exist after the run");

    let tail_out = bin()
        .args(["monitor", tail.to_str().unwrap(), "--resume", snap.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(tail_out.status.success(), "stderr: {}", String::from_utf8_lossy(&tail_out.stderr));
    let tail_stdout = String::from_utf8(tail_out.stdout).unwrap();
    assert!(tail_stdout.contains("resumed from"), "{tail_stdout}");

    // The resumed run's alarms (minus the per-invocation `t = N` positions)
    // must be exactly the uninterrupted run's alarms after the cut.
    let alarms = |s: &str| {
        s.lines()
            .filter(|l| l.contains("DRIFT"))
            .map(|l| l.split_once(": ").unwrap().1.to_string())
            .collect::<Vec<_>>()
    };
    let head_plain =
        bin().args(["monitor", head.to_str().unwrap(), "--window", "50"]).output().unwrap();
    let pre_cut = alarms(&String::from_utf8(head_plain.stdout).unwrap()).len();
    assert_eq!(
        alarms(&tail_stdout),
        alarms(&full_stdout)[pre_cut..],
        "resume must replay the uninterrupted run's remaining alarms"
    );
}

#[test]
fn monitor_resume_failures_exit_with_code_3() {
    let dir = TempDir::new("resume-fail");
    let series = dir.write("series.txt", &numbers((0..100).map(|i| f64::from(i % 7))));

    // Missing snapshot file.
    let missing = dir.0.join("nope.snap");
    let out = bin()
        .args(["monitor", series.to_str().unwrap(), "--resume", missing.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("snapshot"));

    // Corrupt (truncated) snapshot file.
    let snap = dir.0.join("state.snap");
    let write = bin()
        .args([
            "monitor",
            series.to_str().unwrap(),
            "--window",
            "20",
            "--checkpoint",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(write.status.success());
    let bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &bytes[..bytes.len() - 5]).unwrap();
    let out = bin()
        .args(["monitor", series.to_str().unwrap(), "--resume", snap.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn monitor_checkpoint_usage_errors_exit_with_code_2() {
    let dir = TempDir::new("checkpoint-usage");
    let series = dir.write("series.txt", &numbers((0..50).map(f64::from)));
    // --checkpoint-every without --checkpoint is rejected at parse time.
    let out = bin()
        .args(["monitor", series.to_str().unwrap(), "--window", "20", "--checkpoint-every", "10"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint"));
}

#[test]
fn batch_reports_health_line() {
    let dir = TempDir::new("health");
    let (r, w) = windows_file(&dir);
    let out = bin().args(["batch", r.to_str().unwrap(), w.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("health: 0 worker panic(s)"), "{stdout}");
    let csv = bin()
        .args(["batch", r.to_str().unwrap(), w.to_str().unwrap(), "--format", "csv", "--stream"])
        .output()
        .unwrap();
    let csv_stdout = String::from_utf8(csv.stdout).unwrap();
    assert!(csv_stdout.lines().any(|l| l.starts_with("# health:")), "{csv_stdout}");
}

/// A 2-D reference file plus a windows file of two failing windows (a
/// shifted cluster) and one passing window (the reference's own points).
fn point_files(dir: &TempDir) -> (PathBuf, PathBuf) {
    let point_lines: String = (0..80).map(|i| format!("{} {}\n", i % 9, i % 7)).collect();
    let r = dir.write("ref2d.txt", &point_lines);
    let failing: String = (0..80)
        .map(|i| {
            if i < 40 {
                format!("{} {}", i % 9, i % 7)
            } else if i < 65 {
                format!("{} 60", i - 40 + 60)
            } else {
                String::new()
            }
        })
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join(" ");
    let passing: String =
        (0..80).map(|i| format!("{} {}", i % 9, i % 7)).collect::<Vec<_>>().join(" ");
    let w = dir.write("windows2d.txt", &format!("{failing}\n{passing}\n{failing}\n"));
    (r, w)
}

#[test]
fn batch2d_stream_matches_eager_batch2d() {
    let dir = TempDir::new("batch2d");
    let (r, w) = point_files(&dir);
    let mut outputs = Vec::new();
    for extra in [&[][..], &["--stream"][..]] {
        let mut args = vec!["batch2d", r.to_str().unwrap(), w.to_str().unwrap(), "--format", "csv"];
        args.extend_from_slice(extra);
        let out = bin().args(&args).output().unwrap();
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.starts_with("window,index"), "{stdout}");
        assert!(stdout.lines().any(|l| l.starts_with("# health:")), "{stdout}");
        outputs.push(
            stdout.lines().filter(|l| !l.starts_with('#')).map(String::from).collect::<Vec<_>>(),
        );
    }
    assert_eq!(outputs[0], outputs[1], "streamed rows must match the eager run");
    // Windows 0 and 2 are identical; both must select the same offsets,
    // and the passing window 1 contributes no rows.
    assert!(outputs[0].iter().skip(1).all(|l| !l.starts_with("1,")));
    let rows = |w: &str| {
        outputs[0].iter().filter(|l| l.starts_with(w)).map(|l| &l[2..]).collect::<Vec<_>>()
    };
    assert_eq!(rows("0,"), rows("2,"));
    assert!(!rows("0,").is_empty());
}

#[test]
fn batch2d_text_reports_summary_and_health() {
    let dir = TempDir::new("batch2d-text");
    let (r, w) = point_files(&dir);
    let out = bin().args(["batch2d", r.to_str().unwrap(), w.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("window 0: k = "), "{stdout}");
    assert!(stdout.contains("window 1: passes"), "{stdout}");
    assert!(stdout.contains("2 explained, 1 passing"), "{stdout}");
    assert!(stdout.contains("health: 0 worker panic(s)"), "{stdout}");
}

#[test]
fn batch2d_usage_and_parse_errors_have_distinct_exit_codes() {
    let dir = TempDir::new("batch2d-errors");
    let (r, w) = point_files(&dir);
    // A non-identity preference is rejected at parse time (exit 2).
    let out = bin()
        .args(["batch2d", r.to_str().unwrap(), w.to_str().unwrap(), "--preference", "sr"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("identity"));
    // An odd coordinate count is a located parse error (exit 1).
    let odd = dir.write("odd.txt", "1 2 3\n");
    let out = bin().args(["batch2d", r.to_str().unwrap(), odd.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains(":1"), "location in stderr");
}
