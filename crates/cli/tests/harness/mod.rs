//! Shared daemon harness for the `moche serve` end-to-end suites
//! (`serve_e2e`, `serve_chaos`): spawn the real binary, tee its stdout to
//! an artifact log, talk the binary protocol, and reap it — cleanly or
//! not, depending on what the test is trying to prove.

#![allow(dead_code)] // each test binary uses its own subset

use moche_cli::protocol::{self, op};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// `target/<name>/`, derived from the test binary's own location so it
/// works under any `CARGO_TARGET_DIR`. Wiped and re-created.
pub fn artifact_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_BIN_EXE_moche"))
        .parent()
        .and_then(Path::parent)
        .expect("binary lives under target/<profile>/")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

pub struct Daemon {
    pub child: Child,
    pub addr: String,
    pump: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Spawns the real `moche serve --listen 127.0.0.1:0` plus
    /// `extra_args`, tees its stdout to `log_path`, and blocks until the
    /// startup line reveals the bound address. `faults` sets (or clears)
    /// the `MOCHE_FAULTS` failpoint spec for the child.
    pub fn spawn(log_path: &Path, extra_args: &[&str], faults: Option<&str>) -> Self {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_moche"));
        cmd.args(["serve", "--listen", "127.0.0.1:0"]).args(extra_args);
        match faults {
            Some(spec) => {
                cmd.env("MOCHE_FAULTS", spec);
            }
            None => {
                cmd.env_remove("MOCHE_FAULTS");
            }
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn moche serve");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut lines = BufReader::new(stdout).lines();
        let mut log = std::fs::File::create(log_path).expect("create daemon log");
        let mut addr = None;
        for line in lines.by_ref() {
            let line = line.expect("read daemon stdout");
            writeln!(log, "{line}").expect("write daemon log");
            if let Some(rest) = line.strip_prefix("moche serve: listening on ") {
                addr = Some(rest.trim().to_string());
                break;
            }
        }
        let addr = addr.expect("daemon printed its listen address before closing stdout");
        // Keep draining stdout so the daemon's log writes never block on a
        // full pipe; the log file doubles as the CI artifact.
        let pump = std::thread::spawn(move || {
            for line in lines.map_while(Result::ok) {
                let _ = writeln!(log, "{line}");
            }
            let _ = log.flush();
        });
        Daemon { child, addr, pump: Some(pump) }
    }

    /// `kill -9`: no signal handler gets to run.
    pub fn kill_dash_nine(&mut self) {
        self.child.kill().expect("SIGKILL the daemon");
        let status = self.child.wait().expect("reap the daemon");
        assert!(!status.success(), "SIGKILL must not look like a clean exit");
        self.join_pump();
    }

    /// Sends a named signal (`"TERM"`, `"INT"`) — the graceful-drain
    /// entry points, unlike [`kill_dash_nine`](Self::kill_dash_nine).
    #[cfg(unix)]
    pub fn signal(&self, sig: &str) {
        let status = Command::new("kill")
            .arg(format!("-{sig}"))
            .arg(self.child.id().to_string())
            .status()
            .expect("run kill");
        assert!(status.success(), "kill -{sig} must be delivered");
    }

    pub fn wait_clean_exit(&mut self) {
        let status = self.child.wait().expect("reap the daemon");
        assert!(status.success(), "clean shutdown must exit 0, got {status}");
        self.join_pump();
    }

    fn join_pump(&mut self) {
        if let Some(pump) = self.pump.take() {
            pump.join().expect("stdout pump");
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.join_pump();
    }
}

pub fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat).unwrap_or_else(|| panic!("no {key:?} in {json}")) + pat.len();
    json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("u64 field")
}

pub fn json_bool(json: &str, key: &str) -> bool {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat).unwrap_or_else(|| panic!("no {key:?} in {json}")) + pat.len();
    json[at..].starts_with("true")
}

/// Sends a `SERIES` query and decodes the reply. Because queries ride the
/// same per-shard ring as observations, the answer is also proof that
/// every earlier observation for this series on this connection landed.
pub fn query_series(conn: &mut TcpStream, id: u64) -> (bool, u64, u64) {
    conn.write_all(&protocol::encode_series(id)).expect("send SERIES");
    let (opcode, payload) = protocol::read_reply(conn).expect("SERIES reply");
    assert_eq!(opcode, op::SERIES | op::REPLY);
    let json = String::from_utf8(payload).expect("JSON reply");
    if json_bool(&json, "found") {
        (true, json_u64(&json, "pushes"), json_u64(&json, "alarms"))
    } else {
        (false, 0, 0)
    }
}

/// Sends a payload-free request (`STATUS` / `SHUTDOWN`) and returns the
/// reply body.
pub fn query(conn: &mut TcpStream, opcode: u8) -> String {
    conn.write_all(&protocol::encode_op(opcode)).expect("send op");
    let (reply, payload) = protocol::read_reply(conn).expect("op reply");
    assert_eq!(reply, opcode | op::REPLY);
    String::from_utf8(payload).expect("JSON reply")
}
