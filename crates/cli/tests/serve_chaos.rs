//! Client-chaos suite for the `moche serve` connection supervisor: the
//! real binary, real sockets, deliberately hostile clients. Each test
//! drives one defense end to end and asserts the daemon's counters,
//! structured replies, and log lines — while well-behaved traffic keeps
//! flowing.
//!
//! Covered chaos, one test per row (the CI `serve-chaos` lane):
//!
//! | Client behaviour | Defense under test |
//! |---|---|
//! | garbage frames, corrupt length prefix | error budget, fatal framing close |
//! | mid-frame stall (slow loris) | `--io-timeout` eviction, others unaffected |
//! | never reads replies | write-stall eviction (`serve.write` failpoint) |
//! | injected read fault | read-stall eviction (`serve.read` failpoint) |
//! | connection flood | `--max-connections` admission + `BUSY` replies |
//! | SIGTERM mid-load | graceful drain, final checkpoints, alarm parity |
//!
//! Daemon logs and final STATUS bodies land under `target/serve-chaos/`
//! for CI to upload as artifacts.

mod harness;

use harness::{artifact_dir, json_bool, json_u64, query, query_series, Daemon};
use moche_cli::protocol::{self, op};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Polls STATUS over fresh connections until `key` reaches `at_least`
/// (eviction counters land just after the evicted socket closes).
fn wait_for_counter(addr: &str, key: &str, at_least: u64) -> String {
    let mut body = String::new();
    for _ in 0..250 {
        let mut conn = TcpStream::connect(addr).expect("connect for status");
        body = query(&mut conn, op::STATUS);
        if json_u64(&body, key) >= at_least {
            return body;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("STATUS {key} never reached {at_least}: {body}");
}

fn request_shutdown(addr: &str) {
    let mut conn = TcpStream::connect(addr).expect("connect for shutdown");
    let body = query(&mut conn, op::SHUTDOWN);
    assert!(json_bool(&body, "clean"), "shutdown status must be clean: {body}");
}

/// An `OBS` frame whose body is 3 bytes instead of 16 — decodable frame,
/// undecodable request.
fn short_obs_frame() -> Vec<u8> {
    let mut frame = Vec::new();
    frame.extend_from_slice(&4u32.to_le_bytes());
    frame.extend_from_slice(&[op::OBS, 1, 2, 3]);
    frame
}

/// Garbage frames burn the error budget one structured `ERR` reply at a
/// time; the frame past the budget closes the connection, and a corrupt
/// length prefix closes it immediately — both counted.
#[test]
fn garbage_frames_spend_the_error_budget() {
    let dir = artifact_dir("serve-chaos/error-budget");
    let mut daemon =
        Daemon::spawn(&dir.join("daemon.log"), &["--window", "8", "--workers", "2"], None);

    // Default --error-budget is 3: three countdown replies, then fatal.
    let mut conn = TcpStream::connect(&daemon.addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for remaining in [2u64, 1, 0] {
        conn.write_all(&short_obs_frame()).expect("send garbage");
        let (opcode, body) = protocol::read_reply(&mut conn).expect("ERR reply");
        assert_eq!(opcode, op::ERR | op::REPLY);
        let body = String::from_utf8(body).unwrap();
        assert!(body.contains("OBS payload must be 16 bytes, got 3"), "{body}");
        assert_eq!(json_u64(&body, "budget_remaining"), remaining, "{body}");
    }
    conn.write_all(&short_obs_frame()).expect("send the frame past the budget");
    let (opcode, body) = protocol::read_reply(&mut conn).expect("final fatal reply");
    assert_eq!(opcode, op::ERR | op::REPLY);
    assert!(json_bool(&String::from_utf8(body).unwrap(), "fatal"));
    let mut one = [0u8; 1];
    assert_eq!(conn.read(&mut one).unwrap(), 0, "budget-spent connection must close");

    // A corrupt length prefix loses framing: immediate fatal reply+close.
    let mut conn = TcpStream::connect(&daemon.addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    conn.write_all(&u32::MAX.to_le_bytes()).expect("send corrupt prefix");
    let (opcode, body) = protocol::read_reply(&mut conn).expect("fatal reply");
    assert_eq!(opcode, op::ERR | op::REPLY);
    let body = String::from_utf8(body).unwrap();
    assert!(body.contains("framing lost"), "{body}");
    assert!(json_bool(&body, "fatal"), "{body}");
    assert_eq!(conn.read(&mut one).unwrap(), 0, "unframeable connection must close");

    let status = wait_for_counter(&daemon.addr, "error_budget_closes", 2);
    assert_eq!(json_u64(&status, "malformed_frames"), 5, "{status}");
    std::fs::write(dir.join("final-status.json"), &status).expect("write status artifact");
    request_shutdown(&daemon.addr);
    daemon.wait_clean_exit();
    let log = std::fs::read_to_string(dir.join("daemon.log")).expect("daemon log");
    assert!(log.contains("reason=error-budget malformed=4"), "budget close logged:\n{log}");
    assert!(log.contains("reason=protocol-fatal"), "framing close logged:\n{log}");
}

/// A slow-loris client stalls mid-frame and is evicted on `--io-timeout`,
/// while a second connection keeps ingesting through the whole episode.
#[test]
fn mid_frame_stall_is_evicted_while_others_ingest() {
    let dir = artifact_dir("serve-chaos/mid-frame-stall");
    let mut daemon = Daemon::spawn(
        &dir.join("daemon.log"),
        &["--window", "8", "--workers", "2", "--io-timeout", "1"],
        None,
    );

    let mut good = TcpStream::connect(&daemon.addr).expect("connect good client");
    for i in 0..250u64 {
        good.write_all(&protocol::encode_obs(7, (i % 5) as f64)).expect("send OBS");
    }
    let (found, pushes, _) = query_series(&mut good, 7);
    assert!(found && pushes == 250, "barrier before the stall: {pushes}");

    // The staller: 10 of an OBS frame's 21 bytes, then silence.
    let mut stall = TcpStream::connect(&daemon.addr).expect("connect staller");
    stall.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stall.write_all(&protocol::encode_obs(8, 1.0)[..10]).expect("send partial frame");
    let (opcode, body) = protocol::read_reply(&mut stall).expect("eviction notice");
    assert_eq!(opcode, op::ERR | op::REPLY);
    let body = String::from_utf8(body).unwrap();
    assert!(body.contains("mid-frame stall"), "{body}");
    let mut one = [0u8; 1];
    assert_eq!(stall.read(&mut one).unwrap(), 0, "stalled connection must close");

    // The good client never noticed: it keeps pushing and every
    // observation lands.
    for i in 0..250u64 {
        good.write_all(&protocol::encode_obs(7, (i % 5) as f64)).expect("send OBS");
    }
    let (found, pushes, _) = query_series(&mut good, 7);
    assert!(found && pushes == 500, "barrier after the stall: {pushes}");
    let status = wait_for_counter(&daemon.addr, "stalled_reads", 1);
    assert_eq!(json_u64(&status, "accepted"), 500, "{status}");
    std::fs::write(dir.join("final-status.json"), &status).expect("write status artifact");
    drop(good);
    request_shutdown(&daemon.addr);
    daemon.wait_clean_exit();
    let log = std::fs::read_to_string(dir.join("daemon.log")).expect("daemon log");
    assert!(log.contains("reason=read-stall"), "stall eviction logged:\n{log}");
}

/// A client that never drains its replies stalls the daemon's write side;
/// the `serve.write` failpoint makes that deterministic (no waiting on a
/// real TCP send buffer to fill), and the eviction is counted the same.
#[cfg(feature = "fault-injection")]
#[test]
fn unread_reply_backpressure_evicts() {
    let dir = artifact_dir("serve-chaos/write-stall");
    let mut daemon = Daemon::spawn(
        &dir.join("daemon.log"),
        &["--window", "8", "--workers", "2"],
        Some("serve.write=error:0:1"),
    );

    // The first reply write in the process fails as if the peer's buffer
    // never drained: no reply arrives, the connection just closes.
    let mut conn = TcpStream::connect(&daemon.addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    conn.write_all(&protocol::encode_op(op::STATUS)).expect("send STATUS");
    let mut buf = [0u8; 16];
    assert_eq!(conn.read(&mut buf).unwrap(), 0, "write-stalled connection must close unreplied");

    let status = wait_for_counter(&daemon.addr, "stalled_writes", 1);
    std::fs::write(dir.join("final-status.json"), &status).expect("write status artifact");
    request_shutdown(&daemon.addr);
    daemon.wait_clean_exit();
    let log = std::fs::read_to_string(dir.join("daemon.log")).expect("daemon log");
    assert!(log.contains("reason=write-stall"), "write stall logged:\n{log}");
}

/// The `serve.read` failpoint injects a deterministic mid-frame stall at
/// the supervised read loop: the connection is evicted with a structured
/// notice and counted as a stalled read without waiting out a real
/// deadline — the same seam the slow-loris test above exercises with a
/// wall clock.
#[cfg(feature = "fault-injection")]
#[test]
fn injected_read_stall_evicts_and_counts() {
    let dir = artifact_dir("serve-chaos/read-stall-injected");
    let mut daemon = Daemon::spawn(
        &dir.join("daemon.log"),
        &["--window", "8", "--workers", "2"],
        Some("serve.read=error:0:1"),
    );

    // The armed failpoint fires on this connection's first read tick: the
    // eviction notice arrives although the client sent nothing at all.
    let mut conn = TcpStream::connect(&daemon.addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let (opcode, body) = protocol::read_reply(&mut conn).expect("eviction notice");
    assert_eq!(opcode, op::ERR | op::REPLY);
    let body = String::from_utf8(body).unwrap();
    assert!(body.contains("injected read stall"), "{body}");
    let mut one = [0u8; 1];
    assert_eq!(conn.read(&mut one).unwrap(), 0, "read-stalled connection must close");

    let status = wait_for_counter(&daemon.addr, "stalled_reads", 1);
    std::fs::write(dir.join("final-status.json"), &status).expect("write status artifact");
    request_shutdown(&daemon.addr);
    daemon.wait_clean_exit();
    let log = std::fs::read_to_string(dir.join("daemon.log")).expect("daemon log");
    assert!(log.contains("reason=read-stall"), "injected stall logged:\n{log}");
}

/// A connection flood past `--max-connections`: every excess connection
/// gets one structured `BUSY` reply and a close, while the admitted
/// connections keep working.
#[test]
fn connection_flood_gets_busy_replies() {
    let dir = artifact_dir("serve-chaos/flood");
    let mut daemon = Daemon::spawn(
        &dir.join("daemon.log"),
        &["--window", "8", "--workers", "2", "--max-connections", "2"],
        None,
    );

    let mut first = TcpStream::connect(&daemon.addr).expect("connect");
    query(&mut first, op::STATUS); // admission barrier
    let mut second = TcpStream::connect(&daemon.addr).expect("connect");
    query(&mut second, op::STATUS);

    for flood in 0..4 {
        let mut extra = TcpStream::connect(&daemon.addr).expect("flood connect");
        extra.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let (opcode, body) = protocol::read_reply(&mut extra).expect("BUSY reply");
        assert_eq!(opcode, op::BUSY | op::REPLY, "flood connection {flood}");
        let body = String::from_utf8(body).unwrap();
        assert!(json_bool(&body, "busy"), "{body}");
        assert_eq!(json_u64(&body, "retry_after_ms"), 1000, "{body}");
        assert_eq!(json_u64(&body, "max_connections"), 2, "{body}");
        let mut one = [0u8; 1];
        assert_eq!(extra.read(&mut one).unwrap(), 0, "rejected connection must close");
    }

    // The admitted connections were never disturbed.
    first.write_all(&protocol::encode_obs(1, 1.0)).expect("send OBS");
    let (found, pushes, _) = query_series(&mut first, 1);
    assert!(found && pushes == 1);
    let status = query(&mut second, op::STATUS);
    assert_eq!(json_u64(&status, "busy_rejections"), 4, "{status}");
    assert_eq!(json_u64(&status, "active_connections"), 2, "{status}");
    std::fs::write(dir.join("final-status.json"), &status).expect("write status artifact");
    drop(second);
    let body = query(&mut first, op::SHUTDOWN);
    assert!(json_bool(&body, "clean"), "{body}");
    drop(first);
    daemon.wait_clean_exit();
    let log = std::fs::read_to_string(dir.join("daemon.log")).expect("daemon log");
    assert!(log.contains("BUSY rejecting connection"), "rejections logged:\n{log}");
    assert!(log.contains("4 busy rejection(s)"), "health line counts them:\n{log}");
}

/// SIGTERM mid-load: the daemon drains gracefully — open connections get
/// a drain notice, workers write final checkpoints, the process exits 0 —
/// and a resumed fleet finishes the script with per-series alarms
/// identical to an uninterrupted reference fleet.
#[cfg(unix)]
#[test]
fn sigterm_drains_with_alarm_parity() {
    use moche_stream::{FleetConfig, MonitorConfig, MonitorFleet};

    const SERIES_N: u64 = 8;
    const LEN: usize = 160;
    const CUT: usize = 100;
    const WINDOW: usize = 8;
    /// A level pattern with shifts on both sides of the signal.
    fn value(id: u64, i: usize) -> f64 {
        let base = ((i as u64 * 13 + id * 7) % 11) as f64 * 0.5;
        if i >= 140 {
            base + 90.0
        } else if i >= LEN / 2 {
            base + 40.0
        } else {
            base
        }
    }

    let dir = artifact_dir("serve-chaos/sigterm-drain");
    let ckpt = dir.join("checkpoints");
    let ckpt_s = ckpt.to_str().expect("utf-8 path").to_string();

    // The uninterrupted truth.
    let mut monitor = MonitorConfig::new(WINDOW, 0.05);
    monitor.explain_on_drift = true;
    let mut reference = MonitorFleet::new(FleetConfig::new(2, monitor)).expect("reference");
    for i in 0..LEN {
        for id in 0..SERIES_N {
            reference.push(id, value(id, i)).expect("finite");
        }
    }
    let expected: Vec<u64> =
        (0..SERIES_N).map(|id| reference.series_stats(id).expect("tracked").alarms).collect();
    assert!(expected.iter().sum::<u64>() > 0, "the script must provoke alarms");

    // Phase 1: load, then SIGTERM with a witness connection still open.
    // Under fault injection the drain seam also fires once, proving the
    // test exercises the real drain path.
    let faults =
        if cfg!(feature = "fault-injection") { Some("serve.drain=error:0:1") } else { None };
    let args = [
        "--window",
        "8",
        "--workers",
        "2",
        "--checkpoint-every",
        "16",
        "--checkpoint-dir",
        ckpt_s.as_str(),
    ];
    let mut daemon = Daemon::spawn(&dir.join("daemon-phase1.log"), &args, faults);
    {
        let mut conn = TcpStream::connect(&daemon.addr).expect("connect");
        for i in 0..CUT {
            for id in 0..SERIES_N {
                conn.write_all(&protocol::encode_obs(id, value(id, i))).expect("send OBS");
            }
        }
        for id in 0..SERIES_N {
            let (found, pushes, _) = query_series(&mut conn, id);
            assert!(found && pushes == CUT as u64, "series {id}: barrier saw {pushes}/{CUT}");
        }
    }
    // The witness rides out the signal on a series the parity check
    // ignores; it must receive the structured drain notice, not a RST.
    let mut witness = TcpStream::connect(&daemon.addr).expect("connect witness");
    witness.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    witness.write_all(&protocol::encode_obs(999, 1.0)).expect("send OBS");
    let (found, pushes, _) = query_series(&mut witness, 999);
    assert!(found && pushes == 1, "witness barrier");

    daemon.signal("TERM");
    let (opcode, body) = protocol::read_reply(&mut witness).expect("drain notice");
    assert_eq!(opcode, op::ERR | op::REPLY);
    let body = String::from_utf8(body).unwrap();
    assert!(body.contains("daemon draining"), "{body}");
    let mut one = [0u8; 1];
    assert_eq!(witness.read(&mut one).unwrap(), 0, "drained connection must close");
    daemon.wait_clean_exit();

    let log = std::fs::read_to_string(dir.join("daemon-phase1.log")).expect("phase-1 log");
    assert!(log.contains("SIGNAL SIGTERM: graceful drain"), "signal logged:\n{log}");
    assert!(log.contains("reason=drained"), "witness drain counted:\n{log}");
    assert!(log.contains("CHECKPOINT shard="), "final checkpoints written:\n{log}");
    assert!(log.contains("shutdown complete"), "graceful exit line:\n{log}");
    assert!(log.contains("health: 0 worker panic(s)"), "healthy drain:\n{log}");
    if cfg!(feature = "fault-injection") {
        assert!(log.contains("DRAIN failpoint"), "drain seam must fire:\n{log}");
    }

    // Phase 2: resume, replay from the durable offsets, require parity.
    let mut resume_args = args.to_vec();
    resume_args.push("--resume");
    let mut daemon = Daemon::spawn(&dir.join("daemon-phase2.log"), &resume_args, None);
    {
        let mut conn = TcpStream::connect(&daemon.addr).expect("reconnect");
        for id in 0..SERIES_N {
            let (found, pushes, _) = query_series(&mut conn, id);
            assert!(found, "series {id} must survive the drain");
            assert_eq!(pushes, CUT as u64, "series {id}: drained checkpoint offset");
            for i in CUT..LEN {
                conn.write_all(&protocol::encode_obs(id, value(id, i))).expect("send OBS");
            }
        }
        for id in 0..SERIES_N {
            let (_, pushes, alarms) = query_series(&mut conn, id);
            assert_eq!(pushes, LEN as u64, "series {id}: observations lost or duplicated");
            assert_eq!(
                alarms, expected[id as usize],
                "series {id}: alarms lost (or invented) across SIGTERM + resume"
            );
        }
        let status = query(&mut conn, op::STATUS);
        std::fs::write(dir.join("final-status.json"), &status).expect("write status artifact");
        let shutdown = query(&mut conn, op::SHUTDOWN);
        assert!(json_bool(&shutdown, "clean"), "{shutdown}");
    }
    daemon.wait_clean_exit();
}
