//! Data-file parsing for the CLI: one value per line, `#` comments and
//! blank lines ignored. Lines may optionally be `value,score` pairs for
//! score-annotated inputs.

use moche_multidim::Point2;
use std::fmt;
use std::path::Path;

/// CLI-level errors.
#[derive(Debug)]
pub enum CliError {
    /// I/O failure reading a file.
    Io {
        /// Path involved.
        path: String,
        /// Underlying error.
        source: std::io::Error,
    },
    /// A line failed to parse.
    Parse {
        /// Path involved.
        path: String,
        /// 1-based line number.
        line: usize,
        /// Offending content.
        content: String,
        /// What the line was supposed to hold (e.g. "a number", "an even
        /// coordinate list") — an odd 2-D coordinate count is made of
        /// perfectly good numbers, so the message must name the real
        /// expectation.
        expected: &'static str,
    },
    /// Invalid command-line usage.
    Usage(String),
    /// An algorithmic error from the library.
    Moche(moche_core::MocheError),
    /// Writing the report failed (e.g. a closed pipe).
    Write(std::io::Error),
    /// A monitor snapshot failed to read, verify, or write
    /// (`--resume` / `--checkpoint`).
    Snapshot(moche_stream::SnapshotError),
}

impl CliError {
    /// The process exit code for a command that failed with this error.
    /// Snapshot failures get their own code (3) so a supervisor restarting
    /// a crashed monitor can distinguish "the checkpoint is corrupt —
    /// escalate" from ordinary run failures; usage errors are reported as 2
    /// by `main` before a command ever runs, and everything else is 1.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Snapshot(_) => 3,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Io { path, source } => write!(f, "cannot read {path}: {source}"),
            CliError::Parse { path, line, content, expected } => {
                write!(f, "{path}:{line}: cannot parse '{content}' as {expected}")
            }
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Moche(e) => write!(f, "{e}"),
            CliError::Write(e) => write!(f, "cannot write output: {e}"),
            CliError::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<moche_core::MocheError> for CliError {
    fn from(e: moche_core::MocheError) -> Self {
        CliError::Moche(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Write(e)
    }
}

impl From<moche_stream::SnapshotError> for CliError {
    fn from(e: moche_stream::SnapshotError) -> Self {
        CliError::Snapshot(e)
    }
}

/// Parses the text content of a data file: one `f64` per non-comment line.
/// A trailing `,score` (or whitespace-separated second column) is ignored
/// here; use [`parse_values_and_scores`] to capture it.
pub fn parse_values(path: &str, content: &str) -> Result<Vec<f64>, CliError> {
    parse_columns(path, content).map(|(v, _)| v)
}

/// Parses values plus an optional per-line second column of scores.
/// Returns `(values, Some(scores))` only if *every* data line carries a
/// second column.
pub fn parse_values_and_scores(
    path: &str,
    content: &str,
) -> Result<(Vec<f64>, Option<Vec<f64>>), CliError> {
    let (values, scores) = parse_columns(path, content)?;
    if !values.is_empty() && scores.len() == values.len() {
        Ok((values, Some(scores)))
    } else {
        Ok((values, None))
    }
}

fn parse_columns(path: &str, content: &str) -> Result<(Vec<f64>, Vec<f64>), CliError> {
    let mut values = Vec::new();
    let mut scores = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts =
            line.split(|c: char| c == ',' || c.is_whitespace()).filter(|s| !s.is_empty());
        let first = parts.next().ok_or_else(|| CliError::Parse {
            path: path.to_string(),
            line: i + 1,
            content: raw.to_string(),
            expected: "a number",
        })?;
        let value: f64 = first.parse().map_err(|_| CliError::Parse {
            path: path.to_string(),
            line: i + 1,
            content: raw.to_string(),
            expected: "a number",
        })?;
        values.push(value);
        if let Some(second) = parts.next() {
            let score: f64 = second.parse().map_err(|_| CliError::Parse {
                path: path.to_string(),
                line: i + 1,
                content: raw.to_string(),
                expected: "a number",
            })?;
            scores.push(score);
        }
    }
    Ok((values, scores))
}

/// Parses one windows-file line: `None` for comments and blanks, otherwise
/// the window (comma/whitespace separated values). `line_no` is 1-based.
fn parse_window_line(path: &str, line_no: usize, raw: &str) -> Option<Result<Vec<f64>, CliError>> {
    let mut window = Vec::new();
    parse_window_line_into(path, line_no, raw, &mut window).map(|r| r.map(|()| window))
}

/// [`parse_window_line`] writing into a caller-recycled buffer (cleared
/// first) — the zero-allocation producer path of `moche batch --stream`.
/// On `Some(Err(..))` the buffer holds whatever parsed before the error.
fn parse_window_line_into(
    path: &str,
    line_no: usize,
    raw: &str,
    window: &mut Vec<f64>,
) -> Option<Result<(), CliError>> {
    let line = raw.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return None;
    }
    let located_error = || CliError::Parse {
        path: path.to_string(),
        line: line_no,
        content: raw.trim_end_matches(['\n', '\r']).to_string(),
        expected: "a number",
    };
    window.clear();
    for tok in line.split(|c: char| c == ',' || c.is_whitespace()).filter(|s| !s.is_empty()) {
        match tok.parse::<f64>() {
            Ok(v) => window.push(v),
            Err(_) => return Some(Err(located_error())),
        }
    }
    if window.is_empty() {
        // A line of nothing but separators: report it here with a
        // location instead of a locationless "empty test set" later.
        return Some(Err(located_error()));
    }
    Some(Ok(()))
}

/// Parses a windows file: each non-comment line is one test window, its
/// values separated by commas and/or whitespace. Empty lines are skipped.
pub fn parse_windows(path: &str, content: &str) -> Result<Vec<Vec<f64>>, CliError> {
    let mut windows = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        if let Some(window) = parse_window_line(path, i + 1, raw) {
            windows.push(window?);
        }
    }
    Ok(windows)
}

/// A lazily-read windows file: one window per [`fill`](WindowStream::fill)
/// call (or per [`Iterator::next`]), so a stream of any length is processed
/// in bounded memory (see `moche batch --stream`).
///
/// The fill path recycles both the line buffer and the caller's window
/// buffer, so steady-state reading performs no heap allocations — the
/// producer side of the streaming engine's constant-memory loop.
///
/// The stream stops at the first I/O or parse error; the error is parked in
/// the slot returned by [`WindowStream::open`] for the caller to check
/// after the stream is drained (the source itself must yield plain windows
/// to feed the streaming engine from another thread).
pub struct WindowStream {
    reader: std::io::BufReader<std::fs::File>,
    /// Recycled line buffer.
    line: String,
    path: String,
    line_no: usize,
    error: std::sync::Arc<std::sync::Mutex<Option<CliError>>>,
}

impl WindowStream {
    /// Opens a windows file for lazy streaming. Returns the source and the
    /// shared slot where a mid-stream error is parked.
    #[allow(clippy::type_complexity)]
    pub fn open(
        path: &Path,
    ) -> Result<(Self, std::sync::Arc<std::sync::Mutex<Option<CliError>>>), CliError> {
        let file = std::fs::File::open(path)
            .map_err(|source| CliError::Io { path: path.display().to_string(), source })?;
        let error = std::sync::Arc::new(std::sync::Mutex::new(None));
        let stream = Self {
            reader: std::io::BufReader::new(file),
            line: String::new(),
            path: path.display().to_string(),
            line_no: 0,
            error: std::sync::Arc::clone(&error),
        };
        Ok((stream, error))
    }

    fn park(&self, e: CliError) {
        // The slot only ever holds an Option swap — a panic elsewhere
        // cannot leave it torn, so recover the poison instead of
        // cascading a second panic out of error reporting.
        *self.error.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(e);
    }

    /// Overwrites `window` with the next window and returns `true`, or
    /// `false` at end of stream (or on a parked error). This is the
    /// [`moche_core::WindowSource`] shape — pass
    /// `|buf: &mut Vec<f64>| stream.fill(buf)` to
    /// [`moche_core::StreamingBatchExplainer::explain_source`].
    pub fn fill(&mut self, window: &mut Vec<f64>) -> bool {
        use std::io::BufRead as _;
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return false, // end of file
                Ok(_) => {}
                Err(source) => {
                    self.park(CliError::Io { path: self.path.clone(), source });
                    return false;
                }
            }
            self.line_no += 1;
            match parse_window_line_into(&self.path, self.line_no, &self.line, window) {
                None => continue, // comment or blank line
                Some(Ok(())) => return true,
                Some(Err(e)) => {
                    self.park(e);
                    return false;
                }
            }
        }
    }
}

impl Iterator for WindowStream {
    type Item = Vec<f64>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut window = Vec::new();
        self.fill(&mut window).then_some(window)
    }
}

/// Parses a 2-D point file: one point per non-comment line, its `x` and
/// `y` coordinates separated by a comma and/or whitespace. A line with any
/// other number of columns is a located parse error.
pub fn parse_points(path: &str, content: &str) -> Result<Vec<Point2>, CliError> {
    let mut points = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let located_error = || CliError::Parse {
            path: path.to_string(),
            line: i + 1,
            content: raw.to_string(),
            expected: "a point (exactly two numbers: x y)",
        };
        let mut parts =
            line.split(|c: char| c == ',' || c.is_whitespace()).filter(|s| !s.is_empty());
        let x: f64 =
            parts.next().ok_or_else(located_error)?.parse().map_err(|_| located_error())?;
        let y: f64 =
            parts.next().ok_or_else(located_error)?.parse().map_err(|_| located_error())?;
        if parts.next().is_some() {
            return Err(located_error());
        }
        points.push(Point2::new(x, y));
    }
    Ok(points)
}

/// Parses one point-windows line into a caller-recycled buffer (cleared
/// first): `None` for comments and blanks, otherwise the window read as a
/// flat coordinate list `x1 y1 x2 y2 ...` paired up in order. An odd
/// coordinate count (a dangling `x`) and a separator-only line are located
/// parse errors. This is the zero-allocation producer path of
/// `moche batch2d --stream`.
fn parse_point_window_line_into(
    path: &str,
    line_no: usize,
    raw: &str,
    window: &mut Vec<Point2>,
) -> Option<Result<(), CliError>> {
    let line = raw.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return None;
    }
    let located_error = || CliError::Parse {
        path: path.to_string(),
        line: line_no,
        content: raw.trim_end_matches(['\n', '\r']).to_string(),
        expected: "an even coordinate list (x1 y1 x2 y2 ...)",
    };
    window.clear();
    let mut pending_x: Option<f64> = None;
    for tok in line.split(|c: char| c == ',' || c.is_whitespace()).filter(|s| !s.is_empty()) {
        let v: f64 = match tok.parse() {
            Ok(v) => v,
            Err(_) => return Some(Err(located_error())),
        };
        match pending_x.take() {
            None => pending_x = Some(v),
            Some(x) => window.push(Point2::new(x, v)),
        }
    }
    if pending_x.is_some() || window.is_empty() {
        return Some(Err(located_error()));
    }
    Some(Ok(()))
}

/// Parses a 2-D windows file: each non-comment line is one test window of
/// points, read as a flat coordinate list — an odd coordinate count (a
/// dangling `x` with no `y`) is a located parse error.
pub fn parse_point_windows(path: &str, content: &str) -> Result<Vec<Vec<Point2>>, CliError> {
    let mut windows = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        let mut window = Vec::new();
        if let Some(parsed) = parse_point_window_line_into(path, i + 1, raw, &mut window) {
            parsed?;
            windows.push(window);
        }
    }
    Ok(windows)
}

/// A lazily-read 2-D windows file — [`WindowStream`]'s point-valued twin,
/// with the same recycled-buffer fill contract and the same parked-error
/// slot (the shape [`moche_multidim::Window2dSource`] expects).
pub struct PointWindowStream {
    reader: std::io::BufReader<std::fs::File>,
    /// Recycled line buffer.
    line: String,
    path: String,
    line_no: usize,
    error: std::sync::Arc<std::sync::Mutex<Option<CliError>>>,
}

impl PointWindowStream {
    /// Opens a 2-D windows file for lazy streaming. Returns the source and
    /// the shared slot where a mid-stream error is parked.
    #[allow(clippy::type_complexity)]
    pub fn open(
        path: &Path,
    ) -> Result<(Self, std::sync::Arc<std::sync::Mutex<Option<CliError>>>), CliError> {
        let file = std::fs::File::open(path)
            .map_err(|source| CliError::Io { path: path.display().to_string(), source })?;
        let error = std::sync::Arc::new(std::sync::Mutex::new(None));
        let stream = Self {
            reader: std::io::BufReader::new(file),
            line: String::new(),
            path: path.display().to_string(),
            line_no: 0,
            error: std::sync::Arc::clone(&error),
        };
        Ok((stream, error))
    }

    fn park(&self, e: CliError) {
        *self.error.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(e);
    }

    /// Overwrites `window` with the next window's points and returns
    /// `true`, or `false` at end of stream (or on a parked error).
    pub fn fill(&mut self, window: &mut Vec<Point2>) -> bool {
        use std::io::BufRead as _;
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return false, // end of file
                Ok(_) => {}
                Err(source) => {
                    self.park(CliError::Io { path: self.path.clone(), source });
                    return false;
                }
            }
            self.line_no += 1;
            match parse_point_window_line_into(&self.path, self.line_no, &self.line, window) {
                None => continue, // comment or blank line
                Some(Ok(())) => return true,
                Some(Err(e)) => {
                    self.park(e);
                    return false;
                }
            }
        }
    }
}

/// Reads and parses a 2-D point file from disk (see [`parse_points`]).
pub fn read_points(path: &Path) -> Result<Vec<Point2>, CliError> {
    let content = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.display().to_string(), source })?;
    parse_points(&path.display().to_string(), &content)
}

/// Reads and parses a 2-D windows file from disk (see
/// [`parse_point_windows`]).
pub fn read_point_windows(path: &Path) -> Result<Vec<Vec<Point2>>, CliError> {
    let content = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.display().to_string(), source })?;
    parse_point_windows(&path.display().to_string(), &content)
}

/// Reads and parses a windows file from disk (see [`parse_windows`]).
pub fn read_windows(path: &Path) -> Result<Vec<Vec<f64>>, CliError> {
    let content = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.display().to_string(), source })?;
    parse_windows(&path.display().to_string(), &content)
}

/// Reads and parses a data file from disk.
pub fn read_values(path: &Path) -> Result<Vec<f64>, CliError> {
    let content = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.display().to_string(), source })?;
    parse_values(&path.display().to_string(), &content)
}

/// Reads a data file, capturing an optional score column.
pub fn read_values_and_scores(path: &Path) -> Result<(Vec<f64>, Option<Vec<f64>>), CliError> {
    let content = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.display().to_string(), source })?;
    parse_values_and_scores(&path.display().to_string(), &content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_values() {
        let content = "1.5\n2\n-3.25\n";
        assert_eq!(parse_values("f", content).unwrap(), vec![1.5, 2.0, -3.25]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let content = "# header\n1.0\n\n  # another\n2.0 # trailing\n";
        assert_eq!(parse_values("f", content).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn reports_parse_errors_with_location() {
        let content = "1.0\nnot-a-number\n";
        match parse_values("data.txt", content) {
            Err(CliError::Parse { path, line, .. }) => {
                assert_eq!(path, "data.txt");
                assert_eq!(line, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn score_column_detected_when_complete() {
        let content = "1.0,0.9\n2.0,0.1\n";
        let (v, s) = parse_values_and_scores("f", content).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
        assert_eq!(s, Some(vec![0.9, 0.1]));
    }

    #[test]
    fn partial_score_column_is_dropped() {
        let content = "1.0,0.9\n2.0\n";
        let (v, s) = parse_values_and_scores("f", content).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
        assert_eq!(s, None);
    }

    #[test]
    fn whitespace_separator_works() {
        let content = "1.0 0.9\n2.0\t0.1\n";
        let (_, s) = parse_values_and_scores("f", content).unwrap();
        assert_eq!(s, Some(vec![0.9, 0.1]));
    }

    #[test]
    fn empty_file_is_empty_vec() {
        assert!(parse_values("f", "# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn parses_windows_one_per_line() {
        let content = "# two windows\n1.0, 2.0, 3.0\n4 5\t6 7\n";
        let w = parse_windows("f", content).unwrap();
        assert_eq!(w, vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0, 7.0]]);
    }

    #[test]
    fn windows_parse_errors_carry_location() {
        match parse_windows("w.csv", "1,2\n3,oops,5\n") {
            Err(CliError::Parse { path, line, .. }) => {
                assert_eq!(path, "w.csv");
                assert_eq!(line, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn separator_only_window_line_is_a_located_error() {
        match parse_windows("w.csv", "1,2\n, ,\n") {
            Err(CliError::Parse { line: 2, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_points_one_per_line() {
        let content = "# header\n1.0, 2.0\n-3 4.5 # trailing\n";
        let p = parse_points("f", content).unwrap();
        assert_eq!(p, vec![Point2::new(1.0, 2.0), Point2::new(-3.0, 4.5)]);
    }

    #[test]
    fn point_arity_errors_carry_location() {
        for bad in ["1.0\n", "1 2 3\n", "1,oops\n"] {
            match parse_points("p.txt", bad) {
                Err(CliError::Parse { path, line, .. }) => {
                    assert_eq!(path, "p.txt");
                    assert_eq!(line, 1, "input {bad:?}");
                }
                other => panic!("input {bad:?}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn parses_point_windows_as_flat_coordinate_lists() {
        let content = "# two windows\n1 2, 3 4\n5,6\n";
        let w = parse_point_windows("f", content).unwrap();
        assert_eq!(
            w,
            vec![vec![Point2::new(1.0, 2.0), Point2::new(3.0, 4.0)], vec![Point2::new(5.0, 6.0)],]
        );
    }

    #[test]
    fn odd_coordinate_count_is_a_located_error() {
        match parse_point_windows("w.csv", "1 2\n3 4 5\n") {
            Err(CliError::Parse { line: 2, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        match parse_point_windows("w.csv", "1 2\n, ,\n") {
            Err(CliError::Parse { line: 2, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = CliError::Usage("bad flag".into());
        assert_eq!(e.to_string(), "bad flag");
        let e = CliError::Parse {
            path: "p".into(),
            line: 3,
            content: "x".into(),
            expected: "a number",
        };
        assert!(e.to_string().contains("p:3"));
        assert!(e.to_string().contains("as a number"));
    }
}
