//! The `moche` binary: parse arguments, run the command, print the report.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match moche_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try 'moche help'");
            std::process::exit(2);
        }
    };
    match moche_cli::run(command) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
