//! The `moche` binary: parse arguments, run the command, stream the report
//! to stdout.
//!
//! Output goes through one locked, buffered stdout handle for the whole
//! run, so streaming commands (`moche batch --stream`) and the `moche
//! serve` daemon's alarm log print each result as it is delivered instead
//! of accumulating a report in memory. Exit codes: `0` success, `1` for
//! errors (including batch runs where every window failed and nothing was
//! explained), `2` for usage errors, `3` for snapshot errors (a corrupt
//! `--resume` file or shard checkpoint, or a failed `--checkpoint`
//! write). SIGTERM/SIGINT against `moche serve` are not exits at all:
//! the daemon installs a handler (`moche-signal`) that drains
//! gracefully — final checkpoints, `health:` line — and then returns
//! through the normal success path, so a supervisor's stop reads as
//! exit 0.

use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match moche_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try 'moche help'");
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    match moche_cli::run(command, &mut out) {
        Ok(status) => {
            if let Err(e) = out.flush() {
                eprintln!("error: cannot write output: {e}");
                std::process::exit(1);
            }
            std::process::exit(status.exit_code());
        }
        Err(e) => {
            let _ = out.flush(); // keep whatever was already streamed
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
