//! `moche serve`: the monitor-fleet daemon. A thin I/O shell — listener,
//! wire protocol, worker threads, checkpoint cadence — around
//! [`moche_stream::MonitorFleet`], which owns all the actual monitoring.
//!
//! ## Thread topology
//!
//! ```text
//!              accept loop ── one handler thread per connection
//!                                   │ routes by shard_of(series)
//!                     bounded sync_channel rings (backpressure)
//!                                   ▼
//!   shard worker 0..N  — each owns one FleetShard outright:
//!     push (never blocks on explains) → bounded explain queue →
//!     drained when the ring is idle → periodic atomic checkpoints
//!                                   │ log lines (unbounded mpsc)
//!                                   ▼
//!              the calling thread: single writer pumping the log
//! ```
//!
//! Backpressure is the ring: a handler's `send` blocks when a shard's
//! ring is full, which in turn stalls that client's TCP stream — an
//! accepted observation is never dropped (property-tested in
//! `moche-stream`). Slow explains shed *explanation work*, never alarms
//! and never pushes.
//!
//! ## Connection supervision
//!
//! Every accepted socket runs with a short read-timeout tick so its
//! handler can enforce deadlines and observe the shutdown flag without
//! ever blocking indefinitely on a peer:
//!
//! - **Idle budget** (`--idle-timeout`): a connection with no complete
//!   request for that long is evicted (a slow-loris peer or a half-open
//!   socket left by a crashed client).
//! - **Mid-frame stall budget** (`--io-timeout`): a frame whose first
//!   byte arrived but which has not completed within the budget is a
//!   stall — trickling one byte per tick does not reset it. The same
//!   budget is armed as the socket write timeout, so a client that never
//!   reads its replies (write-side backpressure) is evicted too.
//! - **Admission cap** (`--max-connections`): past the cap a new
//!   connection gets one binary-framed `BUSY` reply with a retry hint,
//!   then a close — the daemon never silently hangs a client.
//! - **Error budget** (`--error-budget`): a malformed frame or line gets
//!   a structured `ERR` reply naming the defect; a connection that spends
//!   its budget is closed. Unframeable byte streams (a corrupt length
//!   prefix, an unterminated oversized JSON line) close immediately.
//!
//! Every eviction and rejection is counted in [`FleetStats`], visible in
//! `STATUS` replies and in the final `health:` line.
//!
//! ## Graceful drain
//!
//! `SIGTERM`/`SIGINT` (and the wire `SHUTDOWN` request) flip the shutdown
//! flag and wake the accept loop by self-connecting: the daemon stops
//! accepting, lets in-flight handlers finish their current request or hit
//! their deadlines, drains the ingest rings, writes a final per-shard
//! checkpoint, prints the `health:` line, and exits 0.
//!
//! ## Crash safety
//!
//! Each worker checkpoints its shard every `--checkpoint-every` accepted
//! observations (atomic write: stage + fsync + rename), and once more on
//! graceful shutdown. After a `kill -9`, restarting with `--resume` loads
//! every shard file and replays from the per-series `pushes` counters —
//! the fleet raises exactly the alarms an uninterrupted run would have
//! (see the `fleet-soak` CI job). Worker panics are caught and isolated
//! to the one series being pushed; the daemon keeps serving.

use crate::commands::{HealthReport, RunStatus};
use crate::io::CliError;
use crate::protocol::{self, op, Assembled, FrameAssembler, JsonObject, Request, WireMode};
use moche_stream::{
    shard_of, ExplainedAlarm, FleetConfig, FleetPush, FleetShard, FleetStats, MonitorConfig,
    MonitorFleet, SeriesStats,
};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The supervised read tick: how long a handler blocks in one socket read
/// before re-checking deadlines and the shutdown flag. Deadline precision
/// and drain latency are both within one tick.
const READ_TICK: Duration = Duration::from_millis(100);

/// The retry hint carried by a `BUSY` reply.
const BUSY_RETRY_MS: u64 = 1000;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address (`host:port`; port `0` picks a free port, printed on
    /// the startup line).
    Tcp(String),
    /// A unix-domain socket path (removed and re-created at startup).
    Unix(PathBuf),
}

/// Parsed `moche serve` options.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Listen address.
    pub listen: Listen,
    /// Per-series window size `w`.
    pub window: usize,
    /// KS significance level.
    pub alpha: f64,
    /// Worker (= shard) count; `0` means one per available core, capped
    /// at 8.
    pub workers: usize,
    /// Compute explanations on alarms (deferred, off the push path).
    pub explain: bool,
    /// Phase-1 size only on alarms.
    pub size_only: bool,
    /// Per-shard bound on the deferred explain queue.
    pub explain_queue: usize,
    /// Per-shard ingest ring capacity (the backpressure bound).
    pub ring: usize,
    /// Fleet-wide cap on tracked series (`0` = unbounded).
    pub max_series: usize,
    /// Cap on concurrently served connections (`0` = unbounded); excess
    /// connections get a `BUSY` reply and a close.
    pub max_connections: usize,
    /// Seconds a connection may sit with no complete request before it is
    /// evicted (`0` = no idle eviction).
    pub idle_timeout: u64,
    /// Seconds a started frame may stall mid-wire — and the socket write
    /// timeout for replies — before the connection is evicted (`0` = no
    /// I/O deadline).
    pub io_timeout: u64,
    /// Malformed frames/lines a connection may send (each answered with a
    /// structured error) before it is closed.
    pub error_budget: u32,
    /// Install SIGTERM/SIGINT handlers for graceful drain (the CLI always
    /// sets this; in-process tests leave it off — signal dispositions are
    /// process-global).
    pub handle_signals: bool,
    /// Directory for per-shard checkpoint files.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in accepted observations per shard (`None` =
    /// the window size).
    pub checkpoint_every: Option<u64>,
    /// Load shard checkpoints from `checkpoint_dir` before serving.
    pub resume: bool,
    /// Spectral-Residual filter window override.
    pub sr_filter_window: Option<usize>,
    /// Spectral-Residual score window override.
    pub sr_score_window: Option<usize>,
}

/// The supervision limits, resolved from [`ServeOptions`] once at startup.
#[derive(Debug, Clone, Copy)]
struct Limits {
    max_connections: usize,
    idle: Option<Duration>,
    io: Option<Duration>,
    error_budget: u32,
}

/// What a shard worker can be asked to do. Observations and queries share
/// one ring so a query replies only after every earlier observation from
/// the same connection was applied — the write barrier the soak harness
/// relies on to read exact per-series offsets.
enum WorkerMsg {
    Obs { series: u64, value: f64 },
    Query { series: u64, reply: mpsc::Sender<Option<SeriesStats>> },
}

/// Immutable run context shared by the connection handlers.
struct ServeContext {
    stats: Arc<FleetStats>,
    /// Shared with the signal callback, which outlives the serve scope.
    shutdown: Arc<AtomicBool>,
    cfg: FleetConfig,
    workers: usize,
    limits: Limits,
    /// Gauge of currently served connections (the admission cap input).
    active: AtomicUsize,
    /// Connection id allocator for the `CLOSE conn=N` log lines.
    conn_seq: AtomicU64,
    /// The signal number that triggered shutdown, if any (for the drain
    /// log line; written by the signal callback).
    signal_seen: Arc<AtomicI32>,
}

/// Why a connection handler returned. Transport/protocol causes carry the
/// detail their log line or counter needs.
enum CloseReason {
    /// Clean close by the peer; nothing to count.
    PeerClosed,
    /// This connection requested `SHUTDOWN`; the drain is its doing.
    ShutdownRequested,
    /// Closed by the graceful drain of somebody else's shutdown.
    Drained,
    /// No complete request within the idle budget.
    IdleTimeout(Duration),
    /// A frame started but stalled past the I/O budget.
    ReadStalled(Duration),
    /// The peer stopped reading replies (socket write timeout).
    WriteStalled,
    /// The malformed-frame budget was spent.
    ErrorBudget(u32),
    /// The byte stream could no longer be framed.
    ProtocolFatal(String),
    /// The transport failed outright.
    Transport(io::Error),
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get().min(8))
}

/// Runs the daemon until a `SHUTDOWN` request or a termination signal,
/// writing the startup line, alarm log, and final summary to `out`.
///
/// # Errors
///
/// Bind/config/resume failures. Once serving, connection-level errors are
/// logged and survived; only a failure to write the log stream itself
/// ends the run early.
pub fn run_serve(opts: &ServeOptions, out: &mut dyn Write) -> Result<RunStatus, CliError> {
    arm_faults_from_env(out)?;

    let mut monitor = MonitorConfig::new(opts.window, opts.alpha);
    monitor.explain_on_drift = opts.explain;
    monitor.size_only = opts.size_only;
    if let Some(q) = opts.sr_filter_window {
        monitor.sr_filter_window = q;
    }
    if let Some(z) = opts.sr_score_window {
        monitor.sr_score_window = z;
    }
    let workers = if opts.workers == 0 { default_workers() } else { opts.workers };
    let mut fleet_cfg = FleetConfig::new(workers, monitor);
    fleet_cfg.explain_queue = opts.explain_queue;
    fleet_cfg.max_series = if opts.max_series == 0 { usize::MAX } else { opts.max_series };
    let limits = Limits {
        max_connections: opts.max_connections,
        idle: (opts.idle_timeout > 0).then(|| Duration::from_secs(opts.idle_timeout)),
        io: (opts.io_timeout > 0).then(|| Duration::from_secs(opts.io_timeout)),
        error_budget: opts.error_budget,
    };

    let fleet = match (&opts.checkpoint_dir, opts.resume) {
        (Some(dir), true) if dir.is_dir() => {
            let fleet = MonitorFleet::resume_from_dir(fleet_cfg, dir)?;
            writeln!(
                out,
                "moche serve: resumed {} series from {}",
                fleet.series_count(),
                dir.display()
            )?;
            fleet
        }
        (None, true) => {
            return Err(CliError::Usage("--resume requires --checkpoint-dir".into()));
        }
        _ => MonitorFleet::new(fleet_cfg)?,
    };
    let checkpoint_every = opts.checkpoint_every.unwrap_or(opts.window as u64).max(1);
    if let Some(dir) = &opts.checkpoint_dir {
        std::fs::create_dir_all(dir)
            .map_err(|source| CliError::Io { path: dir.display().to_string(), source })?;
    }

    let listener = Listener::bind(&opts.listen)?;
    writeln!(out, "moche serve: listening on {}", listener.describe())?;
    writeln!(
        out,
        "moche serve: {} worker(s), window {}, alpha {}, explain queue {}, ring {}",
        workers, opts.window, opts.alpha, opts.explain_queue, opts.ring
    )?;
    writeln!(
        out,
        "moche serve: limits — max-connections {}, idle-timeout {}s, io-timeout {}s, \
         error-budget {} (0 = unbounded)",
        limits.max_connections, opts.idle_timeout, opts.io_timeout, limits.error_budget
    )?;
    out.flush()?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let signal_seen = Arc::new(AtomicI32::new(0));
    if opts.handle_signals {
        let shutdown = Arc::clone(&shutdown);
        let signal_seen = Arc::clone(&signal_seen);
        let waker = listener.waker();
        let installed = moche_signal::on_termination(move |signal| {
            signal_seen.store(signal, Ordering::SeqCst);
            shutdown.store(true, Ordering::SeqCst);
            if let Err(why) = waker.wake() {
                // The log channel may already be gone during teardown;
                // stderr is the only safe sink from this thread.
                eprintln!("moche serve: signal drain: {why}");
            }
        });
        if let Err(e) = installed {
            writeln!(
                out,
                "moche serve: WARNING: signal handling unavailable ({e}); \
                 SIGTERM will not drain gracefully"
            )?;
            out.flush()?;
        }
    }

    let (cfg, shards, stats) = fleet.into_shards();
    let ctx = ServeContext {
        stats,
        shutdown,
        cfg,
        workers,
        limits,
        active: AtomicUsize::new(0),
        conn_seq: AtomicU64::new(1),
        signal_seen,
    };
    let (log_tx, log_rx) = mpsc::channel::<String>();

    std::thread::scope(|s| -> Result<(), CliError> {
        let mut senders: Vec<SyncSender<WorkerMsg>> = Vec::with_capacity(workers);
        for shard in shards {
            let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(opts.ring.max(1));
            senders.push(tx);
            let log = log_tx.clone();
            let dir = opts.checkpoint_dir.clone();
            s.spawn(move || worker_loop(shard, rx, dir.as_deref(), checkpoint_every, &log));
        }
        {
            let ctx = &ctx;
            let listener = &listener;
            let log = log_tx.clone();
            s.spawn(move || accept_loop(s, listener, senders, ctx, &log));
        }
        drop(log_tx);

        // This thread is the single log writer: everything the workers
        // and handlers report lands here, in one ordered stream.
        let mut write_error: Option<std::io::Error> = None;
        for line in log_rx {
            if write_error.is_none() {
                if let Err(e) = writeln!(out, "{line}").and_then(|()| out.flush()) {
                    // Keep draining so the threads can finish; report the
                    // first write failure afterwards.
                    write_error = Some(e);
                }
            }
        }
        match write_error {
            Some(e) => Err(CliError::Write(e)),
            None => Ok(()),
        }
    })?;
    listener.cleanup();

    let view = ctx.stats.view();
    let health = HealthReport {
        worker_panics: view.worker_panics as usize,
        skipped_observations: view.skipped_observations as usize,
        degraded_preferences: view.degraded_preferences as usize,
        checkpoints_written: view.checkpoints_written as usize,
        evicted_connections: view.evicted_connections() as usize,
        busy_rejections: view.busy_rejections as usize,
    };
    writeln!(
        out,
        "moche serve: shutdown complete — {} series, {} accepted, {} alarm(s), \
         {} explained, {} shed",
        view.series, view.accepted, view.alarms, view.explained, view.explain_dropped
    )?;
    // The serving-edge / fleet-hygiene counters that are not part of the
    // health: line proper. Every FleetStats counter must surface here or in
    // the health: line — the moche-lint counter-plumbing pass enforces it —
    // so an operator reading a shutdown tail sees the whole story without
    // having to have issued a STATUS in time.
    writeln!(
        out,
        "moche serve: connections — {} opened, {} drained, {} malformed frame(s); \
         fleet — {} quarantined, {} rejected at capacity, {} checkpoint failure(s)",
        view.connections_opened,
        view.drained_connections,
        view.malformed_frames,
        view.quarantined_series,
        view.rejected_at_capacity,
        view.checkpoint_failures
    )?;
    writeln!(out, "{}", health.summary())?;
    out.flush()?;
    Ok(RunStatus { window_errors: 0, windows_explained: view.explained as usize, health })
}

/// One shard worker: drain the ring, answer queries in arrival order,
/// explain when idle, checkpoint on cadence and once at the end.
fn worker_loop(
    mut shard: FleetShard,
    rx: Receiver<WorkerMsg>,
    dir: Option<&Path>,
    every: u64,
    log: &mpsc::Sender<String>,
) {
    let mut last_checkpoint = shard.accepted();
    loop {
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(WorkerMsg::Obs { series, value }) => {
                apply_obs(&mut shard, series, value, log);
                if dir.is_some() && shard.accepted() - last_checkpoint >= every {
                    checkpoint_now(&shard, dir, log);
                    last_checkpoint = shard.accepted();
                }
            }
            Ok(WorkerMsg::Query { series, reply }) => {
                let _ = reply.send(shard.series_stats(series));
            }
            Err(RecvTimeoutError::Timeout) => {
                // Idle: answer a few deferred alarms without ever keeping
                // the ring waiting long.
                shard.drain_explains(8, |alarm| log_explained(alarm, log));
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Shutdown: answer everything still queued, then persist the shard.
    while shard.drain_explains(64, |alarm| log_explained(alarm, log)) > 0 {}
    if dir.is_some() {
        checkpoint_now(&shard, dir, log);
    }
    let _ = log.send(format!(
        "worker {}: exiting with {} series, {} accepted",
        shard.id(),
        shard.series_count(),
        shard.accepted()
    ));
}

fn apply_obs(shard: &mut FleetShard, series: u64, value: f64, log: &mpsc::Sender<String>) {
    match shard.push(series, value) {
        Ok(FleetPush::Warming | FleetPush::Stable) => {}
        Ok(FleetPush::Alarm { outcome, at_push, explain_queued }) => {
            let _ = log.send(format!(
                "ALARM series={series} push={at_push} stat={:.6} threshold={:.6}{}",
                outcome.statistic,
                outcome.threshold,
                if explain_queued { "" } else { " explain=shed" }
            ));
        }
        Ok(FleetPush::Quarantined) => {
            let _ =
                log.send(format!("PANIC series={series}: worker panic caught, series quarantined"));
        }
        Ok(FleetPush::AtCapacity) => {
            let _ = log.send(format!("REJECT series={series}: fleet at --max-series capacity"));
        }
        Err(e) => {
            let _ = log.send(format!("SKIP series={series}: {e}"));
        }
    }
}

fn log_explained(alarm: &ExplainedAlarm<'_>, log: &mpsc::Sender<String>) {
    let mut line = format!("EXPLAIN series={} push={}", alarm.series, alarm.at_push);
    if let Some(e) = alarm.explanation {
        line.push_str(&format!(" k={} after={:.6}", e.indices().len(), e.outcome_after.statistic));
    }
    if let Some(s) = alarm.size {
        line.push_str(&format!(" k={} k_hat={}", s.k, s.k_hat));
    }
    if alarm.degraded {
        line.push_str(" degraded=identity");
    }
    let _ = log.send(line);
}

fn checkpoint_now(shard: &FleetShard, dir: Option<&Path>, log: &mpsc::Sender<String>) {
    let Some(dir) = dir else { return };
    match shard.checkpoint(dir) {
        Ok(()) => {
            let _ = log.send(format!(
                "CHECKPOINT shard={} series={} accepted={}",
                shard.id(),
                shard.series_count(),
                shard.accepted()
            ));
        }
        Err(e) => {
            let _ = log.send(format!("CHECKPOINT shard={} FAILED: {e}", shard.id()));
        }
    }
}

/// Accepts connections until shutdown, spawning one supervised handler
/// per admitted connection on the same scope. Past `--max-connections`
/// a connection gets a `BUSY` reply instead of a handler. The
/// `serve.accept` failpoint injects a simulated accept failure (logged,
/// then the loop keeps listening).
fn accept_loop<'scope>(
    s: &'scope std::thread::Scope<'scope, '_>,
    listener: &'scope Listener,
    senders: Vec<SyncSender<WorkerMsg>>,
    ctx: &'scope ServeContext,
    log: &mpsc::Sender<String>,
) {
    while !ctx.shutdown.load(Ordering::SeqCst) {
        if let Some(moche_core::fault::Fault::Error) = moche_core::fault::failpoint("serve.accept")
        {
            let _ = log.send("ACCEPT failed (injected): retrying".to_string());
            continue;
        }
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                let _ = log.send(format!("ACCEPT failed: {e}"));
                continue;
            }
        };
        if ctx.shutdown.load(Ordering::SeqCst) {
            break; // the shutdown self-connect, or a straggler
        }
        let cap = ctx.limits.max_connections;
        let active = ctx.active.load(Ordering::SeqCst);
        if cap > 0 && active >= cap {
            // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
            ctx.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
            let _ = log.send(format!(
                "BUSY rejecting connection: {active} active >= --max-connections {cap}"
            ));
            reject_busy(conn, ctx);
            continue;
        }
        ctx.active.fetch_add(1, Ordering::SeqCst);
        // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
        ctx.stats.connections_opened.fetch_add(1, Ordering::Relaxed);
        // lint:allow(relaxed): connection-id allocator — only the RMW's
        // atomicity matters (ids must be unique, not ordered with anything).
        // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
        let id = ctx.conn_seq.fetch_add(1, Ordering::Relaxed);
        let senders = senders.clone();
        let log = log.clone();
        s.spawn(move || {
            let reason = handle_connection(id, conn, &senders, ctx, listener, &log);
            note_close(id, reason, ctx, &log);
            ctx.active.fetch_sub(1, Ordering::SeqCst);
        });
    }
    let signal = ctx.signal_seen.swap(0, Ordering::SeqCst);
    if signal != 0 {
        let _ = log.send(format!(
            "SIGNAL {}: graceful drain — no longer accepting, \
             waiting for in-flight handlers",
            moche_signal::signal_name(signal)
        ));
    }
    // Dropping `senders` (the last clones once handlers finish) lets the
    // workers drain their rings and exit.
}

/// Turns a connection away at the admission cap: one binary-framed `BUSY`
/// reply with a retry hint, then the close. Best-effort with a short
/// write timeout — a rejected client gets no second chance to stall us.
fn reject_busy(mut conn: Conn, ctx: &ServeContext) {
    let _ = conn.set_write_timeout(Some(Duration::from_secs(1)));
    let body = JsonObject::new()
        .field_bool("busy", true)
        .field_u64("retry_after_ms", BUSY_RETRY_MS)
        .field_u64("max_connections", ctx.limits.max_connections as u64)
        .field_u64("active_connections", ctx.active.load(Ordering::SeqCst) as u64)
        .build();
    let _ = protocol::write_reply(&mut conn, op::BUSY, &body);
}

/// Serves one connection under supervision: a [`FrameAssembler`] owns the
/// partial-input state while the socket runs on a [`READ_TICK`] read
/// timeout, so every tick can check the idle budget, the mid-frame stall
/// budget, and the shutdown flag. Returns why the connection ended; the
/// caller counts and logs it.
fn handle_connection(
    id: u64,
    mut conn: Conn,
    senders: &[SyncSender<WorkerMsg>],
    ctx: &ServeContext,
    listener: &Listener,
    log: &mpsc::Sender<String>,
) -> CloseReason {
    if let Err(e) = conn.set_read_timeout(Some(READ_TICK)) {
        return CloseReason::Transport(e);
    }
    if let Err(e) = conn.set_write_timeout(ctx.limits.io) {
        return CloseReason::Transport(e);
    }
    let mut asm = FrameAssembler::new();
    let mut read_buf = [0u8; 4096];
    let mut malformed: u32 = 0;
    let mut last_activity = Instant::now();
    // The first byte of the frame currently on the wire — the mid-frame
    // stall clock. Reset whenever a frame completes, so a pipelining
    // client is never mistaken for a trickling one.
    let mut frame_start: Option<Instant> = None;
    loop {
        // Drain every complete request already buffered.
        let mut consumed_any = false;
        loop {
            match asm.next_frame() {
                Assembled::Request(request) => {
                    consumed_any = true;
                    last_activity = Instant::now();
                    match apply_request(request, asm.mode(), &mut conn, senders, ctx, listener, log)
                    {
                        Ok(Flow::Continue) => {}
                        Ok(Flow::Close(reason)) => return reason,
                        Err(e) => return write_failure_reason(e),
                    }
                }
                Assembled::Malformed(why) => {
                    consumed_any = true;
                    last_activity = Instant::now();
                    // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                    ctx.stats.malformed_frames.fetch_add(1, Ordering::Relaxed);
                    malformed += 1;
                    if malformed > ctx.limits.error_budget {
                        // Budget spent: one final (fatal) reply, then out.
                        let _ = respond(&mut conn, asm.mode(), op::ERR, &error_json(&why, None));
                        return CloseReason::ErrorBudget(malformed);
                    }
                    let remaining = ctx.limits.error_budget - malformed;
                    let body = error_json(&why, Some(remaining));
                    if let Err(e) = respond(&mut conn, asm.mode(), op::ERR, &body) {
                        return write_failure_reason(e);
                    }
                }
                Assembled::Fatal(why) => {
                    // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                    ctx.stats.malformed_frames.fetch_add(1, Ordering::Relaxed);
                    let _ = respond(&mut conn, asm.mode(), op::ERR, &error_json(&why, None));
                    return CloseReason::ProtocolFatal(why);
                }
                Assembled::NeedMore => break,
            }
            if ctx.shutdown.load(Ordering::SeqCst) {
                return drain_close(id, &mut conn, asm.mode(), log);
            }
        }
        if !asm.is_mid_frame() {
            frame_start = None;
        } else if consumed_any || frame_start.is_none() {
            frame_start = Some(Instant::now());
        }
        if let Some(moche_core::fault::Fault::Error) = moche_core::fault::failpoint("serve.read") {
            // Deterministic stand-in for a real mid-frame stall: evicted
            // and counted exactly like one, without waiting out a clock.
            let why = "injected read stall (serve.read); connection evicted";
            let _ = respond(&mut conn, asm.mode(), op::ERR, &error_json(why, None));
            return CloseReason::ReadStalled(Duration::ZERO);
        }
        match conn.read(&mut read_buf) {
            Ok(0) => return CloseReason::PeerClosed,
            Ok(n) => asm.extend(&read_buf[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // One supervision tick: nothing arrived within READ_TICK.
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return drain_close(id, &mut conn, asm.mode(), log);
                }
                let now = Instant::now();
                if let (Some(io_budget), Some(started)) = (ctx.limits.io, frame_start) {
                    let stalled = now.duration_since(started);
                    if asm.is_mid_frame() && stalled >= io_budget {
                        let why = "mid-frame stall exceeded --io-timeout; connection evicted";
                        let _ = respond(&mut conn, asm.mode(), op::ERR, &error_json(why, None));
                        return CloseReason::ReadStalled(stalled);
                    }
                }
                if let Some(idle_budget) = ctx.limits.idle {
                    let idle = now.duration_since(last_activity);
                    if !asm.is_mid_frame() && idle >= idle_budget {
                        let why = "idle timeout; connection evicted";
                        let _ = respond(&mut conn, asm.mode(), op::ERR, &error_json(why, None));
                        return CloseReason::IdleTimeout(idle);
                    }
                }
            }
            Err(e) => return CloseReason::Transport(e),
        }
    }
}

/// What [`apply_request`] tells the supervision loop to do next.
enum Flow {
    Continue,
    Close(CloseReason),
}

/// Executes one decoded request on an admitted connection.
fn apply_request(
    request: Request,
    mode: Option<WireMode>,
    conn: &mut Conn,
    senders: &[SyncSender<WorkerMsg>],
    ctx: &ServeContext,
    listener: &Listener,
    log: &mpsc::Sender<String>,
) -> io::Result<Flow> {
    match request {
        Request::Obs { series, value } => {
            let shard = shard_of(series, senders.len());
            // A full ring blocks here: backpressure reaches the client
            // through its stalled stream.
            if senders[shard].send(WorkerMsg::Obs { series, value }).is_err() {
                return Ok(Flow::Close(CloseReason::ShutdownRequested));
            }
        }
        Request::Status => respond(conn, mode, op::STATUS, &status_json(ctx))?,
        Request::Series { series } => {
            respond(conn, mode, op::SERIES, &series_json(series, senders, ctx))?;
        }
        Request::Shutdown => {
            respond(conn, mode, op::SHUTDOWN, &status_json(ctx))?;
            let _ = log.send("SHUTDOWN requested".to_string());
            ctx.shutdown.store(true, Ordering::SeqCst);
            if let Err(why) = listener.waker().wake() {
                let _ = log.send(format!("SHUTDOWN: {why}"));
            }
            return Ok(Flow::Close(CloseReason::ShutdownRequested));
        }
    }
    Ok(Flow::Continue)
}

/// Closes one surviving connection during a graceful drain: a courtesy
/// notice, then the close. The `serve.drain` failpoint proves chaos tests
/// drive this exact path.
fn drain_close(
    id: u64,
    conn: &mut Conn,
    mode: Option<WireMode>,
    log: &mpsc::Sender<String>,
) -> CloseReason {
    if let Some(moche_core::fault::Fault::Error) = moche_core::fault::failpoint("serve.drain") {
        let _ = log.send(format!("DRAIN failpoint conn={id}: injected close error (ignored)"));
    }
    let _ = respond(conn, mode, op::ERR, &error_json("daemon draining for shutdown", None));
    CloseReason::Drained
}

/// Counts and logs a finished connection. Clean closes are silent; every
/// eviction gets a `CLOSE conn=N reason=...` line and a counter.
fn note_close(id: u64, reason: CloseReason, ctx: &ServeContext, log: &mpsc::Sender<String>) {
    let stats = &ctx.stats;
    match reason {
        CloseReason::PeerClosed | CloseReason::ShutdownRequested => {}
        CloseReason::Drained => {
            // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
            stats.drained_connections.fetch_add(1, Ordering::Relaxed);
            let _ = log.send(format!("CLOSE conn={id} reason=drained"));
        }
        CloseReason::IdleTimeout(idle) => {
            // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
            stats.idle_timeouts.fetch_add(1, Ordering::Relaxed);
            let _ = log
                .send(format!("CLOSE conn={id} reason=idle-timeout idle_ms={}", idle.as_millis()));
        }
        CloseReason::ReadStalled(stalled) => {
            // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
            stats.stalled_reads.fetch_add(1, Ordering::Relaxed);
            let _ = log.send(format!(
                "CLOSE conn={id} reason=read-stall stalled_ms={}",
                stalled.as_millis()
            ));
        }
        CloseReason::WriteStalled => {
            // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
            stats.stalled_writes.fetch_add(1, Ordering::Relaxed);
            let _ = log.send(format!("CLOSE conn={id} reason=write-stall (peer not reading)"));
        }
        CloseReason::ErrorBudget(count) => {
            // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
            stats.error_budget_closes.fetch_add(1, Ordering::Relaxed);
            let _ = log.send(format!("CLOSE conn={id} reason=error-budget malformed={count}"));
        }
        CloseReason::ProtocolFatal(why) => {
            // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
            stats.error_budget_closes.fetch_add(1, Ordering::Relaxed);
            let _ = log.send(format!("CLOSE conn={id} reason=protocol-fatal: {why}"));
        }
        CloseReason::Transport(e) => {
            let _ = log.send(format!("CONNECTION error: {e}"));
        }
    }
}

/// Classifies a failed reply write: a timeout means the peer stopped
/// reading (eviction), anything else is a transport failure.
fn write_failure_reason(e: io::Error) -> CloseReason {
    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
        CloseReason::WriteStalled
    } else {
        CloseReason::Transport(e)
    }
}

/// Writes one reply in the connection's wire mode (binary before the mode
/// is known — only server-initiated notices are sent that early). The
/// `serve.write` failpoint injects a deterministic write stall.
fn respond(conn: &mut Conn, mode: Option<WireMode>, opcode: u8, body: &str) -> io::Result<()> {
    if let Some(moche_core::fault::Fault::Error) = moche_core::fault::failpoint("serve.write") {
        return Err(io::Error::new(ErrorKind::WouldBlock, "injected write stall (serve.write)"));
    }
    match mode {
        Some(WireMode::JsonLines) => {
            conn.write_all(body.as_bytes())?;
            conn.write_all(b"\n")?;
            conn.flush()
        }
        _ => protocol::write_reply(conn, opcode, body),
    }
}

/// An `ERR` reply body. `budget_remaining` is how many more malformed
/// frames the connection may send; `None` marks the error fatal (the
/// connection closes right after).
fn error_json(why: &str, budget_remaining: Option<u32>) -> String {
    // JsonObject does not escape; the reasons are our own text, but
    // malformed JSON echoes could smuggle a quote through `unknown cmd`.
    let why = why.replace(['"', '\\'], "'");
    let obj = JsonObject::new().field_str("error", &why);
    match budget_remaining {
        Some(r) => obj.field_u64("budget_remaining", u64::from(r)).build(),
        None => obj.field_bool("fatal", true).build(),
    }
}

/// The status endpoint body: every fleet counter plus the run
/// configuration (documented in the README "Fleet service" section).
fn status_json(ctx: &ServeContext) -> String {
    let view = ctx.stats.view();
    JsonObject::new()
        .field_u64("series", view.series)
        .field_u64("accepted", view.accepted)
        .field_u64("skipped_observations", view.skipped_observations)
        .field_u64("alarms", view.alarms)
        .field_u64("explained", view.explained)
        .field_u64("explain_dropped", view.explain_dropped)
        .field_u64("degraded_preferences", view.degraded_preferences)
        .field_u64("worker_panics", view.worker_panics)
        .field_u64("quarantined_series", view.quarantined_series)
        .field_u64("rejected_at_capacity", view.rejected_at_capacity)
        .field_u64("checkpoints_written", view.checkpoints_written)
        .field_u64("checkpoint_failures", view.checkpoint_failures)
        .field_u64("connections_opened", view.connections_opened)
        .field_u64("active_connections", ctx.active.load(Ordering::SeqCst) as u64)
        .field_u64("busy_rejections", view.busy_rejections)
        .field_u64("idle_timeouts", view.idle_timeouts)
        .field_u64("stalled_reads", view.stalled_reads)
        .field_u64("stalled_writes", view.stalled_writes)
        .field_u64("malformed_frames", view.malformed_frames)
        .field_u64("error_budget_closes", view.error_budget_closes)
        .field_u64("drained_connections", view.drained_connections)
        .field_bool("clean", view.is_clean())
        .field_u64("workers", ctx.workers as u64)
        .field_u64("window", ctx.cfg.monitor.window as u64)
        .field_f64("alpha", ctx.cfg.monitor.alpha)
        .field_u64("max_connections", ctx.limits.max_connections as u64)
        .field_u64("idle_timeout_secs", ctx.limits.idle.map_or(0, |d| d.as_secs()))
        .field_u64("io_timeout_secs", ctx.limits.io.map_or(0, |d| d.as_secs()))
        .field_u64("error_budget", u64::from(ctx.limits.error_budget))
        .build()
}

fn series_json(series: u64, senders: &[SyncSender<WorkerMsg>], ctx: &ServeContext) -> String {
    let shard = shard_of(series, senders.len());
    let (reply_tx, reply_rx) = mpsc::channel();
    let stats = if ctx.shutdown.load(Ordering::SeqCst) {
        None
    } else if senders[shard].send(WorkerMsg::Query { series, reply: reply_tx }).is_ok() {
        reply_rx.recv().ok().flatten()
    } else {
        None
    };
    match stats {
        Some(stats) => JsonObject::new()
            .field_u64("series", series)
            .field_bool("found", true)
            .field_u64("shard", stats.shard as u64)
            .field_u64("pushes", stats.pushes)
            .field_u64("alarms", stats.alarms)
            .field_u64("degraded_preferences", stats.degraded_preferences)
            .build(),
        None => JsonObject::new().field_u64("series", series).field_bool("found", false).build(),
    }
}

/// The daemon's listening socket, TCP or unix-domain.
enum Listener {
    Tcp(TcpListener, SocketAddr),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn bind(listen: &Listen) -> Result<Self, CliError> {
        match listen {
            Listen::Tcp(addr) => {
                let listener = TcpListener::bind(addr)
                    .map_err(|source| CliError::Io { path: addr.clone(), source })?;
                let local = listener
                    .local_addr()
                    .map_err(|source| CliError::Io { path: addr.clone(), source })?;
                Ok(Listener::Tcp(listener, local))
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                let _ = std::fs::remove_file(path); // a previous run's socket
                let listener = UnixListener::bind(path)
                    .map_err(|source| CliError::Io { path: path.display().to_string(), source })?;
                Ok(Listener::Unix(listener, path.clone()))
            }
            #[cfg(not(unix))]
            Listen::Unix(path) => Err(CliError::Usage(format!(
                "--unix {} is not supported on this platform",
                path.display()
            ))),
        }
    }

    fn describe(&self) -> String {
        match self {
            Listener::Tcp(_, local) => local.to_string(),
            #[cfg(unix)]
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(listener, _) => listener.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(listener, _) => listener.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }

    /// A handle that can wake a blocked `accept` from any thread (the
    /// signal callback outlives the serve scope, so it cannot borrow the
    /// listener itself).
    fn waker(&self) -> AcceptWaker {
        match self {
            Listener::Tcp(_, local) => AcceptWaker::Tcp(*local),
            #[cfg(unix)]
            Listener::Unix(_, path) => AcceptWaker::Unix(path.clone()),
        }
    }

    fn cleanup(&self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Wakes a blocked `accept` after the shutdown flag is set, by connecting
/// to ourselves. `signal(2)` installs `SA_RESTART` handlers on glibc, so
/// a termination signal alone never interrupts `accept` — this
/// self-connect *is* the wake mechanism, and its failure is worth a log
/// line, not a shrug.
#[derive(Clone)]
enum AcceptWaker {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl AcceptWaker {
    fn wake(&self) -> Result<(), String> {
        let mut last = String::new();
        for attempt in 1..=3u32 {
            let result = match self {
                AcceptWaker::Tcp(addr) => {
                    TcpStream::connect_timeout(addr, Duration::from_millis(250)).map(drop)
                }
                #[cfg(unix)]
                AcceptWaker::Unix(path) => UnixStream::connect(path).map(drop),
            };
            match result {
                Ok(()) => return Ok(()),
                Err(e) => last = format!("attempt {attempt}: {e}"),
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        Err(format!(
            "could not wake the accept loop after 3 self-connect attempts ({last}); \
             it will notice shutdown on its next accepted connection"
        ))
    }
}

/// One accepted connection.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Arms failpoints from the `MOCHE_FAULTS` environment variable so the
/// CI soak job can drive the daemon's seams from outside the process.
/// Format: comma-separated `name=fault[:skip[:times]]` with `fault` one
/// of `panic`, `error`, or `truncateN` (N = bytes kept). Only honoured
/// under the `fault-injection` feature; otherwise a set variable gets a
/// loud warning instead of silently testing nothing.
fn arm_faults_from_env(out: &mut dyn Write) -> Result<(), CliError> {
    let Ok(spec) = std::env::var("MOCHE_FAULTS") else { return Ok(()) };
    if spec.trim().is_empty() {
        return Ok(());
    }
    #[cfg(feature = "fault-injection")]
    {
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, rest) = part.split_once('=').ok_or_else(|| {
                CliError::Usage(format!("MOCHE_FAULTS entry '{part}' is not name=fault"))
            })?;
            let mut fields = rest.split(':');
            let fault = fields.next().unwrap_or_default();
            let fault = if fault == "panic" {
                moche_core::fault::Fault::Panic
            } else if fault == "error" {
                moche_core::fault::Fault::Error
            } else if let Some(n) = fault.strip_prefix("truncate") {
                let n = n.parse().map_err(|_| {
                    CliError::Usage(format!("MOCHE_FAULTS truncate length '{n}' is not a number"))
                })?;
                moche_core::fault::Fault::TruncateWrite(n)
            } else {
                return Err(CliError::Usage(format!("MOCHE_FAULTS unknown fault '{fault}'")));
            };
            let parse_count = |field: Option<&str>, what: &str| -> Result<usize, CliError> {
                match field {
                    None => Ok(if what == "times" { 1 } else { 0 }),
                    Some(raw) => raw.parse().map_err(|_| {
                        CliError::Usage(format!("MOCHE_FAULTS {what} '{raw}' is not a number"))
                    }),
                }
            };
            let skip = parse_count(fields.next(), "skip")?;
            let times = parse_count(fields.next(), "times")?;
            moche_core::fault::arm(name, fault, skip, times);
            writeln!(out, "moche serve: armed failpoint {name} ({rest})")?;
        }
        Ok(())
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        writeln!(
            out,
            "moche serve: WARNING: MOCHE_FAULTS is set but this build has no \
             fault-injection feature; nothing armed"
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MAX_FRAME_LEN;
    use std::io::{BufRead, BufReader};

    fn options(listen: Listen) -> ServeOptions {
        ServeOptions {
            listen,
            window: 16,
            alpha: 0.05,
            workers: 2,
            explain: true,
            size_only: false,
            explain_queue: 64,
            ring: 128,
            max_series: 0,
            max_connections: 32,
            idle_timeout: 30,
            io_timeout: 30,
            error_budget: 3,
            handle_signals: false,
            checkpoint_dir: None,
            checkpoint_every: None,
            resume: false,
            sr_filter_window: None,
            sr_score_window: None,
        }
    }

    /// A pipe-like writer that forwards the bound address from the
    /// "listening on" startup line as soon as it is flushed.
    struct FirstLine {
        buf: Vec<u8>,
        tx: Option<mpsc::Sender<String>>,
    }

    impl Write for FirstLine {
        fn write(&mut self, b: &[u8]) -> io::Result<usize> {
            self.buf.extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            if self.tx.is_some() {
                let addr = self
                    .buf
                    .split(|&b| b == b'\n')
                    .filter_map(|line| std::str::from_utf8(line).ok())
                    .find(|line| line.contains("listening on"))
                    .map(|line| line.rsplit(' ').next().unwrap_or_default().to_string());
                if let (Some(addr), Some(tx)) = (addr, self.tx.take()) {
                    let _ = tx.send(addr);
                }
            }
            Ok(())
        }
    }

    /// Runs the daemon on a background thread and returns its join handle
    /// plus the bound address.
    #[allow(clippy::type_complexity)]
    fn spawn_server(opts: ServeOptions) -> (std::thread::JoinHandle<(RunStatus, Vec<u8>)>, String) {
        let (addr_tx, addr_rx) = mpsc::channel::<String>();
        let server = std::thread::spawn(move || {
            let mut out = FirstLine { buf: Vec::new(), tx: Some(addr_tx) };
            let status = run_serve(&opts, &mut out).expect("serve runs");
            (status, out.buf)
        });
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).expect("startup line");
        (server, addr)
    }

    /// Asks the daemon to shut down over a fresh connection.
    fn request_shutdown(addr: &str) {
        let mut conn = TcpStream::connect(addr).expect("connect for shutdown");
        conn.write_all(&protocol::encode_op(op::SHUTDOWN)).unwrap();
        let _ = protocol::read_reply(&mut conn);
    }

    /// Extracts `"key":N` from a flat JSON body.
    fn json_counter(body: &str, key: &str) -> u64 {
        let needle = format!("\"{key}\":");
        let at = body.find(&needle).unwrap_or_else(|| panic!("{key} in {body}"));
        body[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| panic!("{key} is numeric in {body}"))
    }

    /// Polls STATUS on fresh connections until `key` reaches `at_least`
    /// (counters for a closing connection land just *after* its socket
    /// closes, so an immediate read can race them).
    fn wait_for_counter(addr: &str, key: &str, at_least: u64) -> String {
        let mut body = String::new();
        for _ in 0..250 {
            let mut conn = TcpStream::connect(addr).expect("connect for status");
            conn.write_all(&protocol::encode_op(op::STATUS)).unwrap();
            let (_, reply) = protocol::read_reply(&mut conn).expect("status reply");
            body = String::from_utf8(reply).unwrap();
            if json_counter(&body, key) >= at_least {
                return body;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("STATUS {key} never reached {at_least}: {body}");
    }

    /// End-to-end over a real TCP socket, in-process: push a drifting
    /// series in binary mode, check status and per-series replies, shut
    /// down gracefully, and verify the final RunStatus health.
    #[test]
    fn serve_round_trip_over_tcp() {
        let (server, addr) = spawn_server(options(Listen::Tcp("127.0.0.1:0".into())));
        let mut conn = TcpStream::connect(&addr).expect("connect");
        // A level shift after 200 stationary observations must alarm.
        for i in 0..400u64 {
            let value = ((i * 13) % 11) as f64 + if i < 200 { 0.0 } else { 30.0 };
            conn.write_all(&protocol::encode_obs(9, value)).unwrap();
        }
        conn.write_all(&protocol::encode_series(9)).unwrap();
        conn.flush().unwrap();
        let (opcode, body) = protocol::read_reply(&mut conn).unwrap();
        assert_eq!(opcode, op::SERIES | op::REPLY);
        let body = String::from_utf8(body).unwrap();
        assert!(body.contains("\"found\":true"), "series must exist: {body}");
        assert!(body.contains("\"pushes\":400"), "all pushes must be applied: {body}");
        conn.write_all(&protocol::encode_op(op::STATUS)).unwrap();
        let (opcode, body) = protocol::read_reply(&mut conn).unwrap();
        assert_eq!(opcode, op::STATUS | op::REPLY);
        let body = String::from_utf8(body).unwrap();
        assert!(body.contains("\"accepted\":400"), "status: {body}");
        assert!(body.contains("\"worker_panics\":0"), "status: {body}");
        assert!(body.contains("\"connections_opened\":1"), "status: {body}");
        assert!(body.contains("\"active_connections\":1"), "status: {body}");
        assert!(body.contains("\"max_connections\":32"), "status: {body}");
        conn.write_all(&protocol::encode_op(op::SHUTDOWN)).unwrap();
        let (opcode, _) = protocol::read_reply(&mut conn).unwrap();
        assert_eq!(opcode, op::SHUTDOWN | op::REPLY);
        drop(conn);
        let (status, log) = server.join().expect("server thread");
        let log = String::from_utf8_lossy(&log);
        assert!(log.contains("ALARM series=9"), "the shift must alarm:\n{log}");
        assert!(log.contains("shutdown complete"), "graceful exit line:\n{log}");
        assert_eq!(status.exit_code(), 0);
        assert_eq!(status.health.worker_panics, 0);
        assert_eq!(status.health.evicted_connections, 0);
    }

    /// The JSON wire mode speaks the same protocol.
    #[test]
    fn serve_round_trip_over_json_lines() {
        let (server, addr) = spawn_server(options(Listen::Tcp("127.0.0.1:0".into())));
        let conn = TcpStream::connect(&addr).expect("connect");
        let mut writer = conn.try_clone().expect("clone");
        let mut reader = BufReader::new(conn);
        for i in 0..50 {
            writeln!(writer, "{{\"series\":1,\"value\":{}.0}}", i % 7).unwrap();
        }
        writeln!(writer, "{{\"cmd\":\"series\",\"series\":1}}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"pushes\":50"), "JSON reply: {line}");
        writeln!(writer, "{{\"cmd\":\"shutdown\"}}").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"accepted\":50"), "shutdown reply: {line}");
        drop((writer, reader));
        let (status, _) = server.join().expect("server thread");
        assert_eq!(status.exit_code(), 0);
    }

    /// The per-connection error budget: each malformed binary frame gets
    /// a structured `ERR` reply with the budget countdown (the exact JSON
    /// is pinned), valid traffic still works in between, and the frame
    /// past the budget closes the connection — all of it counted.
    #[test]
    fn malformed_frames_spend_the_error_budget_then_close() {
        let mut opts = options(Listen::Tcp("127.0.0.1:0".into()));
        opts.error_budget = 2;
        let (server, addr) = spawn_server(opts);
        let mut conn = TcpStream::connect(&addr).expect("connect");
        // An OBS frame with a 3-byte body instead of 16.
        let mut bad = Vec::new();
        bad.extend_from_slice(&4u32.to_le_bytes());
        bad.extend_from_slice(&[op::OBS, 1, 2, 3]);

        conn.write_all(&bad).unwrap();
        let (opcode, body) = protocol::read_reply(&mut conn).unwrap();
        assert_eq!(opcode, op::ERR | op::REPLY);
        assert_eq!(
            String::from_utf8(body).unwrap(),
            "{\"error\":\"OBS payload must be 16 bytes, got 3\",\"budget_remaining\":1}"
        );
        // Framing is intact: a good OBS plus a SERIES barrier still work.
        conn.write_all(&protocol::encode_obs(5, 1.0)).unwrap();
        conn.write_all(&protocol::encode_series(5)).unwrap();
        let (opcode, body) = protocol::read_reply(&mut conn).unwrap();
        assert_eq!(opcode, op::SERIES | op::REPLY);
        let body = String::from_utf8(body).unwrap();
        assert!(body.contains("\"pushes\":1"), "the good OBS landed: {body}");

        conn.write_all(&bad).unwrap();
        let (opcode, body) = protocol::read_reply(&mut conn).unwrap();
        assert_eq!(opcode, op::ERR | op::REPLY);
        assert!(String::from_utf8(body).unwrap().contains("\"budget_remaining\":0"));

        // The third malformed frame exceeds the budget of 2: one final
        // fatal reply, then the close.
        conn.write_all(&bad).unwrap();
        let (opcode, body) = protocol::read_reply(&mut conn).unwrap();
        assert_eq!(opcode, op::ERR | op::REPLY);
        assert!(String::from_utf8(body).unwrap().contains("\"fatal\":true"));
        let mut one = [0u8; 1];
        assert_eq!(conn.read(&mut one).unwrap(), 0, "connection must be closed");

        let status_body = wait_for_counter(&addr, "error_budget_closes", 1);
        assert_eq!(json_counter(&status_body, "malformed_frames"), 3, "{status_body}");
        request_shutdown(&addr);
        let (status, log) = server.join().expect("server thread");
        assert_eq!(status.exit_code(), 0);
        assert!(
            String::from_utf8_lossy(&log).contains("reason=error-budget malformed=3"),
            "close must be logged"
        );
        assert_eq!(status.health.evicted_connections, 1);
    }

    /// Admission control: past `--max-connections` a connection gets one
    /// binary `BUSY` reply with a retry hint, then a close — while the
    /// admitted connection keeps working.
    #[test]
    fn admission_cap_rejects_with_busy() {
        let mut opts = options(Listen::Tcp("127.0.0.1:0".into()));
        opts.max_connections = 1;
        let (server, addr) = spawn_server(opts);
        let mut first = TcpStream::connect(&addr).expect("connect");
        // The STATUS barrier proves the first connection is admitted
        // (active = 1) before the second one arrives.
        first.write_all(&protocol::encode_op(op::STATUS)).unwrap();
        let (opcode, _) = protocol::read_reply(&mut first).unwrap();
        assert_eq!(opcode, op::STATUS | op::REPLY);

        let mut second = TcpStream::connect(&addr).expect("connect");
        second.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let (opcode, body) = protocol::read_reply(&mut second).unwrap();
        assert_eq!(opcode, op::BUSY | op::REPLY);
        let body = String::from_utf8(body).unwrap();
        assert!(body.contains("\"busy\":true"), "{body}");
        assert!(body.contains("\"retry_after_ms\":1000"), "{body}");
        assert!(body.contains("\"max_connections\":1"), "{body}");
        let mut one = [0u8; 1];
        assert_eq!(second.read(&mut one).unwrap(), 0, "rejected connection must close");
        drop(second);

        // The admitted connection is unaffected and can shut us down.
        first.write_all(&protocol::encode_op(op::SHUTDOWN)).unwrap();
        let (opcode, _) = protocol::read_reply(&mut first).unwrap();
        assert_eq!(opcode, op::SHUTDOWN | op::REPLY);
        drop(first);
        let (status, log) = server.join().expect("server thread");
        assert_eq!(status.exit_code(), 0);
        assert_eq!(status.health.busy_rejections, 1);
        let log = String::from_utf8_lossy(&log);
        assert!(log.contains("BUSY rejecting connection"), "{log}");
        assert!(log.contains("1 busy rejection(s)"), "health line must count it:\n{log}");
    }

    /// The idle budget: a connection that goes quiet is evicted with a
    /// courtesy notice, counted, and the daemon keeps serving others.
    #[test]
    fn idle_connections_are_evicted() {
        let mut opts = options(Listen::Tcp("127.0.0.1:0".into()));
        opts.idle_timeout = 1;
        let (server, addr) = spawn_server(opts);
        let mut idle = TcpStream::connect(&addr).expect("connect");
        idle.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // One complete frame locks binary mode; then silence.
        idle.write_all(&protocol::encode_obs(1, 1.0)).unwrap();
        let (opcode, body) = protocol::read_reply(&mut idle).expect("eviction notice");
        assert_eq!(opcode, op::ERR | op::REPLY);
        let body = String::from_utf8(body).unwrap();
        assert!(body.contains("idle timeout"), "{body}");
        assert!(body.contains("\"fatal\":true"), "{body}");
        let mut one = [0u8; 1];
        assert_eq!(idle.read(&mut one).unwrap(), 0, "evicted connection must close");

        let status_body = wait_for_counter(&addr, "idle_timeouts", 1);
        assert_eq!(json_counter(&status_body, "idle_timeout_secs"), 1, "{status_body}");
        request_shutdown(&addr);
        let (status, log) = server.join().expect("server thread");
        assert_eq!(status.exit_code(), 0);
        assert_eq!(status.health.evicted_connections, 1);
        assert!(String::from_utf8_lossy(&log).contains("reason=idle-timeout"), "close logged");
    }

    /// The newline-JSON length bound (the satellite case): a line past
    /// MAX_FRAME_LEN with no terminator is fatal — one structured error
    /// line, then the close, instead of unbounded buffering.
    #[test]
    fn unterminated_oversized_json_line_is_fatal() {
        let (server, addr) = spawn_server(options(Listen::Tcp("127.0.0.1:0".into())));
        let conn = TcpStream::connect(&addr).expect("connect");
        let mut writer = conn.try_clone().expect("clone");
        let mut reader = BufReader::new(conn);
        writer.write_all(&vec![b'{'; MAX_FRAME_LEN as usize + 2]).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).expect("fatal error line");
        assert!(line.contains("no terminator"), "{line}");
        assert!(line.contains("\"fatal\":true"), "{line}");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection must close");

        let status_body = wait_for_counter(&addr, "error_budget_closes", 1);
        assert!(json_counter(&status_body, "malformed_frames") >= 1, "{status_body}");
        request_shutdown(&addr);
        let (status, log) = server.join().expect("server thread");
        assert_eq!(status.exit_code(), 0);
        assert!(String::from_utf8_lossy(&log).contains("reason=protocol-fatal"), "close logged");
    }

    #[test]
    fn resume_without_dir_is_a_usage_error() {
        let mut opts = options(Listen::Tcp("127.0.0.1:0".into()));
        opts.resume = true;
        let mut out = Vec::new();
        assert!(matches!(run_serve(&opts, &mut out), Err(CliError::Usage(_))));
    }
}
