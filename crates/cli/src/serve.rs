//! `moche serve`: the monitor-fleet daemon. A thin I/O shell — listener,
//! wire protocol, worker threads, checkpoint cadence — around
//! [`moche_stream::MonitorFleet`], which owns all the actual monitoring.
//!
//! ## Thread topology
//!
//! ```text
//!              accept loop ── one handler thread per connection
//!                                   │ routes by shard_of(series)
//!                     bounded sync_channel rings (backpressure)
//!                                   ▼
//!   shard worker 0..N  — each owns one FleetShard outright:
//!     push (never blocks on explains) → bounded explain queue →
//!     drained when the ring is idle → periodic atomic checkpoints
//!                                   │ log lines (unbounded mpsc)
//!                                   ▼
//!              the calling thread: single writer pumping the log
//! ```
//!
//! Backpressure is the ring: a handler's `send` blocks when a shard's
//! ring is full, which in turn stalls that client's TCP stream — an
//! accepted observation is never dropped (property-tested in
//! `moche-stream`). Slow explains shed *explanation work*, never alarms
//! and never pushes.
//!
//! ## Crash safety
//!
//! Each worker checkpoints its shard every `--checkpoint-every` accepted
//! observations (atomic write: stage + fsync + rename), and once more on
//! graceful shutdown. After a `kill -9`, restarting with `--resume` loads
//! every shard file and replays from the per-series `pushes` counters —
//! the fleet raises exactly the alarms an uninterrupted run would have
//! (see the `fleet-soak` CI job). Worker panics are caught and isolated
//! to the one series being pushed; the daemon keeps serving.

use crate::commands::{HealthReport, RunStatus};
use crate::io::CliError;
use crate::protocol::{self, op, JsonObject, ProtocolError, Request};
use moche_stream::{
    shard_of, ExplainedAlarm, FleetConfig, FleetPush, FleetShard, FleetStats, MonitorConfig,
    MonitorFleet, SeriesStats,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address (`host:port`; port `0` picks a free port, printed on
    /// the startup line).
    Tcp(String),
    /// A unix-domain socket path (removed and re-created at startup).
    Unix(PathBuf),
}

/// Parsed `moche serve` options.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Listen address.
    pub listen: Listen,
    /// Per-series window size `w`.
    pub window: usize,
    /// KS significance level.
    pub alpha: f64,
    /// Worker (= shard) count; `0` means one per available core, capped
    /// at 8.
    pub workers: usize,
    /// Compute explanations on alarms (deferred, off the push path).
    pub explain: bool,
    /// Phase-1 size only on alarms.
    pub size_only: bool,
    /// Per-shard bound on the deferred explain queue.
    pub explain_queue: usize,
    /// Per-shard ingest ring capacity (the backpressure bound).
    pub ring: usize,
    /// Fleet-wide cap on tracked series (`0` = unbounded).
    pub max_series: usize,
    /// Directory for per-shard checkpoint files.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in accepted observations per shard (`None` =
    /// the window size).
    pub checkpoint_every: Option<u64>,
    /// Load shard checkpoints from `checkpoint_dir` before serving.
    pub resume: bool,
    /// Spectral-Residual filter window override.
    pub sr_filter_window: Option<usize>,
    /// Spectral-Residual score window override.
    pub sr_score_window: Option<usize>,
}

/// What a shard worker can be asked to do. Observations and queries share
/// one ring so a query replies only after every earlier observation from
/// the same connection was applied — the write barrier the soak harness
/// relies on to read exact per-series offsets.
enum WorkerMsg {
    Obs { series: u64, value: f64 },
    Query { series: u64, reply: mpsc::Sender<Option<SeriesStats>> },
}

/// Immutable run context shared by the connection handlers.
struct ServeContext {
    stats: Arc<FleetStats>,
    shutdown: AtomicBool,
    cfg: FleetConfig,
    workers: usize,
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get().min(8))
}

/// Runs the daemon until a `SHUTDOWN` request, writing the startup line,
/// alarm log, and final summary to `out`.
///
/// # Errors
///
/// Bind/config/resume failures. Once serving, connection-level errors are
/// logged and survived; only a failure to write the log stream itself
/// ends the run early.
pub fn run_serve(opts: &ServeOptions, out: &mut dyn Write) -> Result<RunStatus, CliError> {
    arm_faults_from_env(out)?;

    let mut monitor = MonitorConfig::new(opts.window, opts.alpha);
    monitor.explain_on_drift = opts.explain;
    monitor.size_only = opts.size_only;
    if let Some(q) = opts.sr_filter_window {
        monitor.sr_filter_window = q;
    }
    if let Some(z) = opts.sr_score_window {
        monitor.sr_score_window = z;
    }
    let workers = if opts.workers == 0 { default_workers() } else { opts.workers };
    let mut fleet_cfg = FleetConfig::new(workers, monitor);
    fleet_cfg.explain_queue = opts.explain_queue;
    fleet_cfg.max_series = if opts.max_series == 0 { usize::MAX } else { opts.max_series };

    let fleet = match (&opts.checkpoint_dir, opts.resume) {
        (Some(dir), true) if dir.is_dir() => {
            let fleet = MonitorFleet::resume_from_dir(fleet_cfg, dir)?;
            writeln!(
                out,
                "moche serve: resumed {} series from {}",
                fleet.series_count(),
                dir.display()
            )?;
            fleet
        }
        (None, true) => {
            return Err(CliError::Usage("--resume requires --checkpoint-dir".into()));
        }
        _ => MonitorFleet::new(fleet_cfg)?,
    };
    let checkpoint_every = opts.checkpoint_every.unwrap_or(opts.window as u64).max(1);
    if let Some(dir) = &opts.checkpoint_dir {
        std::fs::create_dir_all(dir)
            .map_err(|source| CliError::Io { path: dir.display().to_string(), source })?;
    }

    let listener = Listener::bind(&opts.listen)?;
    writeln!(out, "moche serve: listening on {}", listener.describe())?;
    writeln!(
        out,
        "moche serve: {} worker(s), window {}, alpha {}, explain queue {}, ring {}",
        workers, opts.window, opts.alpha, opts.explain_queue, opts.ring
    )?;
    out.flush()?;

    let (cfg, shards, stats) = fleet.into_shards();
    let ctx = ServeContext { stats, shutdown: AtomicBool::new(false), cfg, workers };
    let (log_tx, log_rx) = mpsc::channel::<String>();

    std::thread::scope(|s| -> Result<(), CliError> {
        let mut senders: Vec<SyncSender<WorkerMsg>> = Vec::with_capacity(workers);
        for shard in shards {
            let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(opts.ring.max(1));
            senders.push(tx);
            let log = log_tx.clone();
            let dir = opts.checkpoint_dir.clone();
            s.spawn(move || worker_loop(shard, rx, dir.as_deref(), checkpoint_every, &log));
        }
        {
            let ctx = &ctx;
            let listener = &listener;
            let log = log_tx.clone();
            s.spawn(move || accept_loop(s, listener, senders, ctx, &log));
        }
        drop(log_tx);

        // This thread is the single log writer: everything the workers
        // and handlers report lands here, in one ordered stream.
        let mut write_error: Option<std::io::Error> = None;
        for line in log_rx {
            if write_error.is_none() {
                if let Err(e) = writeln!(out, "{line}").and_then(|()| out.flush()) {
                    // Keep draining so the threads can finish; report the
                    // first write failure afterwards.
                    write_error = Some(e);
                }
            }
        }
        match write_error {
            Some(e) => Err(CliError::Write(e)),
            None => Ok(()),
        }
    })?;
    listener.cleanup();

    let view = ctx.stats.view();
    let health = HealthReport {
        worker_panics: view.worker_panics as usize,
        skipped_observations: view.skipped_observations as usize,
        degraded_preferences: view.degraded_preferences as usize,
        checkpoints_written: view.checkpoints_written as usize,
    };
    writeln!(
        out,
        "moche serve: shutdown complete — {} series, {} accepted, {} alarm(s), \
         {} explained, {} shed",
        view.series, view.accepted, view.alarms, view.explained, view.explain_dropped
    )?;
    writeln!(out, "{}", health.summary())?;
    out.flush()?;
    Ok(RunStatus { window_errors: 0, windows_explained: view.explained as usize, health })
}

/// One shard worker: drain the ring, answer queries in arrival order,
/// explain when idle, checkpoint on cadence and once at the end.
fn worker_loop(
    mut shard: FleetShard,
    rx: Receiver<WorkerMsg>,
    dir: Option<&Path>,
    every: u64,
    log: &mpsc::Sender<String>,
) {
    let mut last_checkpoint = shard.accepted();
    loop {
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(WorkerMsg::Obs { series, value }) => {
                apply_obs(&mut shard, series, value, log);
                if dir.is_some() && shard.accepted() - last_checkpoint >= every {
                    checkpoint_now(&shard, dir, log);
                    last_checkpoint = shard.accepted();
                }
            }
            Ok(WorkerMsg::Query { series, reply }) => {
                let _ = reply.send(shard.series_stats(series));
            }
            Err(RecvTimeoutError::Timeout) => {
                // Idle: answer a few deferred alarms without ever keeping
                // the ring waiting long.
                shard.drain_explains(8, |alarm| log_explained(alarm, log));
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Shutdown: answer everything still queued, then persist the shard.
    while shard.drain_explains(64, |alarm| log_explained(alarm, log)) > 0 {}
    if dir.is_some() {
        checkpoint_now(&shard, dir, log);
    }
    let _ = log.send(format!(
        "worker {}: exiting with {} series, {} accepted",
        shard.id(),
        shard.series_count(),
        shard.accepted()
    ));
}

fn apply_obs(shard: &mut FleetShard, series: u64, value: f64, log: &mpsc::Sender<String>) {
    match shard.push(series, value) {
        Ok(FleetPush::Warming | FleetPush::Stable) => {}
        Ok(FleetPush::Alarm { outcome, at_push, explain_queued }) => {
            let _ = log.send(format!(
                "ALARM series={series} push={at_push} stat={:.6} threshold={:.6}{}",
                outcome.statistic,
                outcome.threshold,
                if explain_queued { "" } else { " explain=shed" }
            ));
        }
        Ok(FleetPush::Quarantined) => {
            let _ =
                log.send(format!("PANIC series={series}: worker panic caught, series quarantined"));
        }
        Ok(FleetPush::AtCapacity) => {
            let _ = log.send(format!("REJECT series={series}: fleet at --max-series capacity"));
        }
        Err(e) => {
            let _ = log.send(format!("SKIP series={series}: {e}"));
        }
    }
}

fn log_explained(alarm: &ExplainedAlarm<'_>, log: &mpsc::Sender<String>) {
    let mut line = format!("EXPLAIN series={} push={}", alarm.series, alarm.at_push);
    if let Some(e) = alarm.explanation {
        line.push_str(&format!(" k={} after={:.6}", e.indices().len(), e.outcome_after.statistic));
    }
    if let Some(s) = alarm.size {
        line.push_str(&format!(" k={} k_hat={}", s.k, s.k_hat));
    }
    if alarm.degraded {
        line.push_str(" degraded=identity");
    }
    let _ = log.send(line);
}

fn checkpoint_now(shard: &FleetShard, dir: Option<&Path>, log: &mpsc::Sender<String>) {
    let Some(dir) = dir else { return };
    match shard.checkpoint(dir) {
        Ok(()) => {
            let _ = log.send(format!(
                "CHECKPOINT shard={} series={} accepted={}",
                shard.id(),
                shard.series_count(),
                shard.accepted()
            ));
        }
        Err(e) => {
            let _ = log.send(format!("CHECKPOINT shard={} FAILED: {e}", shard.id()));
        }
    }
}

/// Accepts connections until shutdown, spawning one handler per
/// connection on the same scope. The `serve.accept` failpoint injects a
/// simulated accept failure (logged, then the loop keeps listening).
fn accept_loop<'scope>(
    s: &'scope std::thread::Scope<'scope, '_>,
    listener: &'scope Listener,
    senders: Vec<SyncSender<WorkerMsg>>,
    ctx: &'scope ServeContext,
    log: &mpsc::Sender<String>,
) {
    while !ctx.shutdown.load(Ordering::SeqCst) {
        if let Some(moche_core::fault::Fault::Error) = moche_core::fault::failpoint("serve.accept")
        {
            let _ = log.send("ACCEPT failed (injected): retrying".to_string());
            continue;
        }
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                let _ = log.send(format!("ACCEPT failed: {e}"));
                continue;
            }
        };
        if ctx.shutdown.load(Ordering::SeqCst) {
            break; // the shutdown self-connect, or a straggler
        }
        let senders = senders.clone();
        let log = log.clone();
        s.spawn(move || {
            if let Err(e) = handle_connection(conn, &senders, ctx, listener, &log) {
                let _ = log.send(format!("CONNECTION error: {e}"));
            }
        });
    }
    // Dropping `senders` (the last clones once handlers finish) lets the
    // workers drain their rings and exit.
}

/// Serves one connection in whichever wire mode its first byte selects.
fn handle_connection(
    conn: Conn,
    senders: &[SyncSender<WorkerMsg>],
    ctx: &ServeContext,
    listener: &Listener,
    log: &mpsc::Sender<String>,
) -> Result<(), ProtocolError> {
    let mut reader = BufReader::new(conn);
    let first = match reader.fill_buf() {
        Ok([]) => return Ok(()), // connected and left
        Ok(buf) => buf[0],
        Err(e) => return Err(ProtocolError::from(e)),
    };
    let json_mode = first == b'{';
    let mut line = String::new();
    loop {
        let request = if json_mode {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()),
                Ok(_) => protocol::parse_json_request(&line)?,
                Err(e) => return Err(ProtocolError::from(e)),
            }
        } else {
            match protocol::read_request(&mut reader) {
                Ok(request) => request,
                Err(ProtocolError::Closed) => return Ok(()),
                Err(e) => return Err(e),
            }
        };
        match request {
            Request::Obs { series, value } => {
                let shard = shard_of(series, senders.len());
                // A full ring blocks here: backpressure reaches the
                // client through its stalled stream.
                if senders[shard].send(WorkerMsg::Obs { series, value }).is_err() {
                    return Ok(()); // shutting down
                }
            }
            Request::Status => {
                let body = status_json(ctx);
                respond(&mut reader, json_mode, op::STATUS, &body)?;
            }
            Request::Series { series } => {
                let body = series_json(series, senders, ctx);
                respond(&mut reader, json_mode, op::SERIES, &body)?;
            }
            Request::Shutdown => {
                let body = status_json(ctx);
                respond(&mut reader, json_mode, op::SHUTDOWN, &body)?;
                let _ = log.send("SHUTDOWN requested".to_string());
                ctx.shutdown.store(true, Ordering::SeqCst);
                listener.unblock_accept();
                return Ok(());
            }
        }
    }
}

/// Writes one reply in the connection's wire mode.
fn respond(
    reader: &mut BufReader<Conn>,
    json_mode: bool,
    opcode: u8,
    body: &str,
) -> Result<(), ProtocolError> {
    let conn = reader.get_mut();
    if json_mode {
        conn.write_all(body.as_bytes())?;
        conn.write_all(b"\n")?;
        conn.flush()?;
    } else {
        protocol::write_reply(conn, opcode, body)?;
    }
    Ok(())
}

/// The status endpoint body: every fleet counter plus the run
/// configuration (documented in the README "Fleet service" section).
fn status_json(ctx: &ServeContext) -> String {
    let view = ctx.stats.view();
    JsonObject::new()
        .field_u64("series", view.series)
        .field_u64("accepted", view.accepted)
        .field_u64("skipped_observations", view.skipped_observations)
        .field_u64("alarms", view.alarms)
        .field_u64("explained", view.explained)
        .field_u64("explain_dropped", view.explain_dropped)
        .field_u64("degraded_preferences", view.degraded_preferences)
        .field_u64("worker_panics", view.worker_panics)
        .field_u64("quarantined_series", view.quarantined_series)
        .field_u64("rejected_at_capacity", view.rejected_at_capacity)
        .field_u64("checkpoints_written", view.checkpoints_written)
        .field_u64("checkpoint_failures", view.checkpoint_failures)
        .field_bool("clean", view.is_clean())
        .field_u64("workers", ctx.workers as u64)
        .field_u64("window", ctx.cfg.monitor.window as u64)
        .field_f64("alpha", ctx.cfg.monitor.alpha)
        .build()
}

fn series_json(series: u64, senders: &[SyncSender<WorkerMsg>], ctx: &ServeContext) -> String {
    let shard = shard_of(series, senders.len());
    let (reply_tx, reply_rx) = mpsc::channel();
    let stats = if ctx.shutdown.load(Ordering::SeqCst) {
        None
    } else if senders[shard].send(WorkerMsg::Query { series, reply: reply_tx }).is_ok() {
        reply_rx.recv().ok().flatten()
    } else {
        None
    };
    match stats {
        Some(stats) => JsonObject::new()
            .field_u64("series", series)
            .field_bool("found", true)
            .field_u64("shard", stats.shard as u64)
            .field_u64("pushes", stats.pushes)
            .field_u64("alarms", stats.alarms)
            .field_u64("degraded_preferences", stats.degraded_preferences)
            .build(),
        None => JsonObject::new().field_u64("series", series).field_bool("found", false).build(),
    }
}

/// The daemon's listening socket, TCP or unix-domain.
enum Listener {
    Tcp(TcpListener, std::net::SocketAddr),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn bind(listen: &Listen) -> Result<Self, CliError> {
        match listen {
            Listen::Tcp(addr) => {
                let listener = TcpListener::bind(addr)
                    .map_err(|source| CliError::Io { path: addr.clone(), source })?;
                let local = listener
                    .local_addr()
                    .map_err(|source| CliError::Io { path: addr.clone(), source })?;
                Ok(Listener::Tcp(listener, local))
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                let _ = std::fs::remove_file(path); // a previous run's socket
                let listener = UnixListener::bind(path)
                    .map_err(|source| CliError::Io { path: path.display().to_string(), source })?;
                Ok(Listener::Unix(listener, path.clone()))
            }
            #[cfg(not(unix))]
            Listen::Unix(path) => Err(CliError::Usage(format!(
                "--unix {} is not supported on this platform",
                path.display()
            ))),
        }
    }

    fn describe(&self) -> String {
        match self {
            Listener::Tcp(_, local) => local.to_string(),
            #[cfg(unix)]
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(listener, _) => listener.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(listener, _) => listener.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }

    /// Wakes a blocked `accept` after the shutdown flag is set, by
    /// connecting to ourselves. Failure is harmless — the accept loop
    /// also re-checks the flag on every real connection.
    fn unblock_accept(&self) {
        match self {
            Listener::Tcp(_, local) => {
                let _ = TcpStream::connect_timeout(local, Duration::from_millis(250));
            }
            #[cfg(unix)]
            Listener::Unix(_, path) => {
                let _ = UnixStream::connect(path);
            }
        }
    }

    fn cleanup(&self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accepted connection.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Arms failpoints from the `MOCHE_FAULTS` environment variable so the
/// CI soak job can drive the daemon's seams from outside the process.
/// Format: comma-separated `name=fault[:skip[:times]]` with `fault` one
/// of `panic`, `error`, or `truncateN` (N = bytes kept). Only honoured
/// under the `fault-injection` feature; otherwise a set variable gets a
/// loud warning instead of silently testing nothing.
fn arm_faults_from_env(out: &mut dyn Write) -> Result<(), CliError> {
    let Ok(spec) = std::env::var("MOCHE_FAULTS") else { return Ok(()) };
    if spec.trim().is_empty() {
        return Ok(());
    }
    #[cfg(feature = "fault-injection")]
    {
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, rest) = part.split_once('=').ok_or_else(|| {
                CliError::Usage(format!("MOCHE_FAULTS entry '{part}' is not name=fault"))
            })?;
            let mut fields = rest.split(':');
            let fault = fields.next().unwrap_or_default();
            let fault = if fault == "panic" {
                moche_core::fault::Fault::Panic
            } else if fault == "error" {
                moche_core::fault::Fault::Error
            } else if let Some(n) = fault.strip_prefix("truncate") {
                let n = n.parse().map_err(|_| {
                    CliError::Usage(format!("MOCHE_FAULTS truncate length '{n}' is not a number"))
                })?;
                moche_core::fault::Fault::TruncateWrite(n)
            } else {
                return Err(CliError::Usage(format!("MOCHE_FAULTS unknown fault '{fault}'")));
            };
            let parse_count = |field: Option<&str>, what: &str| -> Result<usize, CliError> {
                match field {
                    None => Ok(if what == "times" { 1 } else { 0 }),
                    Some(raw) => raw.parse().map_err(|_| {
                        CliError::Usage(format!("MOCHE_FAULTS {what} '{raw}' is not a number"))
                    }),
                }
            };
            let skip = parse_count(fields.next(), "skip")?;
            let times = parse_count(fields.next(), "times")?;
            moche_core::fault::arm(name, fault, skip, times);
            writeln!(out, "moche serve: armed failpoint {name} ({rest})")?;
        }
        Ok(())
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        writeln!(
            out,
            "moche serve: WARNING: MOCHE_FAULTS is set but this build has no \
             fault-injection feature; nothing armed"
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options(listen: Listen) -> ServeOptions {
        ServeOptions {
            listen,
            window: 16,
            alpha: 0.05,
            workers: 2,
            explain: true,
            size_only: false,
            explain_queue: 64,
            ring: 128,
            max_series: 0,
            checkpoint_dir: None,
            checkpoint_every: None,
            resume: false,
            sr_filter_window: None,
            sr_score_window: None,
        }
    }

    /// End-to-end over a real TCP socket, in-process: push a drifting
    /// series in binary mode, check status and per-series replies, shut
    /// down gracefully, and verify the final RunStatus health.
    #[test]
    fn serve_round_trip_over_tcp() {
        let opts = options(Listen::Tcp("127.0.0.1:0".into()));
        let mut out = Vec::new();
        let (addr_tx, addr_rx) = mpsc::channel::<String>();
        let server = std::thread::spawn(move || {
            // A pipe-like writer that forwards the first line (with the
            // bound address) as soon as it is flushed.
            struct FirstLine {
                buf: Vec<u8>,
                sent: bool,
                tx: mpsc::Sender<String>,
            }
            impl Write for FirstLine {
                fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                    self.buf.extend_from_slice(b);
                    Ok(b.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    if !self.sent {
                        if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                            let line = String::from_utf8_lossy(&self.buf[..pos]).into_owned();
                            let addr = line.rsplit(' ').next().unwrap_or_default().to_string();
                            self.sent = true;
                            let _ = self.tx.send(addr);
                        }
                    }
                    Ok(())
                }
            }
            let mut first = FirstLine { buf: Vec::new(), sent: false, tx: addr_tx };
            let status = run_serve(&opts, &mut first).expect("serve runs");
            (status, first.buf)
        });
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).expect("startup line");
        let mut conn = TcpStream::connect(&addr).expect("connect");
        // A level shift after 200 stationary observations must alarm.
        for i in 0..400u64 {
            let value = ((i * 13) % 11) as f64 + if i < 200 { 0.0 } else { 30.0 };
            conn.write_all(&protocol::encode_obs(9, value)).unwrap();
        }
        conn.write_all(&protocol::encode_series(9)).unwrap();
        conn.flush().unwrap();
        let (opcode, body) = protocol::read_reply(&mut conn).unwrap();
        assert_eq!(opcode, op::SERIES | op::REPLY);
        let body = String::from_utf8(body).unwrap();
        assert!(body.contains("\"found\":true"), "series must exist: {body}");
        assert!(body.contains("\"pushes\":400"), "all pushes must be applied: {body}");
        conn.write_all(&protocol::encode_op(op::STATUS)).unwrap();
        let (opcode, body) = protocol::read_reply(&mut conn).unwrap();
        assert_eq!(opcode, op::STATUS | op::REPLY);
        let body = String::from_utf8(body).unwrap();
        assert!(body.contains("\"accepted\":400"), "status: {body}");
        assert!(body.contains("\"worker_panics\":0"), "status: {body}");
        conn.write_all(&protocol::encode_op(op::SHUTDOWN)).unwrap();
        let (opcode, _) = protocol::read_reply(&mut conn).unwrap();
        assert_eq!(opcode, op::SHUTDOWN | op::REPLY);
        drop(conn);
        let (status, log) = server.join().expect("server thread");
        out.extend_from_slice(&log);
        let log = String::from_utf8_lossy(&out);
        assert!(log.contains("ALARM series=9"), "the shift must alarm:\n{log}");
        assert!(log.contains("shutdown complete"), "graceful exit line:\n{log}");
        assert_eq!(status.exit_code(), 0);
        assert_eq!(status.health.worker_panics, 0);
    }

    /// The JSON wire mode speaks the same protocol.
    #[test]
    fn serve_round_trip_over_json_lines() {
        let opts = options(Listen::Tcp("127.0.0.1:0".into()));
        let (addr_tx, addr_rx) = mpsc::channel::<String>();
        let server = std::thread::spawn(move || {
            struct Tap {
                tx: Option<mpsc::Sender<String>>,
                buf: Vec<u8>,
            }
            impl Write for Tap {
                fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                    self.buf.extend_from_slice(b);
                    Ok(b.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    if self.tx.is_some() && self.buf.contains(&b'\n') {
                        let line = self.buf.split(|&b| b == b'\n').next().unwrap_or_default();
                        let line = String::from_utf8_lossy(line);
                        let addr = line.rsplit(' ').next().unwrap_or_default().to_string();
                        if let Some(tx) = self.tx.take() {
                            let _ = tx.send(addr);
                        }
                    }
                    Ok(())
                }
            }
            let mut tap = Tap { tx: Some(addr_tx), buf: Vec::new() };
            run_serve(&opts, &mut tap).expect("serve runs")
        });
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).expect("startup line");
        let conn = TcpStream::connect(&addr).expect("connect");
        let mut writer = conn.try_clone().expect("clone");
        let mut reader = BufReader::new(conn);
        for i in 0..50 {
            writeln!(writer, "{{\"series\":1,\"value\":{}.0}}", i % 7).unwrap();
        }
        writeln!(writer, "{{\"cmd\":\"series\",\"series\":1}}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"pushes\":50"), "JSON reply: {line}");
        writeln!(writer, "{{\"cmd\":\"shutdown\"}}").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"accepted\":50"), "shutdown reply: {line}");
        drop((writer, reader));
        let status = server.join().expect("server thread");
        assert_eq!(status.exit_code(), 0);
    }

    #[test]
    fn resume_without_dir_is_a_usage_error() {
        let mut opts = options(Listen::Tcp("127.0.0.1:0".into()));
        opts.resume = true;
        let mut out = Vec::new();
        assert!(matches!(run_serve(&opts, &mut out), Err(CliError::Usage(_))));
    }
}
