//! Hand-rolled argument parsing for the `moche` binary (keeping the
//! dependency set to the approved list — no clap).

use crate::io::CliError;
use std::path::PathBuf;

/// How the preference list is derived for `moche explain`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PreferenceSource {
    /// Spectral-Residual outlier scores over the test window (the paper's
    /// time-series protocol) — the default.
    #[default]
    SpectralResidual,
    /// Scores from the test file's second column (or a separate file),
    /// descending.
    ScoreColumn,
    /// Scores from an explicit file, descending.
    ScoreFile(PathBuf),
    /// Test values descending (largest first).
    ValueDesc,
    /// Test values ascending (smallest first).
    ValueAsc,
    /// Input order.
    Identity,
}

/// Output format for machine consumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable report (default).
    #[default]
    Text,
    /// One `index,value` line per selected point.
    Csv,
}

/// The parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `moche test REF TEST [--alpha A]`
    Test {
        /// Reference data file.
        reference: PathBuf,
        /// Test data file.
        test: PathBuf,
        /// Significance level.
        alpha: f64,
    },
    /// `moche size REF TEST [--alpha A]`
    Size {
        /// Reference data file.
        reference: PathBuf,
        /// Test data file.
        test: PathBuf,
        /// Significance level.
        alpha: f64,
    },
    /// `moche explain REF TEST [--alpha A] [--preference SRC] [--format F]`
    Explain {
        /// Reference data file.
        reference: PathBuf,
        /// Test data file.
        test: PathBuf,
        /// Significance level.
        alpha: f64,
        /// Preference derivation.
        preference: PreferenceSource,
        /// Output format.
        format: OutputFormat,
    },
    /// `moche batch REF WINDOWS [--alpha A] [--threads N] [--preference SRC]
    /// [--format F] [--stream] [--size-only]`
    Batch {
        /// Reference data file (shared by every window).
        reference: PathBuf,
        /// Windows file: one test window per line, comma/space separated.
        windows: PathBuf,
        /// Significance level.
        alpha: f64,
        /// Worker threads (0 = all cores).
        threads: usize,
        /// Preference derivation, applied per window.
        preference: PreferenceSource,
        /// Output format.
        format: OutputFormat,
        /// Stream windows through the bounded-memory engine instead of
        /// loading the file up front.
        stream: bool,
        /// Phase 1 only: report each window's explanation size `k` without
        /// constructing the explanation.
        size_only: bool,
    },
    /// `moche batch2d REF WINDOWS [--alpha A] [--threads N] [--format F]
    /// [--stream]`
    Batch2d {
        /// Reference point file (shared by every window): one `x y` (or
        /// `x,y`) pair per line.
        reference: PathBuf,
        /// Windows file: one window per line as a flat coordinate list
        /// `x1 y1 x2 y2 ...`.
        windows: PathBuf,
        /// Significance level.
        alpha: f64,
        /// Worker threads (0 = all cores).
        threads: usize,
        /// Output format.
        format: OutputFormat,
        /// Stream windows through the bounded-memory 2-D engine instead of
        /// loading the file up front.
        stream: bool,
    },
    /// `moche monitor SERIES --window W [--alpha A] [--no-explain]
    /// [--size-only] [--checkpoint PATH [--checkpoint-every N]]
    /// [--resume PATH]`
    Monitor {
        /// Series data file.
        series: PathBuf,
        /// Window size (`None` only when resuming — the snapshot carries
        /// it).
        window: Option<usize>,
        /// Significance level.
        alpha: f64,
        /// Disable explanations on alarms.
        explain: bool,
        /// Report only the Phase-1 explanation size per alarm.
        size_only: bool,
        /// Write crash-safe snapshots to this path.
        checkpoint: Option<PathBuf>,
        /// Checkpoint cadence in accepted observations (default: the
        /// window size).
        checkpoint_every: Option<u64>,
        /// Restore monitor state from this snapshot before feeding the
        /// series.
        resume: Option<PathBuf>,
    },
    /// `moche serve --listen ADDR | --unix PATH [--window W] [--alpha A]
    /// [--workers N] [--no-explain] [--size-only] [--explain-queue N]
    /// [--ring N] [--max-series N] [--checkpoint-dir DIR
    /// [--checkpoint-every N]] [--resume] [--sr-filter-window Q]
    /// [--sr-score-window Z]`
    Serve(crate::serve::ServeOptions),
    /// `moche help` or `--help`.
    Help,
}

/// The usage string printed by `moche help`.
pub const USAGE: &str = "\
moche — counterfactual explanations on failed Kolmogorov-Smirnov tests

USAGE:
  moche test    <REF> <TEST> [--alpha A]
      Run the two-sample KS test between two data files.
  moche size    <REF> <TEST> [--alpha A]
      Phase 1 only: the minimum explanation size of the failed test.
  moche explain <REF> <TEST> [--alpha A] [--preference SRC] [--format text|csv]
      Find the most comprehensible counterfactual explanation.
      SRC: sr (Spectral Residual, default) | scores (test file's 2nd column)
           | score-file:PATH | value-desc | value-asc | identity
  moche batch   <REF> <WINDOWS> [--alpha A] [--threads N] [--preference SRC]
                [--format text|csv] [--stream] [--size-only]
      Explain many failed tests against one shared reference, in parallel.
      WINDOWS holds one test window per line (comma/space separated).
      SRC: sr (default) | value-desc | value-asc | identity
      --stream reads windows lazily through the bounded-memory streaming
      engine; --size-only reports each window's explanation size k
      (Phase 1 only) without constructing the explanation.
  moche batch2d <REF> <WINDOWS> [--alpha A] [--threads N] [--format text|csv]
                [--stream]
      Explain many failed 2-D (Fasano-Franceschini) KS tests against one
      shared reference of points. REF holds one 'x y' (or 'x,y') point per
      line; WINDOWS holds one window per line as a flat coordinate list
      'x1 y1 x2 y2 ...' (an odd coordinate count is a parse error).
      Explanations are reported as 0-based point offsets into the window
      (csv rows are 'window,index'). Points have no scalar order, so the
      preference is input order; --preference identity is the only
      accepted source. --stream reads windows lazily through the
      bounded-memory 2-D streaming engine.
  moche monitor <SERIES> --window W [--alpha A] [--no-explain] [--size-only]
                [--checkpoint PATH [--checkpoint-every N]] [--resume PATH]
      Stream a series through paired sliding windows; explain each alarm.
      --checkpoint writes crash-safe snapshots; --resume restores one and
      continues the run exactly where it left off (alarms are identical
      to an uninterrupted run over the same observations).
  moche serve   --listen HOST:PORT | --unix PATH --window W [--alpha A]
                [--workers N] [--no-explain] [--size-only]
                [--explain-queue N] [--ring N] [--max-series N]
                [--max-connections N] [--idle-timeout S] [--io-timeout S]
                [--error-budget N]
                [--checkpoint-dir DIR [--checkpoint-every N]] [--resume]
                [--sr-filter-window Q] [--sr-score-window Z]
      Run the monitor-fleet daemon: many independent series multiplexed
      over a small worker pool, ingested over a length-prefixed binary
      (or newline-JSON) protocol. Alarms are logged to stdout; explains
      run on a bounded deferred queue so they never block ingestion.
      Connections are supervised: idle peers, mid-frame stalls, and
      clients that stop reading replies are evicted on deadline, excess
      connections past --max-connections get a BUSY reply, and malformed
      frames get structured errors until --error-budget is spent.
      With --checkpoint-dir each worker checkpoints its shard
      atomically; --resume reloads every shard file at startup, so a
      kill -9'd daemon continues with zero lost alarms once its clients
      replay from the per-series 'pushes' offsets (query them with the
      SERIES request). A SHUTDOWN request, SIGTERM, or SIGINT drains
      gracefully: stop accepting, finish in-flight work, write final
      checkpoints, exit 0.

Data files: one number per line; '#' starts a comment; for 'explain
--preference scores' each line may be 'value,score'.

OPTIONS:
  --alpha A     significance level (default 0.05)
  --format F    explain/batch output: text (default) or csv
  --threads N   batch: worker threads (default 0 = all cores)
  --window W    monitor window size (required for monitor)
  --no-explain  monitor: raise alarms without computing explanations
  --stream      batch: bounded-memory streaming ingestion (results are
                printed as they are delivered; memory stays constant
                however long the windows file is)
  --size-only   batch/monitor: Phase-1 size k only, skip Phase 2
  --checkpoint PATH
                monitor: write a checksummed snapshot of the monitor state
                to PATH every N accepted observations and once at the end
                of the run; each write is atomic (temp file + fsync +
                rename), so PATH always holds a complete snapshot
  --checkpoint-every N
                monitor: checkpoint cadence in accepted observations
                (default: the window size); requires --checkpoint
  --resume PATH monitor: restore state from a snapshot before feeding the
                series; the snapshot's configuration (window, alpha,
                explain mode) takes precedence, and a --window given
                alongside must match the snapshot's
  --listen HOST:PORT
                serve: bind a TCP listener (port 0 picks a free port; the
                bound address is printed on the startup line)
  --unix PATH   serve: bind a unix-domain socket instead of TCP
  --workers N   serve: shard/worker count (default 0 = one per core,
                capped at 8); series are hash-sharded across workers
  --explain-queue N
                serve: per-shard bound on the deferred alarm-explain
                queue (default 64); a full queue sheds explanation work,
                never alarms
  --ring N      serve: per-shard ingest ring capacity (default 1024); a
                full ring applies backpressure to the client
  --max-series N
                serve: reject new series beyond N (default 0 = unbounded)
  --max-connections N
                serve: cap on concurrently served connections (default
                1024; 0 = unbounded); a connection past the cap gets one
                BUSY reply with a retry_after_ms hint, then a close
  --idle-timeout S
                serve: evict a connection with no complete request for S
                seconds (default 300; 0 = never) — slow-loris peers and
                half-open sockets are disconnected and counted
  --io-timeout S
                serve: evict a connection whose frame stalls mid-wire for
                S seconds, and time out reply writes the same way when
                the peer stops reading (default 30; 0 = never)
  --error-budget N
                serve: malformed frames/lines answered with a structured
                ERR reply before the connection is closed (default 3)
  --checkpoint-dir DIR
                serve: write per-shard checkpoint files (shard-NNNN.snap)
                to DIR on the --checkpoint-every cadence and at shutdown;
                with serve, --resume is a flag that reloads DIR
  --sr-filter-window Q, --sr-score-window Z
                serve: Spectral-Residual preference parameters applied to
                every series (defaults 3 and 21, the SR paper's values);
                carried in checkpoints, so a resumed fleet ranks
                identically

EXIT CODES:
  0  success
  1  errors — including batch runs where at least one window failed with
     a real error and no window was explained (or sized); windows that
     merely pass the KS test are not errors, but do not count as
     explained either
  2  usage errors
  3  snapshot errors — a --resume file that is missing, truncated,
     corrupt, or from an unsupported version, or a --checkpoint write
     that failed
";

fn parse_count(value: Option<&str>, flag: &str) -> Result<usize, CliError> {
    let raw = value.ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
    raw.parse().map_err(|_| CliError::Usage(format!("invalid {flag} '{raw}'")))
}

fn parse_alpha(value: Option<&str>) -> Result<f64, CliError> {
    let raw = value.ok_or_else(|| CliError::Usage("--alpha needs a value".into()))?;
    let alpha: f64 =
        raw.parse().map_err(|_| CliError::Usage(format!("invalid --alpha '{raw}'")))?;
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(CliError::Usage(format!("--alpha must be in (0, 1), got {alpha}")));
    }
    Ok(alpha)
}

/// Parses the process arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter().map(String::as_str).peekable();
    let Some(sub) = it.next() else {
        return Ok(Command::Help);
    };
    if sub == "help" || sub == "--help" || sub == "-h" {
        return Ok(Command::Help);
    }

    // Collect positionals and flags for the remainder.
    let mut positionals: Vec<&str> = Vec::new();
    let mut alpha = 0.05f64;
    let mut preference = PreferenceSource::default();
    let mut preference_set = false;
    let mut format = OutputFormat::default();
    let mut window: Option<usize> = None;
    let mut threads = 0usize;
    let mut explain = true;
    let mut stream = false;
    let mut size_only = false;
    let mut checkpoint: Option<PathBuf> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut resume: Option<PathBuf> = None;
    let mut listen: Option<String> = None;
    let mut unix: Option<PathBuf> = None;
    let mut workers = 0usize;
    let mut explain_queue = 64usize;
    let mut ring = 1024usize;
    let mut max_series = 0usize;
    let mut max_connections = 1024usize;
    let mut idle_timeout = 300u64;
    let mut io_timeout = 30u64;
    let mut error_budget = 3u32;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut serve_resume = false;
    let mut sr_filter_window: Option<usize> = None;
    let mut sr_score_window: Option<usize> = None;
    while let Some(arg) = it.next() {
        match arg {
            "--alpha" => alpha = parse_alpha(it.next())?,
            "--threads" => {
                let raw =
                    it.next().ok_or_else(|| CliError::Usage("--threads needs a value".into()))?;
                threads = raw
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid --threads '{raw}'")))?;
            }
            "--format" => {
                format = match it.next() {
                    Some("text") => OutputFormat::Text,
                    Some("csv") => OutputFormat::Csv,
                    other => {
                        return Err(CliError::Usage(format!(
                            "--format must be text or csv, got {other:?}"
                        )))
                    }
                }
            }
            "--window" => {
                let raw =
                    it.next().ok_or_else(|| CliError::Usage("--window needs a value".into()))?;
                let w: usize = raw
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid --window '{raw}'")))?;
                if w < 2 {
                    return Err(CliError::Usage("--window must be at least 2".into()));
                }
                window = Some(w);
            }
            "--no-explain" => explain = false,
            "--stream" => stream = true,
            "--size-only" => size_only = true,
            "--checkpoint" => {
                let raw =
                    it.next().ok_or_else(|| CliError::Usage("--checkpoint needs a path".into()))?;
                checkpoint = Some(PathBuf::from(raw));
            }
            "--checkpoint-every" => {
                let raw = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--checkpoint-every needs a value".into()))?;
                let every: u64 = raw
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid --checkpoint-every '{raw}'")))?;
                if every == 0 {
                    return Err(CliError::Usage("--checkpoint-every must be at least 1".into()));
                }
                checkpoint_every = Some(every);
            }
            "--resume" => {
                // serve's --resume is a flag (the source is
                // --checkpoint-dir); monitor's takes a snapshot path.
                if sub == "serve" {
                    serve_resume = true;
                } else {
                    let raw =
                        it.next().ok_or_else(|| CliError::Usage("--resume needs a path".into()))?;
                    resume = Some(PathBuf::from(raw));
                }
            }
            "--listen" => {
                let raw =
                    it.next().ok_or_else(|| CliError::Usage("--listen needs HOST:PORT".into()))?;
                listen = Some(raw.to_string());
            }
            "--unix" => {
                let raw = it.next().ok_or_else(|| CliError::Usage("--unix needs a path".into()))?;
                unix = Some(PathBuf::from(raw));
            }
            "--workers" => workers = parse_count(it.next(), "--workers")?,
            "--explain-queue" => {
                explain_queue = parse_count(it.next(), "--explain-queue")?;
                if explain_queue == 0 {
                    return Err(CliError::Usage("--explain-queue must be at least 1".into()));
                }
            }
            "--ring" => {
                ring = parse_count(it.next(), "--ring")?;
                if ring == 0 {
                    return Err(CliError::Usage("--ring must be at least 1".into()));
                }
            }
            "--max-series" => max_series = parse_count(it.next(), "--max-series")?,
            "--max-connections" => {
                max_connections = parse_count(it.next(), "--max-connections")?;
            }
            "--idle-timeout" => {
                let raw = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--idle-timeout needs seconds".into()))?;
                idle_timeout = raw
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid --idle-timeout '{raw}'")))?;
            }
            "--io-timeout" => {
                let raw = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--io-timeout needs seconds".into()))?;
                io_timeout = raw
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid --io-timeout '{raw}'")))?;
            }
            "--error-budget" => {
                let raw = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--error-budget needs a value".into()))?;
                error_budget = raw
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid --error-budget '{raw}'")))?;
            }
            "--checkpoint-dir" => {
                let raw = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--checkpoint-dir needs a path".into()))?;
                checkpoint_dir = Some(PathBuf::from(raw));
            }
            "--sr-filter-window" => {
                let q = parse_count(it.next(), "--sr-filter-window")?;
                if q == 0 {
                    return Err(CliError::Usage("--sr-filter-window must be at least 1".into()));
                }
                sr_filter_window = Some(q);
            }
            "--sr-score-window" => {
                let z = parse_count(it.next(), "--sr-score-window")?;
                if z == 0 {
                    return Err(CliError::Usage("--sr-score-window must be at least 1".into()));
                }
                sr_score_window = Some(z);
            }
            "--preference" => {
                let raw = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--preference needs a value".into()))?;
                preference_set = true;
                preference = match raw {
                    "sr" => PreferenceSource::SpectralResidual,
                    "scores" => PreferenceSource::ScoreColumn,
                    "value-desc" => PreferenceSource::ValueDesc,
                    "value-asc" => PreferenceSource::ValueAsc,
                    "identity" => PreferenceSource::Identity,
                    other if other.starts_with("score-file:") => PreferenceSource::ScoreFile(
                        PathBuf::from(other.trim_start_matches("score-file:")),
                    ),
                    other => return Err(CliError::Usage(format!("unknown preference '{other}'"))),
                };
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown flag '{flag}'")));
            }
            positional => positionals.push(positional),
        }
    }

    let two_files = |positionals: &[&str]| -> Result<(PathBuf, PathBuf), CliError> {
        if positionals.len() != 2 {
            return Err(CliError::Usage(format!(
                "expected <REF> <TEST>, got {} positional argument(s)",
                positionals.len()
            )));
        }
        Ok((PathBuf::from(positionals[0]), PathBuf::from(positionals[1])))
    };

    match sub {
        "test" => {
            let (reference, test) = two_files(&positionals)?;
            Ok(Command::Test { reference, test, alpha })
        }
        "size" => {
            let (reference, test) = two_files(&positionals)?;
            Ok(Command::Size { reference, test, alpha })
        }
        "explain" => {
            let (reference, test) = two_files(&positionals)?;
            Ok(Command::Explain { reference, test, alpha, preference, format })
        }
        "batch" => {
            if positionals.len() != 2 {
                return Err(CliError::Usage(format!(
                    "expected <REF> <WINDOWS>, got {} positional argument(s)",
                    positionals.len()
                )));
            }
            if matches!(preference, PreferenceSource::ScoreColumn | PreferenceSource::ScoreFile(_))
            {
                return Err(CliError::Usage(
                    "batch supports --preference sr | value-desc | value-asc | identity".into(),
                ));
            }
            Ok(Command::Batch {
                reference: PathBuf::from(positionals[0]),
                windows: PathBuf::from(positionals[1]),
                alpha,
                threads,
                preference,
                format,
                stream,
                size_only,
            })
        }
        "batch2d" => {
            if positionals.len() != 2 {
                return Err(CliError::Usage(format!(
                    "expected <REF> <WINDOWS>, got {} positional argument(s)",
                    positionals.len()
                )));
            }
            // 2-D points carry no scalar order, so the only preference is
            // the window's input order; anything else would silently rank
            // points by a meaning they do not have.
            if preference_set && preference != PreferenceSource::Identity {
                return Err(CliError::Usage(
                    "batch2d supports --preference identity only (points have no scalar order)"
                        .into(),
                ));
            }
            if size_only {
                return Err(CliError::Usage("batch2d does not support --size-only".into()));
            }
            Ok(Command::Batch2d {
                reference: PathBuf::from(positionals[0]),
                windows: PathBuf::from(positionals[1]),
                alpha,
                threads,
                format,
                stream,
            })
        }
        "monitor" => {
            if positionals.len() != 1 {
                return Err(CliError::Usage("monitor expects one <SERIES> file".into()));
            }
            if window.is_none() && resume.is_none() {
                return Err(CliError::Usage("monitor requires --window W (or --resume)".into()));
            }
            if checkpoint_every.is_some() && checkpoint.is_none() {
                return Err(CliError::Usage("--checkpoint-every requires --checkpoint".into()));
            }
            Ok(Command::Monitor {
                series: PathBuf::from(positionals[0]),
                window,
                alpha,
                explain,
                size_only,
                checkpoint,
                checkpoint_every,
                resume,
            })
        }
        "serve" => {
            if !positionals.is_empty() {
                return Err(CliError::Usage("serve takes no positional arguments".into()));
            }
            let listen = match (listen, unix) {
                (Some(addr), None) => crate::serve::Listen::Tcp(addr),
                (None, Some(path)) => crate::serve::Listen::Unix(path),
                (None, None) => {
                    return Err(CliError::Usage(
                        "serve requires --listen HOST:PORT or --unix PATH".into(),
                    ))
                }
                (Some(_), Some(_)) => {
                    return Err(CliError::Usage(
                        "--listen and --unix are mutually exclusive".into(),
                    ))
                }
            };
            let Some(window) = window else {
                return Err(CliError::Usage("serve requires --window W".into()));
            };
            if checkpoint_every.is_some() && checkpoint_dir.is_none() {
                return Err(CliError::Usage("--checkpoint-every requires --checkpoint-dir".into()));
            }
            if serve_resume && checkpoint_dir.is_none() {
                return Err(CliError::Usage("serve --resume requires --checkpoint-dir".into()));
            }
            Ok(Command::Serve(crate::serve::ServeOptions {
                listen,
                window,
                alpha,
                workers,
                explain,
                size_only,
                explain_queue,
                ring,
                max_series,
                max_connections,
                idle_timeout,
                io_timeout,
                error_budget,
                handle_signals: true,
                checkpoint_dir,
                checkpoint_every,
                resume: serve_resume,
                sr_filter_window,
                sr_score_window,
            }))
        }
        other => Err(CliError::Usage(format!("unknown command '{other}' (try 'moche help')"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> Command {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn parse_err(args: &[&str]) -> CliError {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap_err()
    }

    #[test]
    fn parses_test_command() {
        match parse_ok(&["test", "r.txt", "t.txt"]) {
            Command::Test { reference, test, alpha } => {
                assert_eq!(reference, PathBuf::from("r.txt"));
                assert_eq!(test, PathBuf::from("t.txt"));
                assert_eq!(alpha, 0.05);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_alpha_override() {
        match parse_ok(&["size", "r", "t", "--alpha", "0.1"]) {
            Command::Size { alpha, .. } => assert_eq!(alpha, 0.1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(parse_err(&["size", "r", "t", "--alpha", "2"]), CliError::Usage(_)));
        assert!(matches!(parse_err(&["size", "r", "t", "--alpha"]), CliError::Usage(_)));
    }

    #[test]
    fn parses_preference_sources() {
        let cases: Vec<(&str, PreferenceSource)> = vec![
            ("sr", PreferenceSource::SpectralResidual),
            ("scores", PreferenceSource::ScoreColumn),
            ("value-desc", PreferenceSource::ValueDesc),
            ("value-asc", PreferenceSource::ValueAsc),
            ("identity", PreferenceSource::Identity),
            ("score-file:s.txt", PreferenceSource::ScoreFile(PathBuf::from("s.txt"))),
        ];
        for (raw, expected) in cases {
            match parse_ok(&["explain", "r", "t", "--preference", raw]) {
                Command::Explain { preference, .. } => assert_eq!(preference, expected),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(matches!(
            parse_err(&["explain", "r", "t", "--preference", "bogus"]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn parses_monitor() {
        match parse_ok(&["monitor", "s.txt", "--window", "200", "--no-explain"]) {
            Command::Monitor { series, window, alpha, explain, size_only, .. } => {
                assert_eq!(series, PathBuf::from("s.txt"));
                assert_eq!(window, Some(200));
                assert_eq!(alpha, 0.05);
                assert!(!explain);
                assert!(!size_only);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_ok(&["monitor", "s.txt", "--window", "50", "--size-only"]) {
            Command::Monitor { size_only, .. } => assert!(size_only),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(parse_err(&["monitor", "s.txt"]), CliError::Usage(_)));
        assert!(matches!(parse_err(&["monitor", "s.txt", "--window", "1"]), CliError::Usage(_)));
    }

    #[test]
    fn parses_monitor_checkpoint_flags() {
        match parse_ok(&[
            "monitor",
            "s.txt",
            "--window",
            "50",
            "--checkpoint",
            "state.snap",
            "--checkpoint-every",
            "500",
        ]) {
            Command::Monitor { checkpoint, checkpoint_every, resume, .. } => {
                assert_eq!(checkpoint, Some(PathBuf::from("state.snap")));
                assert_eq!(checkpoint_every, Some(500));
                assert_eq!(resume, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // --resume carries the configuration, so --window becomes optional.
        match parse_ok(&["monitor", "s.txt", "--resume", "state.snap"]) {
            Command::Monitor { window, resume, .. } => {
                assert_eq!(window, None);
                assert_eq!(resume, Some(PathBuf::from("state.snap")));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Cadence without a destination is meaningless.
        assert!(matches!(
            parse_err(&["monitor", "s.txt", "--window", "50", "--checkpoint-every", "10"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            parse_err(&[
                "monitor",
                "s.txt",
                "--window",
                "50",
                "--checkpoint",
                "p",
                "--checkpoint-every",
                "0"
            ]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            parse_err(&["monitor", "s.txt", "--window", "50", "--checkpoint"]),
            CliError::Usage(_)
        ));
        assert!(matches!(parse_err(&["monitor", "s.txt", "--resume"]), CliError::Usage(_)));
    }

    #[test]
    fn parses_batch() {
        match parse_ok(&["batch", "r.txt", "w.csv", "--threads", "8", "--alpha", "0.1"]) {
            Command::Batch {
                reference,
                windows,
                alpha,
                threads,
                preference,
                format,
                stream,
                size_only,
            } => {
                assert_eq!(reference, PathBuf::from("r.txt"));
                assert_eq!(windows, PathBuf::from("w.csv"));
                assert_eq!(alpha, 0.1);
                assert_eq!(threads, 8);
                assert_eq!(preference, PreferenceSource::SpectralResidual);
                assert_eq!(format, OutputFormat::Text);
                assert!(!stream);
                assert!(!size_only);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_ok(&["batch", "r.txt", "w.csv", "--stream", "--size-only"]) {
            Command::Batch { stream, size_only, .. } => {
                assert!(stream);
                assert!(size_only);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(parse_err(&["batch", "r.txt"]), CliError::Usage(_)));
        assert!(matches!(
            parse_err(&["batch", "r", "w", "--preference", "scores"]),
            CliError::Usage(_)
        ));
        assert!(matches!(parse_err(&["batch", "r", "w", "--threads", "many"]), CliError::Usage(_)));
    }

    #[test]
    fn parses_batch2d() {
        match parse_ok(&["batch2d", "r.txt", "w.csv", "--threads", "4", "--alpha", "0.1"]) {
            Command::Batch2d { reference, windows, alpha, threads, format, stream } => {
                assert_eq!(reference, PathBuf::from("r.txt"));
                assert_eq!(windows, PathBuf::from("w.csv"));
                assert_eq!(alpha, 0.1);
                assert_eq!(threads, 4);
                assert_eq!(format, OutputFormat::Text);
                assert!(!stream);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_ok(&["batch2d", "r", "w", "--stream", "--format", "csv"]) {
            Command::Batch2d { stream, format, .. } => {
                assert!(stream);
                assert_eq!(format, OutputFormat::Csv);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Input order is the only meaningful 2-D preference: saying so
        // explicitly is allowed, any other source is a usage error.
        match parse_ok(&["batch2d", "r", "w", "--preference", "identity"]) {
            Command::Batch2d { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_err(&["batch2d", "r", "w", "--preference", "sr"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            parse_err(&["batch2d", "r", "w", "--preference", "value-desc"]),
            CliError::Usage(_)
        ));
        assert!(matches!(parse_err(&["batch2d", "r", "w", "--size-only"]), CliError::Usage(_)));
        assert!(matches!(parse_err(&["batch2d", "r"]), CliError::Usage(_)));
    }

    #[test]
    fn parses_serve() {
        match parse_ok(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--window",
            "64",
            "--workers",
            "4",
            "--checkpoint-dir",
            "ckpt",
            "--checkpoint-every",
            "500",
            "--resume",
            "--explain-queue",
            "32",
            "--ring",
            "2048",
            "--max-series",
            "100000",
            "--max-connections",
            "64",
            "--idle-timeout",
            "120",
            "--io-timeout",
            "5",
            "--error-budget",
            "10",
            "--sr-filter-window",
            "5",
            "--sr-score-window",
            "9",
        ]) {
            Command::Serve(opts) => {
                assert_eq!(opts.listen, crate::serve::Listen::Tcp("127.0.0.1:0".into()));
                assert_eq!(opts.window, 64);
                assert_eq!(opts.workers, 4);
                assert_eq!(opts.checkpoint_dir, Some(PathBuf::from("ckpt")));
                assert_eq!(opts.checkpoint_every, Some(500));
                assert!(opts.resume);
                assert_eq!(opts.explain_queue, 32);
                assert_eq!(opts.ring, 2048);
                assert_eq!(opts.max_series, 100_000);
                assert_eq!(opts.max_connections, 64);
                assert_eq!(opts.idle_timeout, 120);
                assert_eq!(opts.io_timeout, 5);
                assert_eq!(opts.error_budget, 10);
                assert!(opts.handle_signals, "the CLI always installs signal drain");
                assert_eq!(opts.sr_filter_window, Some(5));
                assert_eq!(opts.sr_score_window, Some(9));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_ok(&["serve", "--unix", "/tmp/moche.sock", "--window", "8"]) {
            Command::Serve(opts) => {
                assert_eq!(
                    opts.listen,
                    crate::serve::Listen::Unix(PathBuf::from("/tmp/moche.sock"))
                );
                assert_eq!(opts.workers, 0, "default = auto");
                assert!(!opts.resume);
                assert_eq!(opts.max_connections, 1024, "default cap");
                assert_eq!(opts.idle_timeout, 300, "default idle budget");
                assert_eq!(opts.io_timeout, 30, "default I/O budget");
                assert_eq!(opts.error_budget, 3, "default error budget");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_usage_errors() {
        // No listener, no window, both listeners, cadence/resume without
        // a checkpoint dir, zero-size knobs: all usage errors.
        assert!(matches!(parse_err(&["serve", "--window", "8"]), CliError::Usage(_)));
        assert!(matches!(parse_err(&["serve", "--listen", "h:1"]), CliError::Usage(_)));
        assert!(matches!(
            parse_err(&["serve", "--listen", "h:1", "--unix", "p", "--window", "8"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            parse_err(&["serve", "--listen", "h:1", "--window", "8", "--checkpoint-every", "5"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            parse_err(&["serve", "--listen", "h:1", "--window", "8", "--resume"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            parse_err(&["serve", "--listen", "h:1", "--window", "8", "--ring", "0"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            parse_err(&["serve", "--listen", "h:1", "--window", "8", "--sr-filter-window", "0"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            parse_err(&["serve", "--listen", "h:1", "--window", "8", "extra"]),
            CliError::Usage(_)
        ));
        for flag in ["--max-connections", "--idle-timeout", "--io-timeout", "--error-budget"] {
            assert!(
                matches!(
                    parse_err(&["serve", "--listen", "h:1", "--window", "8", flag, "nope"]),
                    CliError::Usage(_)
                ),
                "{flag} must reject non-numeric values"
            );
            assert!(
                matches!(
                    parse_err(&["serve", "--listen", "h:1", "--window", "8", flag]),
                    CliError::Usage(_)
                ),
                "{flag} must require a value"
            );
        }
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse_ok(&["help"]), Command::Help);
        assert_eq!(parse_ok(&["--help"]), Command::Help);
        assert_eq!(parse_ok(&[]), Command::Help);
    }

    #[test]
    fn rejects_unknown_commands_and_flags() {
        assert!(matches!(parse_err(&["frobnicate"]), CliError::Usage(_)));
        assert!(matches!(parse_err(&["test", "r", "t", "--bogus"]), CliError::Usage(_)));
        assert!(matches!(parse_err(&["test", "r"]), CliError::Usage(_)));
        assert!(matches!(parse_err(&["test", "r", "t", "x"]), CliError::Usage(_)));
    }

    #[test]
    fn format_parsing() {
        match parse_ok(&["explain", "r", "t", "--format", "csv"]) {
            Command::Explain { format, .. } => assert_eq!(format, OutputFormat::Csv),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(parse_err(&["explain", "r", "t", "--format", "xml"]), CliError::Usage(_)));
    }
}
