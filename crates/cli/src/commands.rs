//! Command implementations: each writes its report into a caller-supplied
//! [`Write`] sink (locked stdout in production, a byte buffer in tests), so
//! the logic is unit-testable without spawning processes — and streaming
//! commands print results as they are delivered instead of accumulating a
//! report `String` whose size grows with the stream.

use crate::args::{Command, OutputFormat, PreferenceSource};
use crate::io::{
    read_point_windows, read_points, read_values, read_values_and_scores, read_windows, CliError,
    PointWindowStream, WindowStream,
};
use moche_core::ks::asymptotic_p_value;
use moche_core::{
    BatchExplainer, Moche, MocheError, PreferenceList, ReferenceIndex, ReferenceMode,
    SortedReference, StreamMode, StreamResult, StreamingBatchExplainer, WindowPreferences,
    WindowReport,
};
use moche_multidim::{
    Batch2dExplainer, Explanation2d, Point2, RankIndex2d, Stream2dExplainer, Stream2dResult,
};
use moche_sigproc::SpectralResidual;
use moche_stream::{DriftMonitor, MonitorConfig, MonitorEvent, MonitorSnapshot};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Fault-tolerance bookkeeping for one run: everything that went wrong but
/// was survived, plus the crash-safety work done. Surfaced in the text
/// summaries and as a `# health:` comment in CSV output, so an operator
/// can tell a pristine run from one that limped through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Windows whose worker panicked (caught; only that window was lost).
    pub worker_panics: usize,
    /// Observations the monitor rejected and skipped (e.g. non-finite).
    pub skipped_observations: usize,
    /// Windows/alarms explained under a degraded (identity) preference
    /// because scoring was not possible.
    pub degraded_preferences: usize,
    /// Snapshots written by `--checkpoint`.
    pub checkpoints_written: usize,
    /// Connections the serve daemon evicted for cause (idle timeout,
    /// mid-frame stall, unread replies, or a spent error budget). Always
    /// zero outside `moche serve`.
    pub evicted_connections: usize,
    /// Connections the serve daemon turned away with a `BUSY` reply at
    /// `--max-connections`. Always zero outside `moche serve`.
    pub busy_rejections: usize,
}

impl HealthReport {
    pub(crate) fn is_clean(&self) -> bool {
        // Evictions and busy rejections are deliberately absent here: a
        // daemon defending itself from misbehaving clients is healthy.
        self.worker_panics == 0 && self.skipped_observations == 0 && self.degraded_preferences == 0
    }

    /// The one-line text rendering (also used, `#`-prefixed, in CSV). The
    /// connection counters are appended only when the run had any, so the
    /// non-daemon commands keep their familiar four-field line.
    pub(crate) fn summary(&self) -> String {
        let mut line = format!(
            "health: {} worker panic(s), {} skipped observation(s), \
             {} degraded preference(s), {} checkpoint(s) written",
            self.worker_panics,
            self.skipped_observations,
            self.degraded_preferences,
            self.checkpoints_written,
        );
        if self.evicted_connections > 0 || self.busy_rejections > 0 {
            line.push_str(&format!(
                ", {} evicted connection(s), {} busy rejection(s)",
                self.evicted_connections, self.busy_rejections
            ));
        }
        if !self.is_clean() {
            line.push_str(" [DEGRADED]");
        }
        line
    }
}

/// What a successfully executed command reports back to `main` beyond its
/// printed output: enough to fold per-window failures into the process
/// exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStatus {
    /// Windows that failed with a real error (batch modes; passing windows
    /// are not errors).
    pub window_errors: usize,
    /// Windows that produced an explanation or a size.
    pub windows_explained: usize,
    /// Fault-tolerance bookkeeping (panics survived, observations skipped,
    /// checkpoints written).
    pub health: HealthReport,
}

impl RunStatus {
    /// The process exit code: nonzero when at least one window failed with
    /// a real error and **no** window produced an explanation (or size) —
    /// a run whose output would otherwise be indistinguishable from
    /// success in a pipeline. Windows that merely pass the KS test are not
    /// errors, but they do not count as explained either: a stream of
    /// passing windows plus one hard error still reports failure, because
    /// nothing was produced and something went wrong.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.window_errors > 0 && self.windows_explained == 0)
    }
}

/// Executes a parsed command, writing the report to `out` (streamed, for
/// the streaming commands) and returning the run's exit-code summary.
///
/// # Errors
///
/// Any [`CliError`]: bad usage, unreadable/unparsable input, a library
/// error, or a failed write to `out`.
pub fn run(command: Command, out: &mut dyn Write) -> Result<RunStatus, CliError> {
    match command {
        Command::Help => {
            write!(out, "{}", crate::args::USAGE)?;
            Ok(RunStatus::default())
        }
        Command::Test { reference, test, alpha } => {
            let r = read_values(&reference)?;
            let t = read_values(&test)?;
            run_test(&r, &t, alpha, out)
        }
        Command::Size { reference, test, alpha } => {
            let r = read_values(&reference)?;
            let t = read_values(&test)?;
            run_size(&r, &t, alpha, out)
        }
        Command::Explain { reference, test, alpha, preference, format } => {
            let r = read_values(&reference)?;
            let (t, scores) = read_values_and_scores(&test)?;
            run_explain(&r, &t, scores, alpha, &preference, format, out)
        }
        Command::Batch {
            reference,
            windows,
            alpha,
            threads,
            preference,
            format,
            stream,
            size_only,
        } => {
            let r = read_values(&reference)?;
            let opts = BatchOptions { alpha, threads, preference: &preference, format };
            if stream || size_only {
                run_batch_stream(&r, &windows, &opts, size_only, out)
            } else {
                let w = read_windows(&windows)?;
                run_batch(&r, &w, &opts, out)
            }
        }
        Command::Batch2d { reference, windows, alpha, threads, format, stream } => {
            let r = read_points(&reference)?;
            if stream {
                run_batch2d_stream(&r, &windows, alpha, threads, format, out)
            } else {
                let w = read_point_windows(&windows)?;
                run_batch2d(&r, &w, alpha, threads, format, out)
            }
        }
        Command::Monitor {
            series,
            window,
            alpha,
            explain,
            size_only,
            checkpoint,
            checkpoint_every,
            resume,
        } => {
            let values = read_values(&series)?;
            let opts = MonitorOptions {
                window,
                alpha,
                explain,
                size_only,
                checkpoint: checkpoint.as_deref(),
                checkpoint_every,
                resume: resume.as_deref(),
            };
            run_monitor(&values, &opts, out)
        }
        Command::Serve(opts) => crate::serve::run_serve(&opts, out),
    }
}

fn run_test(r: &[f64], t: &[f64], alpha: f64, out: &mut dyn Write) -> Result<RunStatus, CliError> {
    let moche = Moche::new(alpha)?;
    let outcome = moche.test(r, t)?;
    let p = asymptotic_p_value(outcome.statistic, outcome.n, outcome.m);
    writeln!(out, "n = {}, m = {}, alpha = {alpha}", outcome.n, outcome.m)?;
    writeln!(
        out,
        "D = {:.6}, threshold = {:.6}, asymptotic p-value = {:.4e}",
        outcome.statistic, outcome.threshold, p
    )?;
    writeln!(
        out,
        "verdict: {}",
        if outcome.rejected {
            "FAILED (distributions differ)"
        } else {
            "passed (no significant difference)"
        }
    )?;
    Ok(RunStatus::default())
}

fn run_size(r: &[f64], t: &[f64], alpha: f64, out: &mut dyn Write) -> Result<RunStatus, CliError> {
    let moche = Moche::new(alpha)?;
    let s = moche.explanation_size(r, t)?;
    writeln!(out, "explanation size k = {}", s.k)?;
    writeln!(
        out,
        "phase-1 lower bound k_hat = {} (estimation error {})",
        s.k_hat,
        s.estimation_error()
    )?;
    writeln!(
        out,
        "checks: {} binary-search (Theorem 2) + {} exact (Theorem 1)",
        s.theorem2_checks, s.theorem1_checks
    )?;
    Ok(RunStatus::default())
}

/// Derives one window's preference list from sources that need only the
/// window values — the per-window score work `moche batch` runs *inside*
/// the worker threads (see [`WindowPreferences::Scored`]).
///
/// # Panics
///
/// Panics on the file-backed sources, which the batch argument parser
/// rejects up front.
fn window_preference(
    t: &[f64],
    source: &PreferenceSource,
    degraded: &AtomicUsize,
) -> Result<PreferenceList, MocheError> {
    match source {
        PreferenceSource::SpectralResidual => {
            // SR panics on non-finite input; fall back to identity and let
            // the explain call report the NonFiniteValue error properly.
            if t.len() >= 4 && t.iter().all(|v| v.is_finite()) {
                let sr = SpectralResidual::default();
                PreferenceList::from_scores_desc(&sr.scores(t))
            } else {
                // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                degraded.fetch_add(1, Ordering::Relaxed);
                Ok(PreferenceList::identity(t.len()))
            }
        }
        PreferenceSource::ValueDesc => PreferenceList::from_scores_desc(t),
        PreferenceSource::ValueAsc => PreferenceList::from_scores_asc(t),
        PreferenceSource::Identity => Ok(PreferenceList::identity(t.len())),
        PreferenceSource::ScoreColumn | PreferenceSource::ScoreFile(_) => {
            // lint:allow(panic): parse() maps these sources to per-window
            // score columns/files before any command runs; reaching here is
            // a parser bug, not an input condition.
            unreachable!("the batch parser rejects file-backed preference sources")
        }
    }
}

fn build_preference(
    t: &[f64],
    scores_column: Option<Vec<f64>>,
    source: &PreferenceSource,
) -> Result<PreferenceList, CliError> {
    let list = match source {
        PreferenceSource::SpectralResidual
        | PreferenceSource::ValueDesc
        | PreferenceSource::ValueAsc
        | PreferenceSource::Identity => window_preference(t, source, &AtomicUsize::new(0))?,
        PreferenceSource::ScoreColumn => {
            let scores = scores_column.ok_or_else(|| {
                CliError::Usage(
                    "--preference scores requires a 'value,score' second column in the \
                     test file"
                        .into(),
                )
            })?;
            PreferenceList::from_scores_desc(&scores)?
        }
        PreferenceSource::ScoreFile(path) => {
            let scores = read_values(path)?;
            if scores.len() != t.len() {
                return Err(CliError::Usage(format!(
                    "score file has {} entries but the test set has {}",
                    scores.len(),
                    t.len()
                )));
            }
            PreferenceList::from_scores_desc(&scores)?
        }
    };
    Ok(list)
}

fn run_explain(
    r: &[f64],
    t: &[f64],
    scores_column: Option<Vec<f64>>,
    alpha: f64,
    source: &PreferenceSource,
    format: OutputFormat,
    out: &mut dyn Write,
) -> Result<RunStatus, CliError> {
    let moche = Moche::new(alpha)?;
    let preference = build_preference(t, scores_column, source)?;
    let e = moche.explain(r, t, &preference)?;

    match format {
        OutputFormat::Csv => {
            writeln!(out, "index,value")?;
            for (&i, &v) in e.indices().iter().zip(e.values()) {
                writeln!(out, "{i},{v}")?;
            }
        }
        OutputFormat::Text => {
            writeln!(
                out,
                "failed KS test: D = {:.6} > threshold {:.6} (n = {}, m = {})",
                e.outcome_before.statistic, e.outcome_before.threshold, e.n, e.m
            )?;
            writeln!(
                out,
                "most comprehensible explanation: {} point(s) ({:.2}% of the test set), \
                 k_hat = {}",
                e.size(),
                100.0 * e.removed_fraction(),
                e.k_hat()
            )?;
            writeln!(
                out,
                "after removal: D = {:.6} <= threshold {:.6} -> passes",
                e.outcome_after.statistic, e.outcome_after.threshold
            )?;
            writeln!(out, "\nindex  value")?;
            for (&i, &v) in e.indices().iter().zip(e.values()) {
                writeln!(out, "{i:>5}  {v}")?;
            }
        }
    }
    Ok(RunStatus { window_errors: 0, windows_explained: 1, ..RunStatus::default() })
}

/// Renders the requested thread cap for the summary line.
fn requested_threads(threads: usize) -> String {
    if threads == 0 {
        "all cores".to_string()
    } else {
        threads.to_string()
    }
}

/// The shared flags of `moche batch` and `moche batch --stream`.
struct BatchOptions<'a> {
    alpha: f64,
    threads: usize,
    preference: &'a PreferenceSource,
    format: OutputFormat,
}

fn run_batch(
    r: &[f64],
    windows: &[Vec<f64>],
    opts: &BatchOptions<'_>,
    out: &mut dyn Write,
) -> Result<RunStatus, CliError> {
    if windows.is_empty() {
        return Err(CliError::Usage("windows file contains no windows".into()));
    }
    let shared = SortedReference::new(r)?;
    let explainer = BatchExplainer::new(opts.alpha)?
        .threads(opts.threads)
        .reference_mode(ReferenceMode::Indexed);
    // The requested cap silently shrinks to the core and job counts (a
    // 1 means the batch ran sequentially), so report the effective
    // number, not the flag.
    let effective = explainer.effective_threads(windows.len());
    // Preference scoring (Spectral Residual in particular) runs inside the
    // worker threads, parallelized along with the explanations; a
    // per-window scoring failure lands in that window's result slot.
    let degraded = AtomicUsize::new(0);
    let score = |_: usize, w: &[f64]| window_preference(w, opts.preference, &degraded);
    let started = Instant::now();
    let results =
        explainer.explain_windows_with(&shared, windows, WindowPreferences::Scored(&score));
    let elapsed = started.elapsed();

    let mut explained = 0usize;
    let mut passing = 0usize;
    let worker_panics =
        results.iter().filter(|r| matches!(r, Err(MocheError::WorkerPanicked { .. }))).count();
    let health = HealthReport {
        worker_panics,
        // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
        degraded_preferences: degraded.load(Ordering::Relaxed),
        ..HealthReport::default()
    };
    match opts.format {
        OutputFormat::Csv => {
            writeln!(out, "window,index,value")?;
            writeln!(out, "# threads: {effective}")?;
            for (w, result) in results.iter().enumerate() {
                match result {
                    Ok(e) => {
                        explained += 1;
                        for (&i, &v) in e.indices().iter().zip(e.values()) {
                            writeln!(out, "{w},{i},{v}")?;
                        }
                    }
                    // A passing window legitimately has no rows.
                    Err(MocheError::TestAlreadyPasses { .. }) => passing += 1,
                    // Any other error must not vanish from the output.
                    Err(e) => {
                        writeln!(out, "# window {w}: error: {e}")?;
                    }
                }
            }
            writeln!(out, "# {}", health.summary())?;
        }
        OutputFormat::Text => {
            for (w, result) in results.iter().enumerate() {
                match result {
                    Ok(e) => {
                        explained += 1;
                        writeln!(
                            out,
                            "window {w}: k = {} ({:.1}% of {} points), indices {:?}",
                            e.size(),
                            100.0 * e.removed_fraction(),
                            e.m,
                            e.indices()
                        )?;
                    }
                    Err(MocheError::TestAlreadyPasses { .. }) => {
                        passing += 1;
                        writeln!(out, "window {w}: passes (nothing to explain)")?;
                    }
                    Err(e) => {
                        writeln!(out, "window {w}: error: {e}")?;
                    }
                }
            }
            let secs = elapsed.as_secs_f64();
            writeln!(
                out,
                "\n{} window(s): {explained} explained, {passing} passing, {} error(s) \
                 in {:.3}s ({:.0} explanations/s) on {effective} worker thread(s) \
                 (requested {})",
                windows.len(),
                windows.len() - explained - passing,
                secs,
                if secs > 0.0 { explained as f64 / secs } else { 0.0 },
                requested_threads(opts.threads)
            )?;
            writeln!(out, "{}", health.summary())?;
        }
    }
    Ok(RunStatus {
        window_errors: windows.len() - explained - passing,
        windows_explained: explained,
        health,
    })
}

/// Renders one streamed window result (see [`run_batch_stream`]).
fn write_stream_result(
    out: &mut dyn Write,
    format: OutputFormat,
    res: &StreamResult,
) -> std::io::Result<()> {
    let w = res.window;
    match (format, &res.result) {
        (OutputFormat::Csv, Ok(WindowReport::Explained(e))) => {
            for (&i, &v) in e.indices().iter().zip(e.values()) {
                writeln!(out, "{w},{i},{v}")?;
            }
            Ok(())
        }
        (OutputFormat::Csv, Ok(WindowReport::Size(s))) => {
            writeln!(out, "{w},{},{}", s.k, s.k_hat)
        }
        (OutputFormat::Text, Ok(WindowReport::Explained(e))) => {
            writeln!(
                out,
                "window {w}: k = {} ({:.1}% of {} points), indices {:?}",
                e.size(),
                100.0 * e.removed_fraction(),
                e.m,
                e.indices()
            )
        }
        (OutputFormat::Text, Ok(WindowReport::Size(s))) => {
            writeln!(
                out,
                "window {w}: k = {} (k_hat = {}, estimation error {})",
                s.k,
                s.k_hat,
                s.estimation_error()
            )
        }
        (OutputFormat::Csv, Err(MocheError::TestAlreadyPasses { .. })) => Ok(()),
        (OutputFormat::Text, Err(MocheError::TestAlreadyPasses { .. })) => {
            writeln!(out, "window {w}: passes (nothing to explain)")
        }
        (OutputFormat::Csv, Err(e)) => writeln!(out, "# window {w}: error: {e}"),
        (OutputFormat::Text, Err(e)) => writeln!(out, "window {w}: error: {e}"),
    }
}

/// `moche batch --stream` / `--size-only`: windows are read lazily into
/// recycled buffers and fed through the bounded-memory
/// [`StreamingBatchExplainer`] over an indexed reference; each result is
/// **printed as it is delivered** (in window order) and its output buffers
/// are reclaimed, so memory stays constant however long the stream is.
fn run_batch_stream(
    r: &[f64],
    windows: &std::path::Path,
    opts: &BatchOptions<'_>,
    size_only: bool,
    out: &mut dyn Write,
) -> Result<RunStatus, CliError> {
    let index = ReferenceIndex::new(r)?;
    let mode = if size_only { StreamMode::SizeOnly } else { StreamMode::Explain };
    let streamer = StreamingBatchExplainer::new(opts.alpha)?.threads(opts.threads).mode(mode);
    let effective = streamer.effective_threads();
    let (mut stream, error_slot) = WindowStream::open(windows)?;
    let degraded = AtomicUsize::new(0);
    let score = |_: usize, w: &[f64]| window_preference(w, opts.preference, &degraded);

    if opts.format == OutputFormat::Csv {
        writeln!(out, "{}", if size_only { "window,k,k_hat" } else { "window,index,value" })?;
        writeln!(out, "# threads: {effective}")?;
    }
    let started = Instant::now();
    // The callback cannot propagate `?`; park the first write error and go
    // quiet for the rest of the stream.
    let mut write_error: Option<std::io::Error> = None;
    let summary = streamer.explain_source(
        &index,
        |buf: &mut Vec<f64>| stream.fill(buf),
        Some(&score),
        |res: &StreamResult| {
            if write_error.is_none() {
                if let Err(e) = write_stream_result(out, opts.format, res) {
                    write_error = Some(e);
                }
            }
        },
    );
    let elapsed = started.elapsed();
    if let Some(e) = write_error {
        return Err(CliError::Write(e));
    }
    // A malformed line stops the stream. Results already delivered have
    // been printed (that is the point of streaming); surfacing the error
    // exits nonzero, so consumers never mistake a truncated run for a
    // complete one. The slot is a plain Option swap, so a poisoned lock
    // carries no torn state — recover it rather than panic in reporting.
    let parked = error_slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
    if let Some(e) = parked {
        return Err(e);
    }
    if summary.windows == 0 {
        return Err(CliError::Usage("windows file contains no windows".into()));
    }
    let health = HealthReport {
        worker_panics: summary.panics,
        // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
        degraded_preferences: degraded.load(Ordering::Relaxed),
        ..HealthReport::default()
    };
    if opts.format == OutputFormat::Csv {
        writeln!(out, "# {}", health.summary())?;
    }
    if opts.format == OutputFormat::Text {
        let secs = elapsed.as_secs_f64();
        writeln!(
            out,
            "\n{} window(s) streamed: {} {}, {} passing, {} error(s) in {:.3}s \
             ({:.0} windows/s) on {} worker thread(s) (requested {})",
            summary.windows,
            summary.explained,
            if size_only { "sized" } else { "explained" },
            summary.passing,
            summary.errors,
            secs,
            if secs > 0.0 { summary.windows as f64 / secs } else { 0.0 },
            summary.threads,
            requested_threads(opts.threads)
        )?;
        writeln!(out, "{}", health.summary())?;
    }
    Ok(RunStatus { window_errors: summary.errors, windows_explained: summary.explained, health })
}

/// Renders one 2-D window result, shared by the eager and streaming paths.
/// Explanations carry window-relative point offsets (a 2-D window line is a
/// flat coordinate list, so the offset — not a coordinate echo — is the
/// stable way to address a point); csv rows are `window,index`.
fn write_batch2d_result(
    out: &mut dyn Write,
    format: OutputFormat,
    w: usize,
    result: &Result<Explanation2d, MocheError>,
) -> std::io::Result<()> {
    match (format, result) {
        (OutputFormat::Csv, Ok(e)) => {
            for &i in &e.indices {
                writeln!(out, "{w},{i}")?;
            }
            Ok(())
        }
        (OutputFormat::Text, Ok(e)) => {
            let m = e.outcome_before.m;
            writeln!(
                out,
                "window {w}: k = {} ({:.1}% of {} points), indices {:?}",
                e.size(),
                100.0 * e.size() as f64 / m as f64,
                m,
                e.indices
            )
        }
        // A passing window legitimately has no rows.
        (OutputFormat::Csv, Err(MocheError::TestAlreadyPasses { .. })) => Ok(()),
        (OutputFormat::Text, Err(MocheError::TestAlreadyPasses { .. })) => {
            writeln!(out, "window {w}: passes (nothing to explain)")
        }
        // Any other error must not vanish from the output.
        (OutputFormat::Csv, Err(e)) => writeln!(out, "# window {w}: error: {e}"),
        (OutputFormat::Text, Err(e)) => writeln!(out, "window {w}: error: {e}"),
    }
}

/// `moche batch2d`: every window explained in parallel against one shared
/// [`RankIndex2d`], mirroring [`run_batch`]'s report, health, and exit-code
/// contract on 2-D (Fasano-Franceschini) tests.
fn run_batch2d(
    r: &[Point2],
    windows: &[Vec<Point2>],
    alpha: f64,
    threads: usize,
    format: OutputFormat,
    out: &mut dyn Write,
) -> Result<RunStatus, CliError> {
    if windows.is_empty() {
        return Err(CliError::Usage("windows file contains no windows".into()));
    }
    let index = RankIndex2d::new(r)?;
    let explainer = Batch2dExplainer::new(alpha)?.threads(threads);
    let effective = explainer.effective_threads(windows.len());
    let started = Instant::now();
    let results = explainer.explain_windows(&index, windows, None);
    let elapsed = started.elapsed();

    let mut explained = 0usize;
    let mut passing = 0usize;
    let worker_panics =
        results.iter().filter(|r| matches!(r, Err(MocheError::WorkerPanicked { .. }))).count();
    let health = HealthReport { worker_panics, ..HealthReport::default() };
    if format == OutputFormat::Csv {
        writeln!(out, "window,index")?;
        writeln!(out, "# threads: {effective}")?;
    }
    for (w, result) in results.iter().enumerate() {
        match result {
            Ok(_) => explained += 1,
            Err(MocheError::TestAlreadyPasses { .. }) => passing += 1,
            Err(_) => {}
        }
        write_batch2d_result(out, format, w, result)?;
    }
    match format {
        OutputFormat::Csv => writeln!(out, "# {}", health.summary())?,
        OutputFormat::Text => {
            let secs = elapsed.as_secs_f64();
            writeln!(
                out,
                "\n{} window(s): {explained} explained, {passing} passing, {} error(s) \
                 in {:.3}s ({:.0} explanations/s) on {effective} worker thread(s) \
                 (requested {})",
                windows.len(),
                windows.len() - explained - passing,
                secs,
                if secs > 0.0 { explained as f64 / secs } else { 0.0 },
                requested_threads(threads)
            )?;
            writeln!(out, "{}", health.summary())?;
        }
    }
    Ok(RunStatus {
        window_errors: windows.len() - explained - passing,
        windows_explained: explained,
        health,
    })
}

/// `moche batch2d --stream`: point windows are read lazily into recycled
/// buffers and fed through the bounded-memory [`Stream2dExplainer`]; each
/// result is printed as it is delivered (in window order), so memory stays
/// constant however long the stream is.
fn run_batch2d_stream(
    r: &[Point2],
    windows: &std::path::Path,
    alpha: f64,
    threads: usize,
    format: OutputFormat,
    out: &mut dyn Write,
) -> Result<RunStatus, CliError> {
    let index = RankIndex2d::new(r)?;
    let streamer = Stream2dExplainer::new(alpha)?.threads(threads);
    let effective = streamer.effective_threads();
    let (mut stream, error_slot) = PointWindowStream::open(windows)?;

    if format == OutputFormat::Csv {
        writeln!(out, "window,index")?;
        writeln!(out, "# threads: {effective}")?;
    }
    let started = Instant::now();
    // The callback cannot propagate `?`; park the first write error and go
    // quiet for the rest of the stream.
    let mut write_error: Option<std::io::Error> = None;
    let summary = streamer.explain_source(
        &index,
        |buf: &mut Vec<Point2>| stream.fill(buf),
        None,
        |res: &Stream2dResult| {
            if write_error.is_none() {
                if let Err(e) = write_batch2d_result(out, format, res.window, &res.result) {
                    write_error = Some(e);
                }
            }
        },
    );
    let elapsed = started.elapsed();
    if let Some(e) = write_error {
        return Err(CliError::Write(e));
    }
    // A malformed line stops the stream; surfacing the parked error exits
    // nonzero, so consumers never mistake a truncated run for a complete
    // one (results already delivered have been printed — that is the point
    // of streaming).
    let parked = error_slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
    if let Some(e) = parked {
        return Err(e);
    }
    if summary.windows == 0 {
        return Err(CliError::Usage("windows file contains no windows".into()));
    }
    let health = HealthReport { worker_panics: summary.panics, ..HealthReport::default() };
    if format == OutputFormat::Csv {
        writeln!(out, "# {}", health.summary())?;
    }
    if format == OutputFormat::Text {
        let secs = elapsed.as_secs_f64();
        writeln!(
            out,
            "\n{} window(s) streamed: {} explained, {} passing, {} error(s) in {:.3}s \
             ({:.0} windows/s) on {} worker thread(s) (requested {})",
            summary.windows,
            summary.explained,
            summary.passing,
            summary.errors,
            secs,
            if secs > 0.0 { summary.windows as f64 / secs } else { 0.0 },
            summary.threads,
            requested_threads(threads)
        )?;
        writeln!(out, "{}", health.summary())?;
    }
    Ok(RunStatus { window_errors: summary.errors, windows_explained: summary.explained, health })
}

/// The flags of `moche monitor` (see [`crate::args::Command::Monitor`]).
struct MonitorOptions<'a> {
    window: Option<usize>,
    alpha: f64,
    explain: bool,
    size_only: bool,
    checkpoint: Option<&'a Path>,
    checkpoint_every: Option<u64>,
    resume: Option<&'a Path>,
}

fn run_monitor(
    values: &[f64],
    opts: &MonitorOptions<'_>,
    out: &mut dyn Write,
) -> Result<RunStatus, CliError> {
    // `--resume` restores the full monitor state — configuration included —
    // from the snapshot; a `--window` given alongside is cross-checked so a
    // supervisor restart with a drifted flag fails loudly instead of
    // silently monitoring at the wrong scale.
    let (mut monitor, window, alpha) = match opts.resume {
        Some(path) => {
            let snapshot = MonitorSnapshot::read_from(path)?;
            if let Some(w) = opts.window {
                if w != snapshot.window {
                    return Err(CliError::Usage(format!(
                        "--window {w} does not match the resumed snapshot's window {}",
                        snapshot.window
                    )));
                }
            }
            let monitor = DriftMonitor::restore(&snapshot)?;
            writeln!(
                out,
                "resumed from {}: {} observation(s) already seen, {} alarm(s)",
                path.display(),
                snapshot.pushes,
                snapshot.alarms
            )?;
            (monitor, snapshot.window, snapshot.alpha)
        }
        None => {
            let window =
                opts.window.ok_or_else(|| CliError::Usage("monitor requires --window W".into()))?;
            let mut cfg = MonitorConfig::new(window, opts.alpha);
            cfg.explain_on_drift = opts.explain;
            cfg.size_only = opts.size_only;
            (DriftMonitor::new(cfg)?, window, opts.alpha)
        }
    };
    let checkpoint_every = opts.checkpoint_every.unwrap_or(window as u64);
    let mut checkpoints = 0usize;
    writeln!(
        out,
        "monitoring {} observations with paired windows of {window} (alpha = {alpha})",
        values.len()
    )?;
    // `nan`/`inf` parse as valid f64, so a corrupt data file reaches the
    // monitor as non-finite observations: report each one with its series
    // index, skip it, and fold the count into the exit code — never panic.
    let mut skipped = 0usize;
    for (i, &x) in values.iter().enumerate() {
        let event = match monitor.try_push(x) {
            Ok(event) => event,
            Err(e) => {
                skipped += 1;
                // The monitor's error counts accepted observations only;
                // report the series position `t`, which is what locates
                // the corrupt value in the input file.
                match e {
                    MocheError::NonFiniteObservation { value, .. } => {
                        writeln!(out, "t = {i}: skipped non-finite observation ({value})")?;
                    }
                    other => writeln!(out, "t = {i}: skipped observation: {other}")?,
                }
                continue;
            }
        };
        if let MonitorEvent::Drift { outcome, explanation, size } = event {
            write!(
                out,
                "t = {i}: DRIFT  D = {:.4} (threshold {:.4})",
                outcome.statistic, outcome.threshold
            )?;
            match (explanation, size) {
                (Some(e), _) => {
                    writeln!(
                        out,
                        "  explanation: {} point(s), window offsets {:?}",
                        e.size(),
                        e.indices()
                    )?;
                    // The next alarm reuses this explanation's buffers.
                    monitor.recycle(e);
                }
                (None, Some(s)) => {
                    writeln!(out, "  size: k = {} (k_hat = {})", s.k, s.k_hat)?;
                }
                (None, None) => {
                    writeln!(out)?;
                }
            }
        }
        if let Some(path) = opts.checkpoint {
            if monitor.pushes().is_multiple_of(checkpoint_every) {
                monitor.checkpoint(path)?;
                checkpoints += 1;
            }
        }
    }
    if let Some(path) = opts.checkpoint {
        // One final snapshot regardless of cadence, so `--resume` picks up
        // exactly where this run ended.
        monitor.checkpoint(path)?;
        checkpoints += 1;
    }
    writeln!(out, "{} alarm(s) in {} observations", monitor.alarms(), monitor.pushes())?;
    if skipped > 0 {
        writeln!(out, "{skipped} non-finite observation(s) skipped")?;
    }
    let health = HealthReport {
        skipped_observations: skipped,
        degraded_preferences: usize::try_from(monitor.degraded_preferences()).unwrap_or(usize::MAX),
        checkpoints_written: checkpoints,
        ..HealthReport::default()
    };
    writeln!(out, "{}", health.summary())?;
    // A monitoring run's product is its alarm report, not explanations (a
    // clean run with zero alarms is a success), so corrupt observations
    // are counted as errors with nothing on the "explained" side: any
    // skipped observation makes the run exit nonzero.
    Ok(RunStatus { window_errors: skipped, windows_explained: 0, health })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_sets() -> (Vec<f64>, Vec<f64>) {
        let r: Vec<f64> = (0..60).map(|i| f64::from(i % 8)).collect();
        let t: Vec<f64> = (0..30).map(|i| f64::from(i % 8) + 4.0).collect();
        (r, t)
    }

    /// Runs a command body against a byte buffer, returning the rendered
    /// report and the run status.
    fn capture<F>(f: F) -> Result<(String, RunStatus), CliError>
    where
        F: FnOnce(&mut dyn Write) -> Result<RunStatus, CliError>,
    {
        let mut buf: Vec<u8> = Vec::new();
        let status = f(&mut buf)?;
        Ok((String::from_utf8(buf).expect("reports are UTF-8"), status))
    }

    fn batch_opts<'a>(
        alpha: f64,
        threads: usize,
        preference: &'a PreferenceSource,
        format: OutputFormat,
    ) -> BatchOptions<'a> {
        BatchOptions { alpha, threads, preference, format }
    }

    fn monitor_opts(
        window: usize,
        alpha: f64,
        explain: bool,
        size_only: bool,
    ) -> MonitorOptions<'static> {
        MonitorOptions {
            window: Some(window),
            alpha,
            explain,
            size_only,
            checkpoint: None,
            checkpoint_every: None,
            resume: None,
        }
    }

    #[test]
    fn test_command_reports_failure() {
        let (r, t) = shifted_sets();
        let (out, _) = capture(|o| run_test(&r, &t, 0.05, o)).unwrap();
        assert!(out.contains("FAILED"), "{out}");
        assert!(out.contains("p-value"));
        let (out2, _) = capture(|o| run_test(&r, &r, 0.05, o)).unwrap();
        assert!(out2.contains("passed"), "{out2}");
    }

    #[test]
    fn size_command_reports_k_and_bound() {
        let (r, t) = shifted_sets();
        let (out, _) = capture(|o| run_size(&r, &t, 0.05, o)).unwrap();
        assert!(out.contains("explanation size k = "));
        assert!(out.contains("k_hat"));
    }

    #[test]
    fn explain_text_and_csv_agree_on_selection() {
        let (r, t) = shifted_sets();
        let (text, status) = capture(|o| {
            run_explain(&r, &t, None, 0.05, &PreferenceSource::ValueDesc, OutputFormat::Text, o)
        })
        .unwrap();
        let (csv, _) = capture(|o| {
            run_explain(&r, &t, None, 0.05, &PreferenceSource::ValueDesc, OutputFormat::Csv, o)
        })
        .unwrap();
        assert!(text.contains("passes"));
        assert!(csv.starts_with("index,value"));
        assert_eq!(status.exit_code(), 0);
        // Same number of selected points in both outputs.
        let text_rows = text.lines().skip_while(|l| !l.starts_with("index")).count() - 1;
        let csv_rows = csv.lines().count() - 1;
        assert_eq!(text_rows, csv_rows);
    }

    #[test]
    fn explain_with_score_column_uses_it() {
        let (r, t) = shifted_sets();
        // Scores that strongly prefer the last test point first.
        let mut scores = vec![0.0f64; t.len()];
        *scores.last_mut().unwrap() = 100.0;
        let (out, _) = capture(|o| {
            run_explain(
                &r,
                &t,
                Some(scores.clone()),
                0.05,
                &PreferenceSource::ScoreColumn,
                OutputFormat::Csv,
                o,
            )
        })
        .unwrap();
        let first_row = out.lines().nth(1).unwrap();
        assert!(
            first_row.starts_with(&format!("{},", t.len() - 1)),
            "expected the boosted point first, got {first_row}"
        );
    }

    #[test]
    fn explain_missing_score_column_is_usage_error() {
        let (r, t) = shifted_sets();
        let result = capture(|o| {
            run_explain(&r, &t, None, 0.05, &PreferenceSource::ScoreColumn, OutputFormat::Text, o)
        });
        match result {
            Err(CliError::Usage(msg)) => assert!(msg.contains("second column")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explain_passing_test_surfaces_library_error() {
        let (r, _) = shifted_sets();
        let result = capture(|o| {
            run_explain(&r, &r, None, 0.05, &PreferenceSource::Identity, OutputFormat::Text, o)
        });
        match result {
            Err(CliError::Moche(moche_core::MocheError::TestAlreadyPasses { .. })) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_reports_per_window_outcomes() {
        let (r, t) = shifted_sets();
        let windows = vec![t.clone(), r.clone(), t];
        let opts = batch_opts(0.05, 2, &PreferenceSource::Identity, OutputFormat::Text);
        let (out, status) = capture(|o| run_batch(&r, &windows, &opts, o)).unwrap();
        assert!(out.contains("window 0: k = "), "{out}");
        assert!(out.contains("window 1: passes"), "{out}");
        assert!(out.contains("2 explained, 1 passing"), "{out}");
        assert_eq!(status.windows_explained, 2);
        assert_eq!(status.window_errors, 0);
        assert_eq!(status.exit_code(), 0);
    }

    #[test]
    fn batch_csv_lists_selected_points_per_window() {
        let (r, t) = shifted_sets();
        let windows = vec![t.clone(), t];
        let opts = batch_opts(0.05, 0, &PreferenceSource::ValueDesc, OutputFormat::Csv);
        let (out, _) = capture(|o| run_batch(&r, &windows, &opts, o)).unwrap();
        assert!(out.starts_with("window,index,value"));
        assert!(out.lines().any(|l| l.starts_with("0,")));
        assert!(out.lines().any(|l| l.starts_with("1,")));
        // Both windows are identical: their selections must match.
        let rows = |w: &str| {
            out.lines()
                .filter(|l| l.starts_with(w))
                .map(|l| l.split_once(',').unwrap().1.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(rows("0,"), rows("1,"));
    }

    #[test]
    fn batch_matches_sequential_explain() {
        let (r, t) = shifted_sets();
        let windows = vec![t.clone()];
        let opts = batch_opts(0.05, 1, &PreferenceSource::Identity, OutputFormat::Csv);
        let (csv, _) = capture(|o| run_batch(&r, &windows, &opts, o)).unwrap();
        let (single, _) = capture(|o| {
            run_explain(&r, &t, None, 0.05, &PreferenceSource::Identity, OutputFormat::Csv, o)
        })
        .unwrap();
        let batch_rows: Vec<&str> = csv
            .lines()
            .skip(1)
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split_once(',').unwrap().1)
            .collect();
        let single_rows: Vec<&str> = single.lines().skip(1).collect();
        assert_eq!(batch_rows, single_rows);
    }

    #[test]
    fn batch_csv_surfaces_per_window_errors_as_comments() {
        let (r, t) = shifted_sets();
        let bad = vec![f64::NAN, 1.0, 2.0, 3.0, 4.0];
        let windows = vec![t, bad];
        // The default SR preference must not panic on the non-finite
        // window; the error surfaces as a CSV comment instead.
        for source in [PreferenceSource::SpectralResidual, PreferenceSource::Identity] {
            let opts = batch_opts(0.05, 1, &source, OutputFormat::Csv);
            let (out, status) = capture(|o| run_batch(&r, &windows, &opts, o)).unwrap();
            assert!(out.lines().any(|l| l.starts_with("0,")), "{out}");
            assert!(out.lines().any(|l| l.starts_with("# window 1: error:")), "{out}");
            assert_eq!(status.window_errors, 1);
            assert_eq!(status.exit_code(), 0, "one good window keeps the run successful");
        }
    }

    #[test]
    fn batch_preference_failure_does_not_poison_the_batch() {
        // value-desc builds the preference from the window values, so a
        // NaN window fails preference construction; the other windows must
        // still be explained.
        let (r, t) = shifted_sets();
        let bad = vec![f64::NAN, 1.0, 2.0, 3.0, 4.0];
        let windows = vec![t, bad];
        let opts = batch_opts(0.05, 1, &PreferenceSource::ValueDesc, OutputFormat::Text);
        let (out, _) = capture(|o| run_batch(&r, &windows, &opts, o)).unwrap();
        assert!(out.contains("window 0: k = "), "{out}");
        assert!(out.contains("window 1: error: invalid preference"), "{out}");
        assert!(out.contains("1 explained"), "{out}");
    }

    #[test]
    fn batch_all_error_runs_exit_nonzero() {
        let (r, _) = shifted_sets();
        let bad = vec![f64::NAN, 1.0, 2.0, 3.0, 4.0];
        let windows = vec![bad.clone(), bad];
        let opts = batch_opts(0.05, 1, &PreferenceSource::Identity, OutputFormat::Text);
        let (out, status) = capture(|o| run_batch(&r, &windows, &opts, o)).unwrap();
        assert!(out.contains("window 0: error:"), "{out}");
        assert_eq!(status.window_errors, 2);
        assert_eq!(status.windows_explained, 0);
        assert_eq!(status.exit_code(), 1, "all-error batches must not exit 0");
    }

    #[test]
    fn batch_passing_windows_do_not_mask_an_all_error_run() {
        // Passing windows are not errors, but they are not explanations
        // either: a stream that produced nothing and hit a real error
        // still reports failure.
        let (r, _) = shifted_sets();
        let bad = vec![f64::NAN, 1.0, 2.0, 3.0, 4.0];
        let windows = vec![r.clone(), bad];
        let opts = batch_opts(0.05, 1, &PreferenceSource::Identity, OutputFormat::Text);
        let (out, status) = capture(|o| run_batch(&r, &windows, &opts, o)).unwrap();
        assert!(out.contains("window 0: passes"), "{out}");
        assert_eq!(status.window_errors, 1);
        assert_eq!(status.windows_explained, 0);
        assert_eq!(status.exit_code(), 1);
    }

    #[test]
    fn batch_health_counts_degraded_preferences() {
        let (r, t) = shifted_sets();
        // The NaN window cannot be SR-scored: the preference degrades to
        // identity (counted in health) and the window itself then fails
        // input validation.
        let bad = vec![f64::NAN, 1.0, 2.0, 3.0, 4.0];
        let windows = vec![t, bad];
        let opts = batch_opts(0.05, 1, &PreferenceSource::SpectralResidual, OutputFormat::Csv);
        let (out, status) = capture(|o| run_batch(&r, &windows, &opts, o)).unwrap();
        assert!(out.lines().any(|l| l.starts_with("# health:")), "{out}");
        assert_eq!(status.health.degraded_preferences, 1);
        assert_eq!(status.health.worker_panics, 0);
        assert!(out.contains("1 degraded preference(s)"), "{out}");
        assert!(out.contains("[DEGRADED]"), "{out}");
        // A clean batch reports clean health, without the degraded marker.
        let (r2, t2) = shifted_sets();
        let clean_opts = batch_opts(0.05, 1, &PreferenceSource::Identity, OutputFormat::Text);
        let (clean, clean_status) = capture(|o| run_batch(&r2, &[t2], &clean_opts, o)).unwrap();
        assert!(clean.contains("health: 0 worker panic(s)"), "{clean}");
        assert!(!clean.contains("[DEGRADED]"), "{clean}");
        assert_eq!(clean_status.health, HealthReport::default());
    }

    #[test]
    fn batch_stream_surfaces_health_in_both_formats() {
        let (r, t) = shifted_sets();
        let windows = vec![t.clone(), t];
        let file = TempWindows::new("health", &windows);
        let opts = batch_opts(0.05, 1, &PreferenceSource::Identity, OutputFormat::Csv);
        let (csv, status) = capture(|o| run_batch_stream(&r, &file.0, &opts, false, o)).unwrap();
        assert!(csv.lines().any(|l| l.starts_with("# health:")), "{csv}");
        assert_eq!(status.health.worker_panics, 0);
        let text_opts = batch_opts(0.05, 1, &PreferenceSource::Identity, OutputFormat::Text);
        let (text, _) = capture(|o| run_batch_stream(&r, &file.0, &text_opts, false, o)).unwrap();
        assert!(text.contains("health: 0 worker panic(s)"), "{text}");
    }

    #[test]
    fn batch_rejects_empty_windows_file() {
        let (r, _) = shifted_sets();
        let opts = batch_opts(0.05, 0, &PreferenceSource::Identity, OutputFormat::Text);
        match capture(|o| run_batch(&r, &[], &opts, o)) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("no windows")),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A 2-D reference and a window that fails the Fasano-Franceschini
    /// test against it (a shifted cluster far off the reference lattice).
    fn shifted_point_sets() -> (Vec<Point2>, Vec<Point2>) {
        let r: Vec<Point2> =
            (0..80).map(|i| Point2::new(f64::from(i % 9), f64::from(i % 7))).collect();
        let mut t: Vec<Point2> = r.iter().take(40).copied().collect();
        t.extend((0..25).map(|i| Point2::new(f64::from(i) + 60.0, 60.0)));
        (r, t)
    }

    /// Flattens point windows to the `x1 y1 x2 y2 ...` on-disk line format.
    fn flat(windows: &[Vec<Point2>]) -> Vec<Vec<f64>> {
        windows.iter().map(|w| w.iter().flat_map(|p| [p.x, p.y]).collect()).collect()
    }

    #[test]
    fn batch2d_reports_per_window_outcomes() {
        let (r, t) = shifted_point_sets();
        let windows = vec![t.clone(), r.clone(), t];
        let (out, status) =
            capture(|o| run_batch2d(&r, &windows, 0.05, 2, OutputFormat::Text, o)).unwrap();
        assert!(out.contains("window 0: k = "), "{out}");
        assert!(out.contains("window 1: passes"), "{out}");
        assert!(out.contains("2 explained, 1 passing"), "{out}");
        assert!(out.contains("health: 0 worker panic(s)"), "{out}");
        assert_eq!(status.windows_explained, 2);
        assert_eq!(status.window_errors, 0);
        assert_eq!(status.exit_code(), 0);
    }

    #[test]
    fn batch2d_csv_lists_point_offsets_per_window() {
        let (r, t) = shifted_point_sets();
        let windows = vec![t.clone(), t];
        let (out, _) =
            capture(|o| run_batch2d(&r, &windows, 0.05, 1, OutputFormat::Csv, o)).unwrap();
        assert!(out.starts_with("window,index"), "{out}");
        assert!(out.lines().any(|l| l.starts_with("0,")), "{out}");
        assert!(out.lines().any(|l| l.starts_with("# health:")), "{out}");
        // Identical windows select identical offsets.
        let rows = |w: &str| {
            out.lines()
                .filter(|l| l.starts_with(w))
                .map(|l| l.split_once(',').unwrap().1.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(rows("0,"), rows("1,"));
    }

    #[test]
    fn batch2d_errors_are_isolated_and_all_error_runs_exit_nonzero() {
        let (r, t) = shifted_point_sets();
        let bad = vec![Point2::new(f64::NAN, 0.0); 5];
        let mixed = vec![t, bad.clone()];
        let (out, status) =
            capture(|o| run_batch2d(&r, &mixed, 0.05, 1, OutputFormat::Text, o)).unwrap();
        assert!(out.contains("window 0: k = "), "{out}");
        assert!(out.contains("window 1: error:"), "{out}");
        assert_eq!(status.window_errors, 1);
        assert_eq!(status.exit_code(), 0, "one good window keeps the run successful");

        let all_bad = vec![bad.clone(), bad];
        let (_, status) =
            capture(|o| run_batch2d(&r, &all_bad, 0.05, 1, OutputFormat::Text, o)).unwrap();
        assert_eq!(status.window_errors, 2);
        assert_eq!(status.windows_explained, 0);
        assert_eq!(status.exit_code(), 1, "all-error 2-D batches must not exit 0");
    }

    #[test]
    fn batch2d_rejects_empty_windows_file() {
        let (r, _) = shifted_point_sets();
        match capture(|o| run_batch2d(&r, &[], 0.05, 0, OutputFormat::Text, o)) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("no windows")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch2d_stream_matches_eager_csv() {
        let (r, t) = shifted_point_sets();
        let windows = vec![t.clone(), r.clone(), t];
        let file = TempWindows::new("match2d", &flat(&windows));
        let (eager, _) =
            capture(|o| run_batch2d(&r, &windows, 0.05, 2, OutputFormat::Csv, o)).unwrap();
        let (streamed, status) =
            capture(|o| run_batch2d_stream(&r, &file.0, 0.05, 2, OutputFormat::Csv, o)).unwrap();
        let rows = |s: &str| {
            s.lines().filter(|l| !l.starts_with('#')).map(String::from).collect::<Vec<_>>()
        };
        assert_eq!(rows(&eager), rows(&streamed));
        assert!(streamed.lines().any(|l| l.starts_with("# threads: ")), "{streamed}");
        assert_eq!(status.windows_explained, 2);
        assert_eq!(status.exit_code(), 0);

        let (text, _) =
            capture(|o| run_batch2d_stream(&r, &file.0, 0.05, 1, OutputFormat::Text, o)).unwrap();
        assert!(text.contains("window 0: k = "), "{text}");
        assert!(text.contains("window 1: passes"), "{text}");
        assert!(text.contains("2 explained, 1 passing"), "{text}");
    }

    #[test]
    fn batch2d_stream_surfaces_odd_coordinate_counts() {
        let (r, _) = shifted_point_sets();
        let path = std::env::temp_dir()
            .join(format!("moche-stream-test-odd2d-{}.csv", std::process::id()));
        std::fs::write(&path, "1 2 3 4\n5 6 7\n").unwrap();
        let result = capture(|o| run_batch2d_stream(&r, &path, 0.05, 1, OutputFormat::Text, o));
        let _ = std::fs::remove_file(&path);
        match result {
            Err(CliError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn monitor_detects_shift_in_file_values() {
        let mut series: Vec<f64> = (0..200).map(|i| f64::from(i % 7)).collect();
        series.extend((0..200).map(|i| f64::from(i % 7) + 25.0));
        let (out, _) =
            capture(|o| run_monitor(&series, &monitor_opts(50, 0.05, true, false), o)).unwrap();
        assert!(out.contains("DRIFT"), "{out}");
        assert!(out.contains("explanation"));
        let (quiet, _) =
            capture(|o| run_monitor(&series[..200], &monitor_opts(50, 0.05, false, false), o))
                .unwrap();
        assert!(quiet.contains("0 alarm(s)"), "{quiet}");
    }

    #[test]
    fn monitor_skips_non_finite_observations_and_exits_nonzero() {
        // A nan/inf mid-stream used to abort the process on the monitor's
        // finiteness assert; it must now be reported, skipped and folded
        // into the exit code — while the drift is still detected.
        let mut series: Vec<f64> = (0..200).map(|i| f64::from(i % 7)).collect();
        series[50] = f64::NAN;
        series[90] = f64::INFINITY;
        series.extend((0..200).map(|i| f64::from(i % 7) + 25.0));
        let (out, status) =
            capture(|o| run_monitor(&series, &monitor_opts(50, 0.05, true, false), o)).unwrap();
        assert!(out.contains("t = 50: skipped non-finite observation"), "{out}");
        assert!(out.contains("t = 90: skipped non-finite observation"), "{out}");
        assert!(out.contains("DRIFT"), "{out}");
        assert!(out.contains("2 non-finite observation(s) skipped"), "{out}");
        assert_eq!(status.window_errors, 2);
        assert_eq!(status.health.skipped_observations, 2);
        assert!(out.contains("2 skipped observation(s)"), "{out}");
        assert!(out.contains("[DEGRADED]"), "{out}");
        assert_eq!(status.exit_code(), 1, "corrupt observations must fail the run");
        // A clean stream still exits 0.
        let clean: Vec<f64> = (0..200).map(|i| f64::from(i % 7)).collect();
        let (quiet, status) =
            capture(|o| run_monitor(&clean, &monitor_opts(50, 0.05, true, false), o)).unwrap();
        assert!(quiet.contains("0 skipped observation(s)"), "{quiet}");
        assert!(!quiet.contains("[DEGRADED]"), "{quiet}");
        assert_eq!(status.exit_code(), 0);
    }

    #[test]
    fn monitor_size_only_reports_k_per_alarm() {
        let mut series: Vec<f64> = (0..200).map(|i| f64::from(i % 7)).collect();
        series.extend((0..200).map(|i| f64::from(i % 7) + 25.0));
        let (out, _) =
            capture(|o| run_monitor(&series, &monitor_opts(50, 0.05, true, true), o)).unwrap();
        assert!(out.contains("DRIFT"), "{out}");
        assert!(out.contains("size: k = "), "{out}");
        assert!(!out.contains("explanation:"), "{out}");
    }

    /// A throwaway on-disk windows file for the streaming tests.
    struct TempWindows(std::path::PathBuf);

    impl TempWindows {
        fn new(tag: &str, windows: &[Vec<f64>]) -> Self {
            let path = std::env::temp_dir()
                .join(format!("moche-stream-test-{tag}-{}.csv", std::process::id()));
            let content: String = windows
                .iter()
                .map(|w| w.iter().map(f64::to_string).collect::<Vec<_>>().join(",") + "\n")
                .collect();
            std::fs::write(&path, content).unwrap();
            Self(path)
        }
    }

    impl Drop for TempWindows {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn batch_stream_matches_eager_batch_csv() {
        let (r, t) = shifted_sets();
        let windows = vec![t.clone(), r.clone(), t];
        let file = TempWindows::new("match", &windows);
        let opts = batch_opts(0.05, 2, &PreferenceSource::Identity, OutputFormat::Csv);
        let (eager, _) = capture(|o| run_batch(&r, &windows, &opts, o)).unwrap();
        let (streamed, status) =
            capture(|o| run_batch_stream(&r, &file.0, &opts, false, o)).unwrap();
        let rows = |s: &str| {
            s.lines().filter(|l| !l.starts_with('#')).map(String::from).collect::<Vec<_>>()
        };
        assert_eq!(rows(&eager), rows(&streamed));
        assert!(streamed.lines().any(|l| l.starts_with("# threads: ")), "{streamed}");
        assert_eq!(status.windows_explained, 2);
        assert_eq!(status.exit_code(), 0);
    }

    #[test]
    fn batch_stream_size_only_reports_k_per_window() {
        let (r, t) = shifted_sets();
        let windows = vec![t.clone(), r.clone(), t.clone()];
        let file = TempWindows::new("size", &windows);
        let opts = batch_opts(0.05, 1, &PreferenceSource::Identity, OutputFormat::Csv);
        let (csv, _) = capture(|o| run_batch_stream(&r, &file.0, &opts, true, o)).unwrap();
        assert!(csv.starts_with("window,k,k_hat"), "{csv}");
        // Windows 0 and 2 are identical: same k rows; window 1 passes.
        let k_rows: Vec<&str> =
            csv.lines().filter(|l| !l.starts_with('#') && !l.starts_with("window,")).collect();
        assert_eq!(k_rows.len(), 2, "{csv}");
        assert_eq!(k_rows[0].split_once(',').unwrap().1, k_rows[1].split_once(',').unwrap().1);
        // The reported k matches the full explanation's size.
        let (full, _) = capture(|o| {
            run_explain(&r, &t, None, 0.05, &PreferenceSource::Identity, OutputFormat::Csv, o)
        })
        .unwrap();
        let k: usize = k_rows[0].split(',').nth(1).unwrap().parse().unwrap();
        assert_eq!(k, full.lines().count() - 1);

        let text_opts = batch_opts(0.05, 1, &PreferenceSource::Identity, OutputFormat::Text);
        let (text, _) = capture(|o| run_batch_stream(&r, &file.0, &text_opts, true, o)).unwrap();
        assert!(text.contains("window 0: k = "), "{text}");
        assert!(text.contains("window 1: passes"), "{text}");
        assert!(text.contains("2 sized, 1 passing"), "{text}");
        assert!(text.contains("worker thread(s)"), "{text}");
    }

    #[test]
    fn batch_stream_surfaces_parse_errors() {
        let (r, _) = shifted_sets();
        let path =
            std::env::temp_dir().join(format!("moche-stream-test-bad-{}.csv", std::process::id()));
        std::fs::write(&path, "1.0,2.0,3.0\nnot-a-number\n").unwrap();
        let opts = batch_opts(0.05, 1, &PreferenceSource::Identity, OutputFormat::Text);
        let result = capture(|o| run_batch_stream(&r, &path, &opts, false, o));
        let _ = std::fs::remove_file(&path);
        match result {
            Err(CliError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_stream_all_error_runs_exit_nonzero() {
        let (r, _) = shifted_sets();
        // Every window carries a NaN: the stream completes (NaN parses as a
        // float) but each window fails with NonFiniteValue.
        let bad = vec![f64::NAN, 1.0, 2.0, 3.0, 4.0];
        let windows = vec![bad.clone(), bad];
        let file = TempWindows::new("all-error", &windows);
        let opts = batch_opts(0.05, 1, &PreferenceSource::Identity, OutputFormat::Text);
        let (out, status) = capture(|o| run_batch_stream(&r, &file.0, &opts, false, o)).unwrap();
        assert!(out.contains("window 0: error:"), "{out}");
        assert_eq!(status.window_errors, 2);
        assert_eq!(status.windows_explained, 0);
        assert_eq!(status.exit_code(), 1, "all-error streams must not exit 0");
    }

    #[test]
    fn batch_reports_effective_thread_count() {
        let (r, t) = shifted_sets();
        let windows = vec![t.clone(), t];
        let opts = batch_opts(0.05, 8, &PreferenceSource::Identity, OutputFormat::Text);
        let (out, _) = capture(|o| run_batch(&r, &windows, &opts, o)).unwrap();
        // Two jobs cap the pool at two workers regardless of the flag.
        assert!(out.contains("on 2 worker thread(s) (requested 8)"), "{out}");
        let csv_opts = batch_opts(0.05, 8, &PreferenceSource::Identity, OutputFormat::Csv);
        let (csv, _) = capture(|o| run_batch(&r, &windows, &csv_opts, o)).unwrap();
        assert!(csv.lines().any(|l| l == "# threads: 2"), "{csv}");
    }

    #[test]
    fn run_dispatches_help() {
        let (out, status) = capture(|o| run(Command::Help, o)).unwrap();
        assert!(out.contains("USAGE"));
        assert_eq!(status.exit_code(), 0);
    }

    #[test]
    fn exit_code_rules() {
        let status = |window_errors: usize, windows_explained: usize| RunStatus {
            window_errors,
            windows_explained,
            ..RunStatus::default()
        };
        assert_eq!(RunStatus::default().exit_code(), 0);
        assert_eq!(status(3, 0).exit_code(), 1);
        assert_eq!(status(3, 1).exit_code(), 0);
        assert_eq!(status(0, 0).exit_code(), 0);
    }

    #[test]
    fn snapshot_errors_map_to_exit_code_3() {
        let e = CliError::Snapshot(moche_stream::SnapshotError::Truncated);
        assert_eq!(e.exit_code(), 3);
        assert!(e.to_string().starts_with("snapshot:"), "{e}");
        assert_eq!(CliError::Usage("x".into()).exit_code(), 1, "run-phase usage errors stay 1");
    }

    /// A temp file path cleaned up on drop.
    struct TempPath(std::path::PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            Self(std::env::temp_dir().join(format!("moche-cmd-test-{tag}-{}", std::process::id())))
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn drifting_series() -> Vec<f64> {
        let mut series: Vec<f64> = (0..200).map(|i| f64::from(i % 7)).collect();
        series.extend((0..200).map(|i| f64::from(i % 7) + 25.0));
        series
    }

    /// The resumed half of an interrupted run must report exactly the
    /// alarms the uninterrupted run reports over the same observations
    /// (modulo the per-invocation `t = i` positions).
    #[test]
    fn monitor_checkpoint_then_resume_matches_uninterrupted_alarms() {
        let series = drifting_series();
        let cut = 230;
        let snap = TempPath::new("resume");

        let (full, _) =
            capture(|o| run_monitor(&series, &monitor_opts(50, 0.05, true, false), o)).unwrap();

        let mut first_opts = monitor_opts(50, 0.05, true, false);
        first_opts.checkpoint = Some(&snap.0);
        let (_, first_status) = capture(|o| run_monitor(&series[..cut], &first_opts, o)).unwrap();
        assert!(first_status.health.checkpoints_written > 0);

        let resume_opts = MonitorOptions {
            window: None,
            alpha: 0.05,
            explain: true,
            size_only: false,
            checkpoint: None,
            checkpoint_every: None,
            resume: Some(&snap.0),
        };
        let (resumed, _) = capture(|o| run_monitor(&series[cut..], &resume_opts, o)).unwrap();
        assert!(resumed.contains("resumed from"), "{resumed}");

        // Strip the per-invocation `t = N: ` prefixes and compare the
        // resumed run's alarm reports with the uninterrupted run's alarms
        // after the cut.
        let alarm_bodies = |s: &str| {
            s.lines()
                .filter(|l| l.contains("DRIFT"))
                .map(|l| l.split_once(": ").unwrap().1.to_string())
                .collect::<Vec<_>>()
        };
        let full_alarms = alarm_bodies(&full);
        let resumed_alarms = alarm_bodies(&resumed);
        let full_pre_cut = alarm_bodies(
            &capture(|o| run_monitor(&series[..cut], &monitor_opts(50, 0.05, true, false), o))
                .unwrap()
                .0,
        );
        assert_eq!(
            resumed_alarms,
            full_alarms[full_pre_cut.len()..],
            "resumed alarms must match the uninterrupted run's post-cut alarms"
        );
    }

    #[test]
    fn monitor_resume_rejects_mismatched_window_and_corrupt_snapshots() {
        let series = drifting_series();
        let snap = TempPath::new("reject");
        let mut opts = monitor_opts(50, 0.05, true, false);
        opts.checkpoint = Some(&snap.0);
        capture(|o| run_monitor(&series[..100], &opts, o)).unwrap();

        // A --window flag that contradicts the snapshot fails loudly.
        let mut mismatched = monitor_opts(60, 0.05, true, false);
        mismatched.resume = Some(&snap.0);
        match capture(|o| run_monitor(&series[100..], &mismatched, o)) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("does not match"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }

        // A truncated snapshot is a Snapshot error (exit code 3).
        let bytes = std::fs::read(&snap.0).unwrap();
        std::fs::write(&snap.0, &bytes[..bytes.len() / 2]).unwrap();
        let mut resume = monitor_opts(50, 0.05, true, false);
        resume.window = None;
        resume.resume = Some(&snap.0);
        match capture(|o| run_monitor(&series[100..], &resume, o)) {
            Err(e @ CliError::Snapshot(_)) => assert_eq!(e.exit_code(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn monitor_checkpoint_cadence_counts_writes() {
        let series: Vec<f64> = (0..120).map(|i| f64::from(i % 7)).collect();
        let snap = TempPath::new("cadence");
        let mut opts = monitor_opts(20, 0.05, true, false);
        opts.checkpoint = Some(&snap.0);
        opts.checkpoint_every = Some(50);
        let (out, status) = capture(|o| run_monitor(&series, &opts, o)).unwrap();
        // 120 pushes at cadence 50 → t=50, t=100, plus the final snapshot.
        assert_eq!(status.health.checkpoints_written, 3);
        assert!(out.contains("3 checkpoint(s) written"), "{out}");
        assert!(snap.0.exists());
    }
}
