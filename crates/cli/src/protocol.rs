//! The `moche serve` wire protocol: length-prefixed binary frames, with a
//! newline-JSON fallback for shells and scripting.
//!
//! ## Binary framing
//!
//! Every frame is a little-endian `u32` payload length followed by that
//! many payload bytes; the first payload byte is the opcode. Requests:
//!
//! | Opcode | Name | Payload after the opcode | Reply |
//! |---|---|---|---|
//! | `0x01` | `OBS` | `u64` series id + `f64` value (both LE; 17 bytes total) | none |
//! | `0x02` | `STATUS` | none | `0x82` + JSON stats object |
//! | `0x03` | `SERIES` | `u64` series id (9 bytes total) | `0x83` + JSON per-series object |
//! | `0x04` | `SHUTDOWN` | none | `0x84` + JSON stats object, then a graceful daemon exit |
//!
//! Replies reuse the same framing with the high bit of the request opcode
//! set. `OBS` is fire-and-forget — the common path pays no round trip; a
//! client that needs a write barrier sends `STATUS` (connections are
//! handled in order, so the reply proves every earlier `OBS` on that
//! connection was routed).
//!
//! Two opcodes are **server-initiated** and appear only with the reply
//! bit set (there is no request form):
//!
//! | Opcode | Name | When | Body |
//! |---|---|---|---|
//! | `0x85` | `BUSY` | the daemon is at `--max-connections` | `{"busy":true,"retry_after_ms":…,"max_connections":…}` |
//! | `0x86` | `ERR` | a malformed frame/line, or an eviction notice | `{"error":…,"budget_remaining":…}` or `{"error":…,"fatal":true}` |
//!
//! A `BUSY` reply is always binary-framed — it is written before the
//! first client byte arrives, so the connection's wire mode is still
//! unknown. `ERR` uses the connection's negotiated mode; `"fatal":true`
//! means framing can no longer be trusted and the connection closes right
//! after the reply.
//!
//! ## Newline-JSON mode
//!
//! A connection whose first byte is `{` speaks JSON instead: one object
//! per `\n`-terminated line — `{"series":7,"value":1.5}`,
//! `{"cmd":"status"}`, `{"cmd":"series","series":7}`,
//! `{"cmd":"shutdown"}` — with one JSON object line per reply. The mode is
//! fixed for the connection's lifetime (binary frames never start with
//! `0x7b` because the length prefix of any sane frame is small).

use std::io::{self, Read, Write};

/// Cap on accepted frame payloads. The largest legitimate request is an
/// `OBS` frame (17 bytes); anything bigger than this is a corrupt stream
/// or a hostile client, and is rejected before any allocation.
pub const MAX_FRAME_LEN: u32 = 4096;

/// Request opcodes.
pub mod op {
    /// One observation: series id + value.
    pub const OBS: u8 = 0x01;
    /// Fleet-wide stats request.
    pub const STATUS: u8 = 0x02;
    /// Per-series stats request.
    pub const SERIES: u8 = 0x03;
    /// Graceful shutdown request.
    pub const SHUTDOWN: u8 = 0x04;
    /// Server-initiated: the daemon is at `--max-connections` (sent with
    /// [`REPLY`] set, then the connection closes).
    pub const BUSY: u8 = 0x05;
    /// Server-initiated: a structured protocol error or eviction notice
    /// (sent with [`REPLY`] set).
    pub const ERR: u8 = 0x06;
    /// Reply bit: a reply's opcode is its request's opcode with this set.
    pub const REPLY: u8 = 0x80;
}

/// A decoded request, either wire mode.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Feed one observation to a series.
    Obs {
        /// Series id.
        series: u64,
        /// Observed value.
        value: f64,
    },
    /// Fleet-wide stats.
    Status,
    /// Per-series stats.
    Series {
        /// Series id.
        series: u64,
    },
    /// Graceful shutdown.
    Shutdown,
}

/// Why a request could not be decoded.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The peer closed the connection cleanly (between frames/lines).
    Closed,
    /// The bytes are not a valid frame or JSON line.
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::Closed => f.write_str("connection closed"),
            ProtocolError::Malformed(why) => write!(f, "malformed request: {why}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Closed
        } else {
            ProtocolError::Io(e)
        }
    }
}

/// Encodes an `OBS` frame (the client side of the hot path).
pub fn encode_obs(series: u64, value: f64) -> [u8; 21] {
    let mut frame = [0u8; 21];
    frame[..4].copy_from_slice(&17u32.to_le_bytes());
    frame[4] = op::OBS;
    frame[5..13].copy_from_slice(&series.to_le_bytes());
    frame[13..21].copy_from_slice(&value.to_le_bytes());
    frame
}

/// Encodes a payload-free request frame (`STATUS` / `SHUTDOWN`).
pub fn encode_op(opcode: u8) -> [u8; 5] {
    let mut frame = [0u8; 5];
    frame[..4].copy_from_slice(&1u32.to_le_bytes());
    frame[4] = opcode;
    frame
}

/// Encodes a `SERIES` request frame.
pub fn encode_series(series: u64) -> [u8; 13] {
    let mut frame = [0u8; 13];
    frame[..4].copy_from_slice(&9u32.to_le_bytes());
    frame[4] = op::SERIES;
    frame[5..13].copy_from_slice(&series.to_le_bytes());
    frame
}

/// Writes a reply frame: `request_opcode | REPLY`, then the JSON body.
///
/// # Errors
///
/// Any transport write failure.
pub fn write_reply(w: &mut dyn Write, request_opcode: u8, json: &str) -> io::Result<()> {
    let len = 1 + json.len();
    let len = u32::try_from(len).map_err(|_| io::Error::other("reply too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[request_opcode | op::REPLY])?;
    w.write_all(json.as_bytes())?;
    w.flush()
}

/// Reads one reply frame, returning `(opcode, body)` — the client side of
/// `STATUS`/`SERIES`/`SHUTDOWN` round trips (used by the soak harness).
///
/// # Errors
///
/// Transport failures, a clean close, or an oversized/invalid frame.
pub fn read_reply(r: &mut dyn Read) -> Result<(u8, Vec<u8>), ProtocolError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(ProtocolError::Malformed(format!("reply frame length {len}")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let opcode = payload[0];
    payload.remove(0);
    Ok((opcode, payload))
}

/// Reads and decodes one binary request frame.
///
/// # Errors
///
/// [`ProtocolError::Closed`] on a clean close between frames, `Io` on
/// transport failure, `Malformed` on an invalid length, opcode, or
/// payload shape (the connection should be dropped: framing is lost).
pub fn read_request(r: &mut dyn Read) -> Result<Request, ProtocolError> {
    let mut len = [0u8; 4];
    if let Err(e) = r.read_exact(&mut len) {
        // A clean EOF on the very first byte of a frame is a normal
        // disconnect, not a protocol violation.
        return Err(ProtocolError::from(e));
    }
    let len = u32::from_le_bytes(len);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(ProtocolError::Malformed(format!("frame length {len}")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_request(&payload)
}

/// Decodes a binary request payload (opcode + body).
///
/// # Errors
///
/// [`ProtocolError::Malformed`] for unknown opcodes or wrong body sizes.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    match payload {
        [o, rest @ ..] if *o == op::OBS => {
            if rest.len() != 16 {
                return Err(ProtocolError::Malformed(format!(
                    "OBS payload must be 16 bytes, got {}",
                    rest.len()
                )));
            }
            // lint:allow(panic): infallible — `rest.len() == 16` was checked
            let series = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
            // lint:allow(panic): infallible — `rest.len() == 16` was checked
            let value = f64::from_le_bytes(rest[8..].try_into().expect("8 bytes"));
            Ok(Request::Obs { series, value })
        }
        [o, rest @ ..] if *o == op::STATUS => {
            if !rest.is_empty() {
                return Err(ProtocolError::Malformed(format!(
                    "STATUS payload must be empty, got {} byte(s)",
                    rest.len()
                )));
            }
            Ok(Request::Status)
        }
        [o, rest @ ..] if *o == op::SERIES => {
            if rest.len() != 8 {
                return Err(ProtocolError::Malformed(format!(
                    "SERIES payload must be 8 bytes, got {}",
                    rest.len()
                )));
            }
            // lint:allow(panic): infallible — `rest.len() == 8` was checked
            Ok(Request::Series { series: u64::from_le_bytes(rest.try_into().expect("8 bytes")) })
        }
        [o, rest @ ..] if *o == op::SHUTDOWN => {
            if !rest.is_empty() {
                return Err(ProtocolError::Malformed(format!(
                    "SHUTDOWN payload must be empty, got {} byte(s)",
                    rest.len()
                )));
            }
            Ok(Request::Shutdown)
        }
        [o, ..] => Err(ProtocolError::Malformed(format!("unknown opcode {o:#04x}"))),
        [] => Err(ProtocolError::Malformed("empty payload".into())),
    }
}

/// The wire mode a connection's first byte selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Length-prefixed binary frames.
    Binary,
    /// One JSON object per newline-terminated line.
    JsonLines,
}

/// One step of [`FrameAssembler::next_frame`].
#[derive(Debug)]
pub enum Assembled {
    /// A complete, valid request was consumed from the buffer.
    Request(Request),
    /// A complete frame/line was consumed but could not be decoded.
    /// Framing is intact — the connection may answer with a structured
    /// error and keep going (subject to its error budget).
    Malformed(String),
    /// The byte stream itself can no longer be framed (an out-of-range
    /// binary length prefix, or a JSON line past the length bound with no
    /// terminator in sight). Nothing was consumed; the connection must
    /// close after a best-effort error reply.
    Fatal(String),
    /// No complete frame is buffered yet; read more bytes.
    NeedMore,
}

/// Incremental, timeout-tolerant request framing for the daemon.
///
/// The supervised read loop runs the socket with a short `read_timeout`
/// tick so it can check deadlines and the shutdown flag; that rules out
/// `read_exact` (a timeout mid-`read_exact` loses the bytes already
/// read). This assembler owns the partial-input state instead: feed every
/// chunk to [`extend`](Self::extend), then drain complete requests with
/// [`next_frame`](Self::next_frame). The connection's wire mode is fixed by its first
/// byte (`{` selects JSON lines), exactly like the blocking path.
///
/// Both modes are bounded by [`MAX_FRAME_LEN`]: binary length prefixes
/// outside `1..=MAX_FRAME_LEN` and JSON lines longer than `MAX_FRAME_LEN`
/// bytes are [`Assembled::Fatal`] — buffer growth is capped no matter
/// what the peer sends.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted away between calls).
    start: usize,
    mode: Option<WireMode>,
}

impl FrameAssembler {
    /// An empty assembler; the mode locks on the first byte received.
    pub fn new() -> Self {
        Self::default()
    }

    /// The connection's wire mode, once at least one byte has arrived.
    pub fn mode(&self) -> Option<WireMode> {
        self.mode
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.mode.is_none() {
            if let Some(&first) = bytes.first() {
                self.mode =
                    Some(if first == b'{' { WireMode::JsonLines } else { WireMode::Binary });
            }
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Whether unconsumed bytes are buffered — a partial frame in flight.
    /// The supervisor's mid-frame stall deadline keys off this.
    pub fn is_mid_frame(&self) -> bool {
        self.start < self.buf.len()
    }

    /// Consumes and returns the next complete request, if any.
    pub fn next_frame(&mut self) -> Assembled {
        let step = match self.mode {
            None => Assembled::NeedMore,
            Some(WireMode::Binary) => self.next_binary(),
            Some(WireMode::JsonLines) => self.next_json(),
        };
        // Compact eagerly when fully drained, lazily otherwise: the hot
        // path (one frame per read) hits the cheap `start == len` case.
        if self.start >= self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4 * MAX_FRAME_LEN as usize {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        step
    }

    fn next_binary(&mut self) -> Assembled {
        let avail = &self.buf[self.start..];
        let Some(prefix) = avail.get(..4) else { return Assembled::NeedMore };
        // lint:allow(panic): infallible — `prefix` is `.get(..4)` of the buffer
        let len = u32::from_le_bytes(prefix.try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME_LEN {
            return Assembled::Fatal(format!(
                "frame length {len} outside 1..={MAX_FRAME_LEN}; framing lost"
            ));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Assembled::NeedMore;
        }
        let decoded = decode_request(&avail[4..total]);
        self.start += total;
        match decoded {
            Ok(request) => Assembled::Request(request),
            Err(e) => Assembled::Malformed(malformed_reason(e)),
        }
    }

    fn next_json(&mut self) -> Assembled {
        let avail = &self.buf[self.start..];
        let Some(newline) = avail.iter().position(|&b| b == b'\n') else {
            if avail.len() > MAX_FRAME_LEN as usize {
                return Assembled::Fatal(format!(
                    "JSON line exceeds {MAX_FRAME_LEN} bytes with no terminator"
                ));
            }
            return Assembled::NeedMore;
        };
        if newline > MAX_FRAME_LEN as usize {
            return Assembled::Fatal(format!("JSON line exceeds {MAX_FRAME_LEN} bytes"));
        }
        let parsed = match std::str::from_utf8(&avail[..newline]) {
            Ok(line) => parse_json_request(line),
            Err(_) => Err(ProtocolError::Malformed("line is not UTF-8".into())),
        };
        self.start += newline + 1;
        match parsed {
            Ok(request) => Assembled::Request(request),
            Err(e) => Assembled::Malformed(malformed_reason(e)),
        }
    }
}

/// The bare reason out of a decode error (the only kind the pure decoders
/// produce) — what goes verbatim into an `ERR` reply's `"error"` field.
fn malformed_reason(e: ProtocolError) -> String {
    match e {
        ProtocolError::Malformed(why) => why,
        other => other.to_string(),
    }
}

/// Decodes one newline-JSON request line.
///
/// This is not a general JSON parser — it accepts exactly the four
/// request shapes the protocol defines, with any key order and
/// insignificant whitespace, and rejects everything else loudly.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] with a description of what was wrong.
pub fn parse_json_request(line: &str) -> Result<Request, ProtocolError> {
    let line = line.trim();
    if !(line.starts_with('{') && line.ends_with('}')) {
        return Err(ProtocolError::Malformed("expected a JSON object line".into()));
    }
    if let Some(cmd) = json_string_field(line, "cmd") {
        return match cmd.as_str() {
            "obs" => parse_json_obs(line),
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            "series" => {
                let series = json_u64_field(line, "series").ok_or_else(|| {
                    ProtocolError::Malformed("series command needs a \"series\" id".into())
                })?;
                Ok(Request::Series { series })
            }
            other => Err(ProtocolError::Malformed(format!("unknown cmd \"{other}\""))),
        };
    }
    parse_json_obs(line)
}

/// An observation line: `{"cmd":"obs","series":N,"value":X}` — the `cmd`
/// field is optional for this (and only this) request, so high-rate
/// producers can drop the constant field.
fn parse_json_obs(line: &str) -> Result<Request, ProtocolError> {
    let series = json_u64_field(line, "series")
        .ok_or_else(|| ProtocolError::Malformed("observation needs a \"series\" id".into()))?;
    let value = json_f64_field(line, "value")
        .ok_or_else(|| ProtocolError::Malformed("observation needs a \"value\"".into()))?;
    Ok(Request::Obs { series, value })
}

/// Finds `"key"` used as a key (followed by `:`) and returns the rest of
/// the line after the colon — skipping occurrences of the same text as a
/// string *value* (`{"cmd":"series"}` must not satisfy a "series" key
/// lookup).
fn json_after_key<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let mut search = line;
    loop {
        let at = search.find(&needle)?;
        let rest = search[at + needle.len()..].trim_start();
        if let Some(after_colon) = rest.strip_prefix(':') {
            return Some(after_colon.trim_start());
        }
        search = &search[at + needle.len()..];
    }
}

/// Extracts `"key": <number token>` from a flat JSON object line.
fn json_raw_number(line: &str, key: &str) -> Option<String> {
    let rest = json_after_key(line, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some(rest[..end].to_string())
}

fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    json_raw_number(line, key)?.parse().ok()
}

fn json_f64_field(line: &str, key: &str) -> Option<f64> {
    json_raw_number(line, key)?.parse().ok()
}

/// Extracts `"key": "value"` from a flat JSON object line (no escape
/// handling — the protocol's strings are bare command words).
fn json_string_field(line: &str, key: &str) -> Option<String> {
    let rest = json_after_key(line, key)?;
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// A minimal JSON object builder for the reply bodies (numbers, booleans
/// and pre-quoted strings only — everything the status endpoint needs).
#[derive(Debug, Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push('"');
        self.body.push_str(key);
        self.body.push_str("\":");
    }

    /// Adds an unsigned-integer field.
    #[must_use]
    pub fn field_u64(mut self, key: &str, value: u64) -> Self {
        self.push_key(key);
        self.body.push_str(&value.to_string());
        self
    }

    /// Adds a float field (JSON `null` for non-finite values).
    #[must_use]
    pub fn field_f64(mut self, key: &str, value: f64) -> Self {
        self.push_key(key);
        if value.is_finite() {
            self.body.push_str(&format!("{value}"));
        } else {
            self.body.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn field_bool(mut self, key: &str, value: bool) -> Self {
        self.push_key(key);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a string field (the value must not need escaping).
    #[must_use]
    pub fn field_str(mut self, key: &str, value: &str) -> Self {
        debug_assert!(!value.contains(['"', '\\']), "JsonObject does not escape");
        self.push_key(key);
        self.body.push('"');
        self.body.push_str(value);
        self.body.push('"');
        self
    }

    /// Finishes the object.
    #[must_use]
    pub fn build(self) -> String {
        format!("{{{}}}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_obs_round_trips() {
        let frame = encode_obs(42, -1.5);
        let mut cursor = &frame[..];
        assert_eq!(read_request(&mut cursor).unwrap(), Request::Obs { series: 42, value: -1.5 });
        assert!(cursor.is_empty(), "the frame must be consumed exactly");
    }

    #[test]
    fn binary_control_frames_round_trip() {
        let mut cursor = &encode_op(op::STATUS)[..];
        assert_eq!(read_request(&mut cursor).unwrap(), Request::Status);
        let mut cursor = &encode_op(op::SHUTDOWN)[..];
        assert_eq!(read_request(&mut cursor).unwrap(), Request::Shutdown);
        let mut cursor = &encode_series(7)[..];
        assert_eq!(read_request(&mut cursor).unwrap(), Request::Series { series: 7 });
    }

    #[test]
    fn oversized_and_empty_frames_are_rejected() {
        let mut zero = &[0u8, 0, 0, 0][..];
        assert!(matches!(read_request(&mut zero), Err(ProtocolError::Malformed(_))));
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes();
        let mut huge = &huge[..];
        assert!(matches!(read_request(&mut huge), Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn clean_eof_between_frames_is_closed_not_error() {
        let mut empty = &[][..];
        assert!(matches!(read_request(&mut empty), Err(ProtocolError::Closed)));
        // EOF *inside* a frame is also surfaced as Closed (torn stream).
        let mut torn = &encode_obs(1, 1.0)[..10];
        assert!(matches!(read_request(&mut torn), Err(ProtocolError::Closed)));
    }

    #[test]
    fn wrong_payload_sizes_are_rejected() {
        for payload in [&[op::OBS, 0u8][..], &[op::SERIES][..], &[0x7f][..], &[][..]] {
            assert!(matches!(decode_request(payload), Err(ProtocolError::Malformed(_))));
        }
    }

    #[test]
    fn json_requests_parse() {
        assert_eq!(
            parse_json_request("{\"series\": 3, \"value\": -2.25}").unwrap(),
            Request::Obs { series: 3, value: -2.25 }
        );
        assert_eq!(
            parse_json_request("{\"value\":1e3,\"series\":12}").unwrap(),
            Request::Obs { series: 12, value: 1000.0 }
        );
        assert_eq!(
            parse_json_request("{\"cmd\":\"obs\",\"series\":4,\"value\":0.5}").unwrap(),
            Request::Obs { series: 4, value: 0.5 }
        );
        assert_eq!(parse_json_request("{\"cmd\":\"status\"}").unwrap(), Request::Status);
        assert_eq!(parse_json_request("{\"cmd\":\"shutdown\"}").unwrap(), Request::Shutdown);
        assert_eq!(
            parse_json_request("{\"cmd\":\"series\",\"series\":9}").unwrap(),
            Request::Series { series: 9 }
        );
    }

    #[test]
    fn malformed_json_is_rejected_with_a_reason() {
        for bad in [
            "not json",
            "{}",
            "{\"cmd\":\"frobnicate\"}",
            "{\"series\":1}",
            "{\"value\":1.0}",
            "{\"cmd\":\"series\"}",
            "{\"series\":\"nope\",\"value\":1}",
        ] {
            assert!(
                matches!(parse_json_request(bad), Err(ProtocolError::Malformed(_))),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn reply_framing_round_trips() {
        let mut buf = Vec::new();
        write_reply(&mut buf, op::STATUS, "{\"ok\":true}").unwrap();
        let mut cursor = &buf[..];
        let (opcode, body) = read_reply(&mut cursor).unwrap();
        assert_eq!(opcode, op::STATUS | op::REPLY);
        assert_eq!(body, b"{\"ok\":true}");
    }

    /// A frame with the given opcode and a deliberately wrong payload
    /// length.
    fn bad_frame(opcode: u8, body_len: usize) -> Vec<u8> {
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::try_from(1 + body_len).unwrap().to_le_bytes());
        frame.push(opcode);
        frame.extend(std::iter::repeat_n(0u8, body_len));
        frame
    }

    /// Satellite coverage: every op with a wrong payload length decodes to
    /// a *specific* structured message (these exact strings are what the
    /// daemon's `ERR` replies carry, so they are pinned here).
    #[test]
    fn every_op_with_a_wrong_length_names_the_problem() {
        let cases: [(u8, usize, &str); 5] = [
            (op::OBS, 3, "OBS payload must be 16 bytes, got 3"),
            (op::STATUS, 2, "STATUS payload must be empty, got 2 byte(s)"),
            (op::SERIES, 11, "SERIES payload must be 8 bytes, got 11"),
            (op::SHUTDOWN, 1, "SHUTDOWN payload must be empty, got 1 byte(s)"),
            (0x7f, 0, "unknown opcode 0x7f"),
        ];
        for (opcode, body_len, expected) in cases {
            let mut asm = FrameAssembler::new();
            asm.extend(&bad_frame(opcode, body_len));
            match asm.next_frame() {
                Assembled::Malformed(why) => assert_eq!(why, expected),
                other => panic!("opcode {opcode:#04x}: expected Malformed, got {other:?}"),
            }
            // Framing is intact: a valid frame right after still decodes.
            asm.extend(&encode_obs(1, 2.0));
            assert!(matches!(asm.next_frame(), Assembled::Request(Request::Obs { series: 1, .. })));
        }
    }

    #[test]
    fn assembler_reassembles_split_binary_frames() {
        let mut asm = FrameAssembler::new();
        let frame = encode_obs(42, -1.5);
        // One byte at a time: every prefix is NeedMore, the last byte
        // completes the request.
        for &byte in &frame[..frame.len() - 1] {
            asm.extend(&[byte]);
            assert!(matches!(asm.next_frame(), Assembled::NeedMore));
            assert!(asm.is_mid_frame());
        }
        asm.extend(&frame[frame.len() - 1..]);
        match asm.next_frame() {
            Assembled::Request(Request::Obs { series, value }) => {
                assert_eq!((series, value), (42, -1.5));
            }
            other => panic!("expected the completed OBS, got {other:?}"),
        }
        assert!(!asm.is_mid_frame(), "the frame must be fully consumed");
        // Two frames in one chunk drain back-to-back.
        asm.extend(&encode_series(7));
        asm.extend(&encode_op(op::STATUS));
        assert!(matches!(asm.next_frame(), Assembled::Request(Request::Series { series: 7 })));
        assert!(matches!(asm.next_frame(), Assembled::Request(Request::Status)));
        assert!(matches!(asm.next_frame(), Assembled::NeedMore));
    }

    #[test]
    fn assembler_out_of_range_lengths_are_fatal() {
        for len in [0u32, MAX_FRAME_LEN + 1] {
            let mut asm = FrameAssembler::new();
            asm.extend(&len.to_le_bytes());
            assert!(matches!(asm.next_frame(), Assembled::Fatal(_)), "length {len} must be fatal");
        }
    }

    #[test]
    fn assembler_selects_json_mode_and_bounds_lines() {
        let mut asm = FrameAssembler::new();
        asm.extend(b"{\"series\":3,\"value\":1.5}\n{\"cmd\":\"status\"}\n");
        assert_eq!(asm.mode(), Some(WireMode::JsonLines));
        assert!(matches!(asm.next_frame(), Assembled::Request(Request::Obs { series: 3, .. })));
        assert!(matches!(asm.next_frame(), Assembled::Request(Request::Status)));
        // A malformed line is recoverable (framing resyncs at newline)...
        asm.extend(b"{\"cmd\":\"frobnicate\"}\n{\"cmd\":\"status\"}\n");
        assert!(matches!(asm.next_frame(), Assembled::Malformed(_)));
        assert!(matches!(asm.next_frame(), Assembled::Request(Request::Status)));
        // ...but an unterminated line past MAX_FRAME_LEN is fatal: the
        // buffer must not grow without bound (the satellite case).
        let mut asm = FrameAssembler::new();
        let oversized = vec![b'{'; MAX_FRAME_LEN as usize + 2];
        asm.extend(&oversized);
        match asm.next_frame() {
            Assembled::Fatal(why) => assert!(why.contains("no terminator"), "{why}"),
            other => panic!("unbounded line must be fatal, got {other:?}"),
        }
        // A terminated-but-oversized line is fatal too (same bound).
        let mut asm = FrameAssembler::new();
        let mut line = vec![b'{'; MAX_FRAME_LEN as usize + 2];
        line.push(b'\n');
        asm.extend(&line);
        assert!(matches!(asm.next_frame(), Assembled::Fatal(_)));
    }

    #[test]
    fn json_builder_emits_valid_objects() {
        let json = JsonObject::new()
            .field_u64("series", 5)
            .field_f64("alpha", 0.05)
            .field_bool("clean", true)
            .field_str("mode", "binary")
            .build();
        assert_eq!(json, "{\"series\":5,\"alpha\":0.05,\"clean\":true,\"mode\":\"binary\"}");
        assert_eq!(JsonObject::new().build(), "{}");
    }
}
