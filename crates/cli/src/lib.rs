//! # moche-cli
//!
//! The `moche` command-line tool: run two-sample KS tests, compute minimum
//! explanation sizes, produce most-comprehensible counterfactual
//! explanations, and monitor streaming series — all over plain text data
//! files (one value per line).
//!
//! ```text
//! moche test    reference.txt test.txt --alpha 0.05
//! moche explain reference.txt test.txt --preference sr --format csv
//! moche monitor series.txt --window 500
//! ```
//!
//! The command logic lives in this library crate ([`commands::run`]) so it
//! is unit-testable; `main.rs` is a thin shell that hands it one locked,
//! buffered stdout writer — streaming commands print results as they are
//! delivered, in constant memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod io;
pub mod protocol;
pub mod serve;

pub use args::{parse, Command, OutputFormat, PreferenceSource, USAGE};
pub use commands::{run, HealthReport, RunStatus};
pub use io::CliError;
pub use serve::{Listen, ServeOptions};
