//! Async-signal-safe SIGTERM/SIGINT delivery for the `moche serve` daemon.
//!
//! Every other crate in this workspace is `forbid(unsafe_code)`; installing
//! a process signal handler is irreducibly unsafe (an `extern "C"` callback
//! that may only touch async-signal-safe state), so that one responsibility
//! lives here, alone, behind a safe API.
//!
//! The mechanism is the classic **self-pipe trick**: the handler — which
//! must not lock, allocate, or call into Rust runtime machinery — records
//! the signal number in an atomic and writes a single byte to a pipe
//! (`write(2)` is async-signal-safe). A dedicated watcher thread blocks on
//! the read end and, back in ordinary thread context, invokes the callbacks
//! registered through [`on_termination`]. Handlers are installed once per
//! process, on first registration; later registrations just add callbacks.
//!
//! This deliberately supports exactly the daemon's need — "run this closure
//! when the process is asked to terminate" — and nothing else: no signal
//! masks, no handler chaining, no `sigaction` flags. On non-unix targets
//! [`on_termination`] reports [`SignalError::Unsupported`] and the caller
//! degrades to whatever in-band shutdown it already has.

#![warn(missing_docs)]

/// `SIGINT` (interactive interrupt, Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite termination request; what orchestrators send first).
pub const SIGTERM: i32 = 15;

/// Why termination callbacks could not be registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignalError {
    /// `pipe(2)` or `signal(2)` failed, or the watcher thread could not be
    /// spawned. The payload names the failing step.
    Install(String),
    /// The target platform has no unix signals.
    Unsupported,
}

impl std::fmt::Display for SignalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignalError::Install(what) => write!(f, "signal handler install failed: {what}"),
            SignalError::Unsupported => f.write_str("signals are not supported on this platform"),
        }
    }
}

impl std::error::Error for SignalError {}

/// The human name of a termination signal this crate handles.
pub fn signal_name(signal: i32) -> &'static str {
    match signal {
        SIGINT => "SIGINT",
        SIGTERM => "SIGTERM",
        _ => "signal",
    }
}

/// Registers `callback` to run (on a watcher thread, not in the handler)
/// when the process receives `SIGTERM` or `SIGINT`. The first call installs
/// the handlers and spawns the watcher; every call appends its callback.
/// Callbacks run in registration order, once per delivered signal, and must
/// be idempotent — a second Ctrl-C runs them again.
///
/// # Errors
///
/// [`SignalError::Install`] if the pipe, handler installation, or watcher
/// thread fails; [`SignalError::Unsupported`] on non-unix targets. Either
/// way the process's default signal disposition is unchanged on failure.
pub fn on_termination<F>(callback: F) -> Result<(), SignalError>
where
    F: FnMut(i32) + Send + 'static,
{
    imp::on_termination(Box::new(callback))
}

#[cfg(unix)]
mod imp {
    use super::SignalError;
    use std::sync::atomic::{AtomicI32, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};

    // The libc surface this crate needs, declared directly: the workspace
    // vendors its dependencies and has no libc crate, and std links libc on
    // every unix target anyway.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    /// `SIG_ERR`, the error return of `signal(2)`: `(void *)-1`.
    const SIG_ERR: usize = usize::MAX;

    /// Write end of the self-pipe (`-1` until installed).
    static WRITE_FD: AtomicI32 = AtomicI32::new(-1);
    /// The most recent signal number, for the watcher to report.
    static LAST_SIGNAL: AtomicI32 = AtomicI32::new(0);

    /// The handler proper. Async-signal-safe by construction: one atomic
    /// store and one `write(2)` of one byte, nothing else.
    extern "C" fn on_signal(signum: i32) {
        LAST_SIGNAL.store(signum, Ordering::SeqCst);
        let fd = WRITE_FD.load(Ordering::SeqCst);
        if fd >= 0 {
            let byte = 1u8;
            // SAFETY: `fd` is the write end of a pipe this process opened
            // and never closes; the buffer is a live 1-byte stack slot.
            // `write(2)` is on the async-signal-safe list.
            unsafe {
                let _ = write(fd, &byte, 1);
            }
        }
    }

    type Callback = Box<dyn FnMut(i32) + Send>;

    fn callbacks() -> &'static Mutex<Vec<Callback>> {
        static CALLBACKS: OnceLock<Mutex<Vec<Callback>>> = OnceLock::new();
        CALLBACKS.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// One-shot install of pipe + handlers + watcher thread. The result is
    /// latched: a failed install stays failed for the process lifetime
    /// (handlers are process-global; retrying cannot un-wedge a failed
    /// `signal(2)`).
    fn install() -> Result<(), SignalError> {
        static INSTALLED: OnceLock<Result<(), SignalError>> = OnceLock::new();
        INSTALLED
            .get_or_init(|| {
                let mut fds = [-1i32; 2];
                // SAFETY: `fds` is a live, writable array of exactly the
                // two `int`s `pipe(2)` fills in.
                if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                    return Err(SignalError::Install("pipe(2)".into()));
                }
                let (read_fd, write_fd) = (fds[0], fds[1]);
                WRITE_FD.store(write_fd, Ordering::SeqCst);
                for signum in [super::SIGTERM, super::SIGINT] {
                    // SAFETY: `on_signal` is `extern "C"`, lives for the
                    // whole process, and touches only async-signal-safe
                    // state; `signum` is a valid catchable signal.
                    if unsafe { signal(signum, on_signal) } == SIG_ERR {
                        return Err(SignalError::Install(format!("signal({signum})")));
                    }
                }
                std::thread::Builder::new()
                    .name("moche-signal".into())
                    .spawn(move || watcher(read_fd))
                    .map(drop)
                    .map_err(|e| SignalError::Install(format!("watcher thread: {e}")))
            })
            .clone()
    }

    /// Blocks on the pipe forever (the process exit reaps this thread); one
    /// byte in the pipe means one delivered signal.
    fn watcher(read_fd: i32) {
        loop {
            let mut byte = 0u8;
            // SAFETY: `read_fd` is the read end of the install-time pipe,
            // owned by this thread alone; the buffer is a live 1-byte
            // stack slot.
            let n = unsafe { read(read_fd, &mut byte, 1) };
            if n == 1 {
                let signum = LAST_SIGNAL.load(Ordering::SeqCst);
                let mut callbacks = callbacks().lock().unwrap_or_else(PoisonError::into_inner);
                for callback in callbacks.iter_mut() {
                    callback(signum);
                }
            } else if n == 0 {
                return; // write end closed: cannot happen, but don't spin
            }
            // n < 0 is EINTR or a transient error: retry the read.
        }
    }

    pub fn on_termination(callback: Callback) -> Result<(), SignalError> {
        // Register before installing so a signal that lands immediately
        // after install still sees this callback.
        callbacks().lock().unwrap_or_else(PoisonError::into_inner).push(callback);
        install()
    }
}

#[cfg(not(unix))]
mod imp {
    use super::SignalError;

    pub fn on_termination(_callback: Box<dyn FnMut(i32) + Send>) -> Result<(), SignalError> {
        Err(SignalError::Unsupported)
    }
}

#[cfg(all(test, unix))]
mod tests {
    use std::sync::atomic::{AtomicI32, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    /// One test only: handlers and the watcher are process-global, so the
    /// full install → raise → callback path is exercised exactly once per
    /// test process (additional `#[test]` fns would race on delivery
    /// ordering, not add coverage).
    #[test]
    fn raised_sigterm_reaches_the_callback() {
        let seen = Arc::new(AtomicI32::new(0));
        let seen_cb = Arc::clone(&seen);
        super::on_termination(move |signum| {
            seen_cb.store(signum, Ordering::SeqCst);
        })
        .expect("install handlers");
        // With the handler replaced, raise(SIGTERM) no longer kills us.
        // SAFETY: plain FFI call; `SIGTERM` is a valid signal number and
        // the handler installed above is async-signal-safe.
        assert_eq!(unsafe { raise(super::SIGTERM) }, 0);
        let deadline = Instant::now() + Duration::from_secs(10);
        while seen.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(seen.load(Ordering::SeqCst), super::SIGTERM, "callback saw the signal");
        assert_eq!(super::signal_name(super::SIGTERM), "SIGTERM");
        assert_eq!(super::signal_name(super::SIGINT), "SIGINT");
        assert_eq!(super::signal_name(99), "signal");
    }
}
