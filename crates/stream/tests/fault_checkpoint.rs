//! Failpoint-driven crash scenarios for the checkpoint writer.
//!
//! Compiled only under `--features fault-injection`. The `checkpoint.write`
//! failpoint turns [`MonitorSnapshot::write_atomic`] into the two failures
//! the atomic protocol exists to survive:
//!
//! * `Fault::Error` — the write fails outright, and a previously written
//!   checkpoint at the same path must stay intact and resumable;
//! * `Fault::TruncateWrite(n)` — a torn write lands `n` bytes at the final
//!   path (the crash-without-rename case), and resume must *reject* the
//!   file rather than restore a half-monitor.
//!
//! The failpoint registry is process-global, so all scenarios run as
//! sequential phases of one `#[test]`.

#![cfg(feature = "fault-injection")]

use std::path::PathBuf;

use moche_core::fault::{self, Fault};
use moche_stream::{DriftMonitor, MonitorConfig, SnapshotError};

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("moche-fault-checkpoint");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A monitor with full windows and a few counters worth preserving.
fn warm_monitor() -> DriftMonitor {
    let mut monitor = DriftMonitor::new(MonitorConfig::new(8, 0.05)).unwrap();
    for i in 0..20 {
        let value = f64::from(i % 5) + if i >= 12 { 30.0 } else { 0.0 };
        monitor.push(value);
    }
    monitor
}

#[test]
fn checkpoint_write_faults_are_contained() {
    let monitor = warm_monitor();

    failed_write_reports_io_and_preserves_the_previous_checkpoint(&monitor);
    torn_writes_are_rejected_on_resume(&monitor);
    torn_write_after_a_good_checkpoint_is_detected_not_restored(&monitor);
}

fn failed_write_reports_io_and_preserves_the_previous_checkpoint(monitor: &DriftMonitor) {
    let path = tmp_dir().join("failed-write.snap");
    let _ = std::fs::remove_file(&path);

    // First failure mode: no checkpoint has ever been written. The write
    // must error and must not leave a file behind.
    fault::arm("checkpoint.write", Fault::Error, 0, 1);
    let err = monitor.checkpoint(&path).expect_err("injected write failure");
    assert!(matches!(err, SnapshotError::Io(_)), "got {err:?}");
    assert!(!path.exists(), "a failed write must not create the checkpoint");

    // Second failure mode: a good checkpoint already exists. The failed
    // overwrite must leave it byte-for-byte intact and resumable.
    monitor.checkpoint(&path).expect("clean write");
    let good_bytes = std::fs::read(&path).unwrap();
    fault::arm("checkpoint.write", Fault::Error, 0, 1);
    monitor.checkpoint(&path).expect_err("injected write failure");
    fault::disarm("checkpoint.write");
    assert_eq!(std::fs::read(&path).unwrap(), good_bytes);
    let resumed = DriftMonitor::resume_from(&path).expect("previous checkpoint must survive");
    assert_eq!(resumed.pushes(), monitor.pushes());
    let _ = std::fs::remove_file(&path);
}

fn torn_writes_are_rejected_on_resume(monitor: &DriftMonitor) {
    let path = tmp_dir().join("torn-write.snap");
    let full_len = monitor.snapshot().to_bytes().len();

    // Every proper prefix of the snapshot simulates a crash at that byte;
    // none may restore. Short prefixes die on the magic/header checks,
    // longer ones on the missing checksum.
    for keep in [0, 1, 7, 8, 19, 20, full_len / 2, full_len - 4, full_len - 1] {
        fault::arm("checkpoint.write", Fault::TruncateWrite(keep), 0, 1);
        monitor.checkpoint(&path).expect("a torn write reports success — that is the point");
        fault::disarm("checkpoint.write");
        assert_eq!(std::fs::read(&path).unwrap().len(), keep);

        let err = DriftMonitor::resume_from(&path)
            .expect_err(&format!("a {keep}-byte torn file must not restore"));
        assert!(
            matches!(
                err,
                SnapshotError::Truncated
                    | SnapshotError::BadMagic
                    | SnapshotError::ChecksumMismatch
            ),
            "keep = {keep}: got {err:?}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// The end-to-end crash story: checkpoint, keep pushing, crash mid-write
/// of the *next* checkpoint. The torn file is detected, and the operator
/// falls back to the preserved earlier checkpoint.
fn torn_write_after_a_good_checkpoint_is_detected_not_restored(monitor: &DriftMonitor) {
    let dir = tmp_dir();
    let good = dir.join("rotation-good.snap");
    let torn = dir.join("rotation-torn.snap");

    monitor.checkpoint(&good).expect("clean write");

    let mut later = DriftMonitor::resume_from(&good).expect("resume the good checkpoint");
    for i in 0..5 {
        later.push(f64::from(i));
    }
    fault::arm("checkpoint.write", Fault::TruncateWrite(13), 0, 1);
    later.checkpoint(&torn).expect("torn write reports success");
    fault::disarm("checkpoint.write");

    assert!(DriftMonitor::resume_from(&torn).is_err(), "the torn checkpoint must be rejected");
    let fallback = DriftMonitor::resume_from(&good).expect("the older checkpoint still restores");
    assert_eq!(fallback.pushes(), monitor.pushes());
    assert_eq!(fallback.snapshot(), monitor.snapshot());

    let _ = std::fs::remove_file(&good);
    let _ = std::fs::remove_file(&torn);
}
