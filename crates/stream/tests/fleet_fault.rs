//! Failpoint-driven failure scenarios at the fleet's daemon seams.
//!
//! Compiled only under `--features fault-injection`. Three seams:
//!
//! * `serve.shard_worker` + `Fault::Panic` — a panic mid-push is caught,
//!   the one poisoned series is quarantined, and the shard keeps serving
//!   every other series;
//! * `serve.checkpoint` + `Fault::Error` — a failed shard checkpoint is
//!   reported and counted, and the previous checkpoint file stays
//!   resumable;
//! * `serve.checkpoint` + `Fault::TruncateWrite` — a torn shard file at
//!   the final path is *rejected* on resume, never half-restored.
//!
//! The failpoint registry is process-global, so the scenarios run as
//! sequential phases of one `#[test]`.

#![cfg(feature = "fault-injection")]

use moche_core::fault::{self, Fault};
use moche_stream::{FleetConfig, FleetPush, MonitorConfig, MonitorFleet, SnapshotError};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moche-fleet-fault-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn fleet(shards: usize) -> MonitorFleet {
    let mut monitor = MonitorConfig::new(6, 0.05);
    monitor.reset_on_drift = false;
    MonitorFleet::new(FleetConfig::new(shards, monitor)).expect("valid config")
}

#[test]
fn fleet_seam_faults_are_contained() {
    worker_panic_quarantines_one_series_only();
    checkpoint_error_keeps_the_previous_file();
    torn_shard_checkpoints_are_rejected_on_resume();
}

fn worker_panic_quarantines_one_series_only() {
    let mut fleet = fleet(2);
    for i in 0..30u64 {
        for id in 0..6u64 {
            fleet.push(id, ((i * 13 + id) % 7) as f64).expect("finite");
        }
    }
    let victim = 3u64;
    let before = fleet.series_stats(victim).expect("exists");

    // Arm: the next push through any shard panics mid-update.
    fault::arm("serve.shard_worker", Fault::Panic, 0, 1);
    let outcome = fleet.push(victim, 1.0).expect("panic is caught, not surfaced");
    fault::disarm("serve.shard_worker");
    assert!(matches!(outcome, FleetPush::Quarantined), "got {outcome:?}");

    // The victim is gone; everything else kept its state and keeps
    // accepting observations.
    assert!(fleet.series_stats(victim).is_none(), "quarantined series must be removed");
    assert_eq!(fleet.series_count(), 5);
    for id in (0..6u64).filter(|&id| id != victim) {
        let stats = fleet.series_stats(id).expect("survivors keep their state");
        assert_eq!(stats.pushes, before.pushes, "survivors were not touched");
        fleet.push(id, 2.0).expect("survivors keep accepting");
    }
    // A new observation for the quarantined id starts a fresh series.
    assert!(matches!(fleet.push(victim, 1.0).expect("finite"), FleetPush::Warming));
    let view = fleet.stats().view();
    assert_eq!(view.worker_panics, 1);
    assert_eq!(view.quarantined_series, 1);
    assert!(!view.is_clean());
}

fn checkpoint_error_keeps_the_previous_file() {
    let dir = tmp_dir("error");
    let mut fleet = fleet(1);
    for i in 0..30u64 {
        fleet.push(1, (i % 7) as f64).expect("finite");
    }
    fleet.checkpoint_dir(&dir).expect("first checkpoint succeeds");
    let good = std::fs::read(dir.join("shard-0000.snap")).expect("file exists");

    for i in 0..10u64 {
        fleet.push(1, (i % 7) as f64).expect("finite");
    }
    fault::arm("serve.checkpoint", Fault::Error, 0, 1);
    let result = fleet.checkpoint_dir(&dir);
    fault::disarm("serve.checkpoint");
    assert!(matches!(result, Err(SnapshotError::Io(_))), "got {result:?}");

    // The failed attempt never touched the durable file: resuming yields
    // the 30-push state, not a torn or half-new one.
    assert_eq!(std::fs::read(dir.join("shard-0000.snap")).expect("still there"), good);
    let resumed =
        MonitorFleet::resume_from_dir(*fleet.config(), &dir).expect("previous file resumes");
    assert_eq!(resumed.series_stats(1).expect("exists").pushes, 30);
    let view = fleet.stats().view();
    assert_eq!(view.checkpoint_failures, 1);
    assert_eq!(view.checkpoints_written, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

fn torn_shard_checkpoints_are_rejected_on_resume() {
    let dir = tmp_dir("torn");
    let mut fleet = fleet(1);
    for i in 0..30u64 {
        fleet.push(1, (i % 7) as f64).expect("finite");
    }
    // Tear the write at every interesting prefix length: resume must
    // reject each torn file, never construct a fleet from it.
    let full = {
        fleet.checkpoint_dir(&dir).expect("baseline write");
        std::fs::read(dir.join("shard-0000.snap")).expect("read back").len()
    };
    for keep in [0, 7, 8, 12, 20, full / 2, full - 1] {
        fault::arm("serve.checkpoint", Fault::TruncateWrite(keep), 0, 1);
        fleet.checkpoint_dir(&dir).expect("a torn write reports success — that is the point");
        fault::disarm("serve.checkpoint");
        let result = MonitorFleet::resume_from_dir(*fleet.config(), &dir);
        assert!(
            matches!(
                result,
                Err(SnapshotError::Truncated
                    | SnapshotError::BadMagic
                    | SnapshotError::ChecksumMismatch
                    | SnapshotError::Invalid(_))
            ),
            "torn at {keep}/{full} bytes must be rejected, got {result:?}"
        );
    }
    // An intact rewrite recovers.
    fleet.checkpoint_dir(&dir).expect("clean write");
    let resumed = MonitorFleet::resume_from_dir(*fleet.config(), &dir).expect("clean resume");
    assert_eq!(resumed.series_stats(1).expect("exists").pushes, 30);
    let _ = std::fs::remove_dir_all(&dir);
}
