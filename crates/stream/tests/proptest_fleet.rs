//! Property-based tests of the monitor fleet, pinning the two contracts
//! the `moche serve` daemon is built on:
//!
//! 1. **Shard stability** — `shard_of` is a pure function of (series id,
//!    shard count): the same id maps to the same shard in any process,
//!    any restart, any order of arrival. Checkpoint resume depends on it.
//! 2. **Backpressure sheds work, never data** — every accepted
//!    observation lands in its series (the per-series `pushes` counters
//!    sum to exactly the accepted count), the deferred explain queue
//!    never exceeds its bound, and alarms are fully accounted:
//!    `alarms == explained + explain_dropped`, whatever the load shape.

use moche_stream::{shard_of, FleetConfig, FleetPush, MonitorConfig, MonitorFleet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Same id, same shard count → same shard, regardless of which
    // "process" (fresh computation) asks, in what order, or what other
    // ids exist. Also: the result is always in range.
    #[test]
    fn shard_assignment_is_stable_and_in_range(
        ids in proptest::collection::vec(0u64..u64::MAX, 1..200),
        shards in 1usize..32,
    ) {
        let first: Vec<usize> = ids.iter().map(|&id| shard_of(id, shards)).collect();
        // "Restart": recompute in reverse order, interleaved with other
        // lookups — a pure function cannot care.
        for (i, &id) in ids.iter().enumerate().rev() {
            let _ = shard_of(id.wrapping_add(1), shards);
            prop_assert_eq!(shard_of(id, shards), first[i]);
            prop_assert!(first[i] < shards);
        }
    }

    // A fleet routes a series to the shard `shard_of` names — the
    // contract that lets external clients (the daemon's connection
    // handlers) pick the right worker ring without asking the fleet.
    #[test]
    fn fleet_routing_agrees_with_shard_of(
        ids in proptest::collection::vec(0u64..u64::MAX, 1..50),
        shards in 1usize..8,
    ) {
        let fleet = MonitorFleet::new(FleetConfig::new(shards, MonitorConfig::new(8, 0.05)))
            .expect("valid config");
        for &id in &ids {
            prop_assert_eq!(fleet.route(id), shard_of(id, shards));
        }
    }

    // Under arbitrary multi-series loads: no accepted observation is
    // lost (pushes conservation), the explain queue never grows past
    // its bound, and every alarm is either explained or counted as
    // shed — nothing disappears.
    #[test]
    fn backpressure_sheds_explains_never_observations(
        plan in proptest::collection::vec((0u64..20, -40i32..40), 50..400),
        shards in 1usize..5,
        queue in 1usize..6,
        shift in prop::bool::ANY,
    ) {
        let mut monitor = MonitorConfig::new(6, 0.05);
        // Keep alarming while drifted: stresses the queue bound hardest.
        monitor.reset_on_drift = false;
        let mut cfg = FleetConfig::new(shards, monitor);
        cfg.explain_queue = queue;
        let mut fleet = MonitorFleet::new(cfg).expect("valid config");

        let mut accepted = 0u64;
        let mut alarms = 0u64;
        let half = plan.len() / 2;
        for (i, &(series, value)) in plan.iter().enumerate() {
            let value = f64::from(value) * 0.25
                + if shift && i >= half { 50.0 } else { 0.0 };
            match fleet.push(series, value).expect("finite values are accepted") {
                FleetPush::Alarm { .. } => { accepted += 1; alarms += 1; }
                FleetPush::Warming | FleetPush::Stable => accepted += 1,
                FleetPush::Quarantined | FleetPush::AtCapacity => {
                    prop_assert!(false, "no panics or caps in this test");
                }
            }
        }

        let view = fleet.stats().view();
        prop_assert_eq!(view.accepted, accepted);
        prop_assert_eq!(view.alarms, alarms);

        // Conservation: every accepted observation is in some series'
        // counter, exactly once.
        let per_series: u64 = (0..20u64)
            .filter_map(|id| fleet.series_stats(id).map(|s| s.pushes))
            .sum();
        prop_assert_eq!(per_series, accepted);

        // The queue bound held (drain returns at most `queue` tickets
        // per shard before new pushes arrive), and alarm accounting is
        // exact once drained.
        let mut answered = 0u64;
        loop {
            let n = fleet.drain_explains(usize::MAX, |_| {});
            if n == 0 { break; }
            answered += n as u64;
            prop_assert!(n <= queue * shards, "one drain can never exceed the total bound");
        }
        let view = fleet.stats().view();
        prop_assert_eq!(view.explained, answered);
        prop_assert_eq!(view.explained + view.explain_dropped, view.alarms);
    }

    // Checkpoint → resume round-trips arbitrary fleet states: same
    // series, same counters, same subsequent behaviour (spot-checked by
    // replaying a tail through both fleets).
    #[test]
    fn checkpoint_resume_preserves_arbitrary_fleets(
        plan in proptest::collection::vec((0u64..12, -30i32..30), 30..200),
        shards in 1usize..4,
        case in 0u32..1_000_000,
    ) {
        let dir = std::env::temp_dir().join(format!("moche-fleet-prop-{case}-{}", plan.len()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FleetConfig::new(shards, MonitorConfig::new(5, 0.05));
        let mut fleet = MonitorFleet::new(cfg).expect("valid config");
        for &(series, value) in &plan {
            fleet.push(series, f64::from(value) * 0.5).expect("finite");
        }
        fleet.checkpoint_dir(&dir).expect("checkpoint");
        let mut resumed = MonitorFleet::resume_from_dir(cfg, &dir).expect("resume");
        prop_assert_eq!(resumed.series_count(), fleet.series_count());
        for id in 0..12u64 {
            prop_assert_eq!(resumed.series_stats(id), fleet.series_stats(id));
        }
        for i in 0..40u64 {
            let value = (i % 7) as f64 + 25.0; // a shift: provoke alarms
            for id in 0..4u64 {
                let a = fleet.push(id, value).expect("finite");
                let b = resumed.push(id, value).expect("finite");
                prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
