//! The checkpoint/restore acceptance gate: a monitor restored from a
//! snapshot — round-tripped through the full binary format — must emit
//! **byte-identical** events to a monitor that was never interrupted, at
//! every possible interruption point, including signed zeros, duplicated
//! values, and checkpoints landing mid-alarm-gap. Plus the rejection
//! battery: truncated, bit-flipped, and wrong-version snapshot *files*
//! must be refused on resume.

use moche_stream::{DriftMonitor, MonitorConfig, MonitorEvent, MonitorSnapshot, SnapshotError};
use proptest::prelude::*;

/// Exact-equality comparison of two monitor events, down to f64 bit
/// patterns inside explanations (plain `==` would let `-0.0 == 0.0` slip
/// through the "byte-identical" claim).
fn assert_same_event(a: &MonitorEvent, b: &MonitorEvent, ctx: &str) {
    match (a, b) {
        (
            MonitorEvent::Warming { seen: s1, needed: n1 },
            MonitorEvent::Warming { seen: s2, needed: n2 },
        ) => {
            assert_eq!(s1, s2, "{ctx}");
            assert_eq!(n1, n2, "{ctx}");
        }
        (MonitorEvent::Stable { outcome: o1 }, MonitorEvent::Stable { outcome: o2 }) => {
            assert_eq!(o1, o2, "{ctx}");
        }
        (
            MonitorEvent::Drift { outcome: o1, explanation: e1, size: k1 },
            MonitorEvent::Drift { outcome: o2, explanation: e2, size: k2 },
        ) => {
            assert_eq!(o1, o2, "{ctx}");
            assert_eq!(k1, k2, "{ctx}");
            match (e1, e2) {
                (None, None) => {}
                (Some(e1), Some(e2)) => {
                    assert_eq!(e1, e2, "{ctx}");
                    let bits = |e: &moche_core::Explanation| -> Vec<u64> {
                        e.values().iter().map(|v| v.to_bits()).collect()
                    };
                    assert_eq!(bits(e1), bits(e2), "explanation value bits diverge ({ctx})");
                }
                other => panic!("explanation presence diverges: {other:?} ({ctx})"),
            }
        }
        other => panic!("event kinds diverge: {other:?} ({ctx})"),
    }
}

/// Interrupt `monitor`-to-be at `cut`: run one monitor uninterrupted over
/// `series`, and a second that is snapshotted at `cut`, serialized,
/// deserialized, restored, and fed the remainder. Every post-cut event
/// pair must match exactly.
fn check_cut(cfg: MonitorConfig, series: &[f64], cut: usize) {
    let mut uninterrupted = DriftMonitor::new(cfg).unwrap();
    let mut live = DriftMonitor::new(cfg).unwrap();
    for &x in &series[..cut] {
        let a = uninterrupted.try_push(x);
        let b = live.try_push(x);
        assert_eq!(a.is_ok(), b.is_ok());
    }

    let snap = live.snapshot();
    let bytes = snap.to_bytes();
    let decoded = MonitorSnapshot::from_bytes(&bytes).expect("own bytes must decode");
    assert_eq!(decoded, snap, "binary round-trip must be lossless");
    let mut restored = DriftMonitor::restore(&decoded).expect("own snapshot must restore");
    drop(live);

    assert_eq!(restored.pushes(), uninterrupted.pushes(), "cut = {cut}");
    assert_eq!(restored.alarms(), uninterrupted.alarms(), "cut = {cut}");

    for (i, &x) in series[cut..].iter().enumerate() {
        let a = uninterrupted.try_push(x);
        let b = restored.try_push(x);
        let ctx = format!("cut = {cut}, offset = {i}");
        match (a, b) {
            (Ok(ea), Ok(eb)) => assert_same_event(&ea, &eb, &ctx),
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{ctx}"),
            other => panic!("acceptance diverges: {other:?} ({ctx})"),
        }
    }
    assert_eq!(restored.alarms(), uninterrupted.alarms());
    assert_eq!(restored.degraded_preferences(), uninterrupted.degraded_preferences());
}

/// A drifting series that provably alarms: half-cycles alternate between
/// a base level and a shifted one.
fn drifting_series(len: usize, half_cycle: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let base = ((i * 13) % 11) as f64;
            if (i / half_cycle).is_multiple_of(2) {
                base
            } else {
                base + 25.0
            }
        })
        .collect()
}

/// Every interruption point of an alarming run, both with and without
/// reset-on-drift — this sweeps checkpoints landing mid-warm-up, exactly
/// on an alarm, and mid-alarm-gap (between an alarm and the next), the
/// case the ISSUE calls out.
#[test]
fn every_cut_point_of_an_alarming_run_restores_identically() {
    let w = 12;
    let series = drifting_series(160, 2 * w);
    for reset in [true, false] {
        let mut cfg = MonitorConfig::new(w, 0.05);
        cfg.reset_on_drift = reset;
        let alarms = {
            let mut mon = DriftMonitor::new(cfg).unwrap();
            let mut alarms = 0u64;
            for &x in &series {
                if let MonitorEvent::Drift { .. } = mon.push(x) {
                    alarms += 1;
                }
            }
            alarms
        };
        assert!(alarms > 0, "the series must alarm for the sweep to mean anything");
        for cut in 0..=series.len() {
            check_cut(cfg, &series, cut);
        }
    }
}

/// Signed zeros and heavy duplication survive the round trip bit-exactly.
#[test]
fn signed_zeros_and_duplicates_round_trip() {
    let w = 8;
    let mut cfg = MonitorConfig::new(w, 0.05);
    cfg.reset_on_drift = false;
    // A stream of only {-0.0, 0.0, 1.0} duplicates, then a shift.
    let series: Vec<f64> = (0..90)
        .map(|i| match i {
            i if i >= 60 => 9.0 + (i % 2) as f64,
            i if i % 3 == 0 => -0.0,
            i if i % 3 == 1 => 0.0,
            _ => 1.0,
        })
        .collect();
    for cut in (0..=series.len()).step_by(3) {
        check_cut(cfg, &series, cut);
    }
    // And the snapshot itself preserves the sign bit.
    let mut mon = DriftMonitor::new(cfg).unwrap();
    for &x in &series[..2 * w] {
        mon.push(x);
    }
    let snap = mon.snapshot();
    let round = MonitorSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    let bits = |vals: &[f64]| vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&round.reference), bits(&snap.reference));
    assert_eq!(bits(&round.test), bits(&snap.test));
    assert!(snap.reference.iter().any(|v| v.to_bits() == (-0.0f64).to_bits()));
}

fn obs_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0f64),
        Just(-0.0f64),
        (-12i32..12).prop_map(f64::from), // heavy duplication
        (-400i32..400).prop_map(|v| f64::from(v) * 0.125),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    // Arbitrary streams, arbitrary interruption points, arbitrary
    // window/reset configuration: the restored monitor must stay
    // event-identical to the uninterrupted one.
    #[test]
    fn restored_monitor_is_event_identical_under_arbitrary_streams(
        series in proptest::collection::vec(obs_strategy(), 20..120),
        cut in 0usize..120,
        window in 3usize..9,
        reset in prop::bool::ANY,
        shift in prop::bool::ANY,
    ) {
        let mut series = series;
        if shift {
            // Force a drift regime onto the tail so alarms are exercised,
            // not just stable slides.
            let at = series.len() / 2;
            for v in &mut series[at..] {
                *v += 30.0;
            }
        }
        let mut cfg = MonitorConfig::new(window, 0.05);
        cfg.reset_on_drift = reset;
        let cut = cut % (series.len() + 1);
        check_cut(cfg, &series, cut);
    }

    // Serialization is total and lossless for any in-range snapshot the
    // monitor can produce.
    #[test]
    fn snapshot_bytes_always_round_trip(
        series in proptest::collection::vec(obs_strategy(), 0..80),
        window in 2usize..10,
    ) {
        let mut mon = DriftMonitor::new(MonitorConfig::new(window, 0.05)).unwrap();
        for &x in &series {
            let _ = mon.try_push(x);
        }
        let snap = mon.snapshot();
        let round = MonitorSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        prop_assert_eq!(round, snap);
    }
}

// ---- rejection battery: files that must not restore ----

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("moche-snapshot-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn checkpointed_monitor(path: &std::path::Path) -> DriftMonitor {
    let mut mon = DriftMonitor::new(MonitorConfig::new(10, 0.05)).unwrap();
    for i in 0..25 {
        mon.push(f64::from(i % 7));
    }
    mon.checkpoint(path).unwrap();
    mon
}

#[test]
fn truncated_snapshot_files_are_rejected() {
    let path = tmp_dir().join("truncated.snap");
    let _ = checkpointed_monitor(&path);
    let full = std::fs::read(&path).unwrap();
    assert!(DriftMonitor::resume_from(&path).is_ok(), "the intact file must resume");
    for keep in [0, 5, 11, 19, full.len() / 2, full.len() - 1] {
        std::fs::write(&path, &full[..keep]).unwrap();
        match DriftMonitor::resume_from(&path) {
            Err(SnapshotError::Truncated) => {}
            Err(SnapshotError::BadMagic) if keep < 8 => {}
            other => panic!("{keep}-byte prefix: expected truncation rejection, got {other:?}"),
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bit_flipped_snapshot_files_are_rejected() {
    let path = tmp_dir().join("bitflip.snap");
    let _ = checkpointed_monitor(&path);
    let full = std::fs::read(&path).unwrap();
    // Every single-bit flip across the entire file must be caught (header
    // fields fail structurally; payload and CRC flips fail the checksum).
    for bit in (0..full.len() * 8).step_by(7) {
        let mut corrupt = full.clone();
        corrupt[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &corrupt).unwrap();
        assert!(
            DriftMonitor::resume_from(&path).is_err(),
            "flipping bit {bit} of the snapshot went undetected"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn wrong_version_snapshot_files_are_rejected() {
    let path = tmp_dir().join("version.snap");
    let _ = checkpointed_monitor(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match DriftMonitor::resume_from(&path) {
        Err(SnapshotError::UnsupportedVersion(7)) => {}
        other => panic!("expected UnsupportedVersion(7), got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn missing_snapshot_file_is_an_io_error() {
    let path = tmp_dir().join("does-not-exist.snap");
    match DriftMonitor::resume_from(&path) {
        Err(SnapshotError::Io(_)) => {}
        other => panic!("expected Io, got {other:?}"),
    }
}

#[test]
fn semantically_invalid_snapshots_are_rejected_on_restore() {
    let path = tmp_dir().join("invalid.snap");
    let mon = checkpointed_monitor(&path);
    // Decodes fine, but violates the warm-up invariant.
    let mut snap = mon.snapshot();
    snap.reference.pop();
    snap.write_atomic(&path).unwrap();
    match DriftMonitor::resume_from(&path) {
        Err(SnapshotError::Invalid(_)) => {}
        other => panic!("expected Invalid, got {other:?}"),
    }
    // Bad embedded config surfaces the underlying Moche error.
    let mut snap = mon.snapshot();
    snap.alpha = 0.0;
    snap.write_atomic(&path).unwrap();
    match DriftMonitor::resume_from(&path) {
        Err(SnapshotError::Moche(moche_core::MocheError::InvalidAlpha { .. })) => {}
        other => panic!("expected Moche(InvalidAlpha), got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}
