//! Property-based tests of the streaming substrates: the incremental KS
//! statistic must equal the batch statistic after arbitrary operation
//! sequences, and the treap aggregates must match a naive oracle.

use moche_core::ks_statistic;
use moche_stream::{IncrementalKs, WeightedTreap};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    InsertRef(f64),
    InsertTest(f64),
    RemoveRef(usize),  // index into live reference handles (mod len)
    RemoveTest(usize), // index into live test handles (mod len)
    SlideTest(usize, f64),
    SlideRef(usize, f64),
    Check,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let val = (-50i32..50).prop_map(|v| f64::from(v) * 0.5);
    prop_oneof![
        val.clone().prop_map(Op::InsertRef),
        val.clone().prop_map(Op::InsertTest),
        (0usize..64).prop_map(Op::RemoveRef),
        (0usize..64).prop_map(Op::RemoveTest),
        ((0usize..64), val.clone()).prop_map(|(i, v)| Op::SlideTest(i, v)),
        ((0usize..64), val).prop_map(|(i, v)| Op::SlideRef(i, v)),
        Just(Op::Check),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_matches_batch_under_arbitrary_ops(
        ops in proptest::collection::vec(op_strategy(), 10..120),
    ) {
        let mut iks = IncrementalKs::new();
        let mut ref_items: Vec<(f64, moche_stream::ObsId)> = Vec::new();
        let mut test_items: Vec<(f64, moche_stream::ObsId)> = Vec::new();

        // Seed with a few points so checks are meaningful early.
        for i in 0..5 {
            let v = f64::from(i);
            ref_items.push((v, iks.insert_reference(v)));
            test_items.push((v + 0.5, iks.insert_test(v + 0.5)));
        }

        for op in ops {
            match op {
                Op::InsertRef(v) => ref_items.push((v, iks.insert_reference(v))),
                Op::InsertTest(v) => test_items.push((v, iks.insert_test(v))),
                Op::RemoveRef(i) => {
                    if ref_items.len() > 1 {
                        let (_, id) = ref_items.swap_remove(i % ref_items.len());
                        prop_assert!(iks.remove_reference(id));
                    }
                }
                Op::RemoveTest(i) => {
                    if test_items.len() > 1 {
                        let (_, id) = test_items.swap_remove(i % test_items.len());
                        prop_assert!(iks.remove_test(id));
                    }
                }
                Op::SlideTest(i, v) => {
                    if !test_items.is_empty() {
                        let slot = i % test_items.len();
                        let (_, old) = test_items[slot];
                        let new_id = iks.slide_test(old, v).expect("live handle");
                        test_items[slot] = (v, new_id);
                    }
                }
                Op::SlideRef(i, v) => {
                    if !ref_items.is_empty() {
                        let slot = i % ref_items.len();
                        let (_, old) = ref_items[slot];
                        let new_id = iks.slide_reference(old, v).expect("live handle");
                        ref_items[slot] = (v, new_id);
                    }
                }
                Op::Check => {}
            }
            // Verify after every op (the treap must never drift).
            let r: Vec<f64> = ref_items.iter().map(|&(v, _)| v).collect();
            let t: Vec<f64> = test_items.iter().map(|&(v, _)| v).collect();
            let inc = iks.statistic().unwrap();
            let batch = ks_statistic(&r, &t).unwrap();
            prop_assert!((inc - batch).abs() < 1e-9, "inc {} vs batch {}", inc, batch);
        }
    }

    #[test]
    fn treap_matches_oracle_under_updates(
        ops in proptest::collection::vec(((0i32..30), (-9i64..10), prop::bool::ANY), 1..200),
    ) {
        let mut treap = WeightedTreap::new(42);
        let mut map: BTreeMap<i32, (i64, i64)> = BTreeMap::new();
        for (key, weight, removing) in ops {
            let value = f64::from(key) * 0.25;
            let entry = map.entry(key).or_insert((0, 0));
            if removing && entry.1 > 0 {
                // Remove one element carrying an arbitrary weight delta; to
                // keep the oracle consistent we remove weight `weight` too.
                treap.update(value, -weight, -1);
                entry.0 -= weight;
                entry.1 -= 1;
            } else {
                treap.update(value, weight, 1);
                entry.0 += weight;
                entry.1 += 1;
            }
            if entry.1 == 0 {
                map.remove(&key);
            }
            // Oracle prefix sums.
            let mut acc = 0i64;
            let mut maxp = 0i64;
            let mut minp = 0i64;
            for &(w, _) in map.values() {
                acc += w;
                maxp = maxp.max(acc);
                minp = minp.min(acc);
            }
            prop_assert_eq!(treap.total_weight(), acc);
            prop_assert_eq!(treap.max_prefix(), maxp);
            prop_assert_eq!(treap.min_prefix(), minp);
            prop_assert_eq!(treap.distinct_values(), map.len());
        }
    }
}
