//! Allocation-count gates for the monitor's warm alarm path.
//!
//! Mirrors `crates/core/tests/alloc_count.rs`: a counting global allocator
//! measures the *marginal* allocation cost of the steady state — two runs
//! differing only in length pay the identical warm-up (treap arenas, FFT
//! planes, engine scratch), so the difference is the true per-cycle cost,
//! which must be exactly zero once every buffer has grown to its working
//! set.
//!
//! The counter is process-global and libtest runs sibling test threads
//! concurrently, so this binary contains exactly ONE #[test]: the explain
//! and size-only gates run as sequential phases inside it.

use moche_stream::{DriftMonitor, MonitorConfig, MonitorEvent};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a counter bump; every
// `GlobalAlloc` contract obligation is discharged by `System` itself.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; the caller upholds `alloc`'s contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; `ptr` came from this allocator, which
        // delegates all allocation to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; `ptr` came from this allocator, which
        // delegates all allocation to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const W: usize = 60;
/// One period of the drifting stream: half a cycle low, half high, so
/// every cycle drives the windows through alarm territory twice.
const CYCLE: usize = 4 * W;

/// The observation at stream position `i`: a periodic base signal plus a
/// level shift toggling every half cycle. Deterministic, so every cycle
/// replays the same values and the treap arenas reach a fixed working set.
fn observation(i: usize) -> f64 {
    let base = ((i * 13) % 11) as f64;
    if (i / (CYCLE / 2)).is_multiple_of(2) {
        base
    } else {
        base + 25.0
    }
}

/// Feeds `cycles` full periods into the monitor, recycling every
/// explanation, and returns how many alarms fired.
fn run_cycles(mon: &mut DriftMonitor, start: &mut usize, cycles: usize) -> usize {
    let mut alarms = 0;
    for _ in 0..cycles * CYCLE {
        match mon.push(observation(*start)) {
            MonitorEvent::Drift { explanation: Some(e), .. } => {
                assert!(e.outcome_after.passes());
                mon.recycle(e);
                alarms += 1;
            }
            MonitorEvent::Drift { .. } => alarms += 1,
            MonitorEvent::Stable { .. } | MonitorEvent::Warming { .. } => {}
        }
        *start += 1;
    }
    alarms
}

#[test]
fn warm_monitor_alarm_gates_run_sequentially() {
    warm_explain_alarms_allocate_nothing();
    warm_size_only_alarms_allocate_nothing();
    warm_alarms_with_checkpointing_configured_allocate_nothing();
}

/// The explain-on-drift steady state: slides, KS decisions, SR scoring,
/// index materialization, the explanation itself — all through recycled
/// buffers, exactly 0 marginal heap allocations after `recycle`.
fn warm_explain_alarms_allocate_nothing() {
    let mut cfg = MonitorConfig::new(W, 0.05);
    cfg.reset_on_drift = false;
    let mut mon = DriftMonitor::new(cfg).unwrap();
    let mut at = 0usize;
    // Warm-up: enough cycles for every arena (KS treap, reference index,
    // SR planes, engine workspace, output arena) to hit its high-water
    // mark across both shift directions.
    let warm_alarms = run_cycles(&mut mon, &mut at, 3);
    assert!(warm_alarms > 0, "the shifting stream must alarm during warm-up");

    let before = allocations();
    let alarms = run_cycles(&mut mon, &mut at, 2);
    let allocated = allocations() - before;
    assert!(alarms > 0, "the measured window must contain alarms");
    assert_eq!(
        allocated, 0,
        "warm monitor explain alarms must be allocation-free \
         ({alarms} alarms allocated {allocated} times)"
    );
}

/// The fault-tolerant deployment shape: a checkpoint cadence is configured
/// (the per-push `pushes() % every` decision runs, exactly as the CLI's
/// checkpoint loop runs it) but no checkpoint falls due inside the measured
/// window. Writing a snapshot allocates by design — fresh window vectors
/// plus the encoded byte buffer — so the guarantee is precisely scoped:
/// checkpointing costs nothing *between* checkpoints, even through alarms.
fn warm_alarms_with_checkpointing_configured_allocate_nothing() {
    let mut cfg = MonitorConfig::new(W, 0.05);
    cfg.reset_on_drift = false;
    let mut mon = DriftMonitor::new(cfg).unwrap();
    let mut at = 0usize;
    let warm_alarms = run_cycles(&mut mon, &mut at, 3);
    assert!(warm_alarms > 0, "the shifting stream must alarm during warm-up");

    // Prove the checkpoint path itself works for this monitor (outside the
    // measured window), then pick a cadence that cannot fall due during
    // the two measured cycles.
    let path = std::env::temp_dir().join("moche-alloc-gate.snap");
    mon.checkpoint(&path).expect("warm-up checkpoint");
    let every: u64 = mon.pushes() + 100 * CYCLE as u64;

    let before = allocations();
    let mut alarms = 0usize;
    let mut checkpoints = 0usize;
    for _ in 0..2 * CYCLE {
        match mon.push(observation(at)) {
            MonitorEvent::Drift { explanation: Some(e), .. } => {
                mon.recycle(e);
                alarms += 1;
            }
            MonitorEvent::Drift { .. } => alarms += 1,
            MonitorEvent::Stable { .. } | MonitorEvent::Warming { .. } => {}
        }
        if mon.pushes().is_multiple_of(every) {
            mon.checkpoint(&path).expect("cadence checkpoint");
            checkpoints += 1;
        }
        at += 1;
    }
    let allocated = allocations() - before;
    let _ = std::fs::remove_file(&path);
    assert!(alarms > 0, "the measured window must contain alarms");
    assert_eq!(checkpoints, 0, "the cadence must not fall due while measuring");
    assert_eq!(
        allocated, 0,
        "warm alarms with checkpointing configured must be allocation-free \
         ({alarms} alarms allocated {allocated} times)"
    );
}

/// The size-only steady state: Phase 1 per alarm, no Phase 2, no output —
/// also exactly 0 marginal allocations.
fn warm_size_only_alarms_allocate_nothing() {
    let mut cfg = MonitorConfig::new(W, 0.05);
    cfg.reset_on_drift = false;
    cfg.size_only = true;
    let mut mon = DriftMonitor::new(cfg).unwrap();
    let mut at = 0usize;
    let warm_alarms = run_cycles(&mut mon, &mut at, 3);
    assert!(warm_alarms > 0);

    let before = allocations();
    let alarms = run_cycles(&mut mon, &mut at, 2);
    let allocated = allocations() - before;
    assert!(alarms > 0);
    assert_eq!(
        allocated, 0,
        "warm monitor size-only alarms must be allocation-free \
         ({alarms} alarms allocated {allocated} times)"
    );
}
