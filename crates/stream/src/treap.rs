//! An order-augmented treap over weighted real keys — the data structure
//! behind the incremental KS test (after dos Reis et al., *Fast
//! unsupervised online drift detection using incremental
//! Kolmogorov-Smirnov test*, KDD 2016, which the MOCHE paper cites as the
//! deployment context for failed-KS-test explanations).
//!
//! Each **distinct value** is one node carrying the *aggregated* integer
//! weight of every observation at that value (ties must collapse into one
//! node: the KS statistic evaluates ECDFs after absorbing all ties at a
//! value, so a prefix boundary between two tied observations would
//! overstate the deviation). The treap maintains, per subtree, the total
//! weight and the maximum/minimum prefix sum over the in-order traversal.
//!
//! With reference observations weighted `+m` and test observations
//! weighted `-n`, the prefix sum at value `x` equals
//! `n·m·(F_R(x) - F_T(x))`, so the KS statistic is
//! `max(max_prefix, -min_prefix) / (n·m)` — readable at the root in `O(1)`
//! after `O(log N)` expected-time weight updates.

/// Node arena index.
type Idx = u32;
const NIL: Idx = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    value: f64,
    /// Aggregated weight of all observations at this value.
    weight: i64,
    /// Number of live observations at this value (node is freed at 0).
    elems: u32,
    priority: u64,
    left: Idx,
    right: Idx,
    // Subtree aggregates over the in-order sequence of weights.
    sum: i64,
    max_prefix: i64, // maximum over non-empty prefixes
    min_prefix: i64, // minimum over non-empty prefixes
    count: u32,      // number of nodes (distinct values) in the subtree
}

/// A weighted treap keyed by distinct `f64` values, with prefix-sum
/// aggregates.
#[derive(Debug, Clone, Default)]
pub struct WeightedTreap {
    nodes: Vec<Node>,
    free: Vec<Idx>,
    root: Idx,
    rng_state: u64,
}

impl WeightedTreap {
    /// Creates an empty treap. `seed` randomizes priorities.
    pub fn new(seed: u64) -> Self {
        Self { nodes: Vec::new(), free: Vec::new(), root: NIL, rng_state: seed | 1 }
    }

    /// Number of distinct values stored.
    pub fn distinct_values(&self) -> usize {
        if self.root == NIL {
            0
        } else {
            self.nodes[self.root as usize].count as usize
        }
    }

    /// Whether the treap is empty.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Total weight of all elements.
    pub fn total_weight(&self) -> i64 {
        if self.root == NIL {
            0
        } else {
            self.nodes[self.root as usize].sum
        }
    }

    /// Maximum prefix sum over the sorted distinct values (including the
    /// empty prefix, so never negative).
    pub fn max_prefix(&self) -> i64 {
        if self.root == NIL {
            0
        } else {
            self.nodes[self.root as usize].max_prefix.max(0)
        }
    }

    /// Minimum prefix sum (including the empty prefix, so never positive).
    pub fn min_prefix(&self) -> i64 {
        if self.root == NIL {
            0
        } else {
            self.nodes[self.root as usize].min_prefix.min(0)
        }
    }

    /// The largest absolute prefix sum — `n·m·D` under the KS weighting.
    pub fn max_abs_prefix(&self) -> i64 {
        self.max_prefix().max(-self.min_prefix())
    }

    fn next_priority(&mut self) -> u64 {
        // SplitMix64.
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn alloc(&mut self, value: f64, weight: i64, elems: u32) -> Idx {
        let priority = self.next_priority();
        let node = Node {
            value,
            weight,
            elems,
            priority,
            left: NIL,
            right: NIL,
            sum: weight,
            max_prefix: weight,
            min_prefix: weight,
            count: 1,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as Idx
        }
    }

    fn pull(&mut self, idx: Idx) {
        let (l, r) = {
            let n = &self.nodes[idx as usize];
            (n.left, n.right)
        };
        let (lsum, lmax, lmin, lcnt) = if l == NIL {
            (0, i64::MIN, i64::MAX, 0)
        } else {
            let ln = &self.nodes[l as usize];
            (ln.sum, ln.max_prefix, ln.min_prefix, ln.count)
        };
        let (rsum, rmax, rmin, rcnt) = if r == NIL {
            (0, i64::MIN, i64::MAX, 0)
        } else {
            let rn = &self.nodes[r as usize];
            (rn.sum, rn.max_prefix, rn.min_prefix, rn.count)
        };
        let w = self.nodes[idx as usize].weight;
        let here = lsum + w; // prefix ending at this node
        let mut maxp = here;
        if lmax != i64::MIN {
            maxp = maxp.max(lmax);
        }
        if rmax != i64::MIN {
            maxp = maxp.max(here + rmax);
        }
        let mut minp = here;
        if lmin != i64::MAX {
            minp = minp.min(lmin);
        }
        if rmin != i64::MAX {
            minp = minp.min(here + rmin);
        }
        let n = &mut self.nodes[idx as usize];
        n.sum = lsum + w + rsum;
        n.max_prefix = maxp;
        n.min_prefix = minp;
        n.count = lcnt + 1 + rcnt;
    }

    /// Splits `t` into (< value, >= value).
    fn split_lt(&mut self, t: Idx, value: f64) -> (Idx, Idx) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].value.total_cmp(&value) == std::cmp::Ordering::Less {
            let right = self.nodes[t as usize].right;
            let (a, b) = self.split_lt(right, value);
            self.nodes[t as usize].right = a;
            self.pull(t);
            (t, b)
        } else {
            let left = self.nodes[t as usize].left;
            let (a, b) = self.split_lt(left, value);
            self.nodes[t as usize].left = b;
            self.pull(t);
            (a, t)
        }
    }

    /// Splits `t` into (<= value, > value).
    fn split_le(&mut self, t: Idx, value: f64) -> (Idx, Idx) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].value.total_cmp(&value) != std::cmp::Ordering::Greater {
            let right = self.nodes[t as usize].right;
            let (a, b) = self.split_le(right, value);
            self.nodes[t as usize].right = a;
            self.pull(t);
            (t, b)
        } else {
            let left = self.nodes[t as usize].left;
            let (a, b) = self.split_le(left, value);
            self.nodes[t as usize].left = b;
            self.pull(t);
            (a, t)
        }
    }

    fn merge(&mut self, a: Idx, b: Idx) -> Idx {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].priority >= self.nodes[b as usize].priority {
            let ar = self.nodes[a as usize].right;
            let merged = self.merge(ar, b);
            self.nodes[a as usize].right = merged;
            self.pull(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let merged = self.merge(a, bl);
            self.nodes[b as usize].left = merged;
            self.pull(b);
            b
        }
    }

    /// Applies a weight/element-count delta at `value`, creating the node
    /// on first use and freeing it when its element count returns to zero.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values, or if the element count would go
    /// negative (removing something never added).
    pub fn update(&mut self, value: f64, weight_delta: i64, elems_delta: i32) {
        assert!(value.is_finite(), "treap keys must be finite");
        let root = self.root;
        let (a, bc) = self.split_lt(root, value);
        let (b, c) = self.split_le(bc, value);
        let b = if b == NIL {
            assert!(elems_delta > 0, "removing from a value that has no observations");
            self.alloc(value, weight_delta, elems_delta as u32)
        } else {
            debug_assert_eq!(self.nodes[b as usize].count, 1, "split isolated one value");
            let node = &mut self.nodes[b as usize];
            node.weight += weight_delta;
            let elems = node.elems as i64 + elems_delta as i64;
            assert!(elems >= 0, "element count underflow at value {value}");
            if elems == 0 {
                self.free.push(b);
                NIL
            } else {
                node.elems = elems as u32;
                self.pull(b);
                b
            }
        };
        let left = self.merge(a, b);
        self.root = self.merge(left, c);
    }

    /// In-order `(value, weight, elems)` triples (for tests and debugging).
    pub fn to_sorted_vec(&self) -> Vec<(f64, i64, u32)> {
        let mut out = Vec::with_capacity(self.distinct_values());
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            // lint:allow(panic): the outer loop condition (`cur != NIL ||
            // !stack.is_empty()`) plus the descent loop guarantee a frame
            let idx = stack.pop().unwrap();
            let n = &self.nodes[idx as usize];
            out.push((n.value, n.weight, n.elems));
            cur = n.right;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Oracle over a value -> (weight, elems) map.
    fn oracle(map: &BTreeMap<u64, (i64, i64)>) -> (i64, i64, i64) {
        let mut acc = 0i64;
        let mut maxp = 0i64;
        let mut minp = 0i64;
        let mut sum = 0i64;
        for &(w, _) in map.values() {
            acc += w;
            sum += w;
            maxp = maxp.max(acc);
            minp = minp.min(acc);
        }
        (sum, maxp, minp)
    }

    fn check(t: &WeightedTreap, map: &BTreeMap<u64, (i64, i64)>, ctx: &str) {
        let (sum, maxp, minp) = oracle(map);
        assert_eq!(t.total_weight(), sum, "{ctx}: sum");
        assert_eq!(t.max_prefix(), maxp, "{ctx}: max prefix");
        assert_eq!(t.min_prefix(), minp, "{ctx}: min prefix");
        assert_eq!(t.distinct_values(), map.len(), "{ctx}: distinct");
    }

    #[test]
    fn aggregates_match_oracle_under_mixed_updates() {
        let mut t = WeightedTreap::new(1);
        let mut map: BTreeMap<u64, (i64, i64)> = BTreeMap::new();
        // Deterministic pseudo-random op sequence.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for step in 0..500 {
            let value = (next() % 40) as f64 * 0.25;
            let bits = value.to_bits();
            let entry = map.entry(bits).or_insert((0, 0));
            let removing = entry.1 > 0 && next() % 3 == 0;
            if removing {
                let w = if next() % 2 == 0 { 7 } else { -5 };
                t.update(value, -w, -1);
                entry.0 -= w;
                entry.1 -= 1;
            } else {
                let w = if next() % 2 == 0 { 7 } else { -5 };
                t.update(value, w, 1);
                entry.0 += w;
                entry.1 += 1;
            }
            if entry.1 == 0 {
                map.remove(&bits);
            }
            check(&t, &map, &format!("step {step}"));
        }
    }

    #[test]
    fn ties_collapse_into_one_node() {
        let mut t = WeightedTreap::new(2);
        // +5 and -3 at the same value: one node of weight 2, so the prefix
        // never exposes the intermediate +5.
        t.update(1.0, 5, 1);
        t.update(1.0, -3, 1);
        assert_eq!(t.distinct_values(), 1);
        assert_eq!(t.max_prefix(), 2);
        assert_eq!(t.min_prefix(), 0);
    }

    #[test]
    fn node_freed_when_elems_reach_zero() {
        let mut t = WeightedTreap::new(3);
        t.update(4.0, 10, 1);
        t.update(4.0, 10, 1);
        assert_eq!(t.distinct_values(), 1);
        t.update(4.0, -10, -1);
        assert_eq!(t.distinct_values(), 1);
        t.update(4.0, -10, -1);
        assert!(t.is_empty());
        // The freed slot is reused.
        t.update(5.0, 1, 1);
        assert_eq!(t.nodes.len(), 1);
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn removing_unknown_value_panics() {
        let mut t = WeightedTreap::new(4);
        t.update(1.0, -5, -1);
    }

    #[test]
    fn empty_treap_prefixes_are_zero() {
        let t = WeightedTreap::new(5);
        assert_eq!(t.max_prefix(), 0);
        assert_eq!(t.min_prefix(), 0);
        assert_eq!(t.max_abs_prefix(), 0);
        assert_eq!(t.total_weight(), 0);
    }

    #[test]
    fn sorted_vec_is_sorted_and_deduplicated() {
        let mut t = WeightedTreap::new(6);
        for i in 0..60u64 {
            t.update(((i * 29) % 17) as f64, 1, 1);
        }
        let v = t.to_sorted_vec();
        assert_eq!(v.len(), 17);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0, "{w:?} out of order");
        }
        let total_elems: u32 = v.iter().map(|&(_, _, e)| e).sum();
        assert_eq!(total_elems, 60);
    }

    #[test]
    fn negative_and_positive_weights() {
        let mut t = WeightedTreap::new(8);
        t.update(1.0, -5, 1);
        t.update(2.0, 0, 1);
        t.update(3.0, 5, 1);
        assert_eq!(t.total_weight(), 0);
        assert_eq!(t.min_prefix(), -5);
        assert_eq!(t.max_prefix(), 0);
        assert_eq!(t.max_abs_prefix(), 5);
    }

    #[test]
    fn large_insert_remove_cycle_keeps_arena_bounded() {
        let mut t = WeightedTreap::new(9);
        for round in 0..5 {
            for i in 0..200u64 {
                t.update(i as f64, 3, 1);
            }
            for i in 0..200u64 {
                t.update(i as f64, -3, -1);
            }
            assert!(t.is_empty(), "round {round}");
        }
        assert!(t.nodes.len() <= 200, "arena grew to {}", t.nodes.len());
    }
}
