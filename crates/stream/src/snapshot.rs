//! Checkpoint/restore for [`DriftMonitor`]: a versioned, checksummed
//! binary snapshot, written atomically.
//!
//! A process restart without checkpoints loses every monitor's window
//! state and forces an `O(w)` re-warm per series — during which drift goes
//! undetected. A [`MonitorSnapshot`] captures everything a monitor needs
//! to continue *exactly* where it stopped: the configuration, both window
//! contents (oldest first), and the alarm/degradation counters. Derived
//! structures are deliberately **not** serialized — the incremental KS
//! treap and the reference order-statistics index are rebuilt from the
//! window values on restore — which keeps the format small and
//! forward-compatible with internal data-structure changes.
//!
//! ## The byte-identity guarantee
//!
//! A restored monitor emits **byte-identical** alarms to one that was
//! never interrupted (pinned by `tests/snapshot_roundtrip.rs`). This is a
//! theorem about the implementation, not luck: the incremental KS decision
//! is computed in *exact integer arithmetic* (`max |prefix|` over weighted
//! ranks, divided by `n·m` once at the end), so it depends only on the
//! window **multisets**, never on treap shape, insertion history, or
//! internal ID assignment; Spectral-Residual preference scores depend only
//! on the test window **values**; and the explanation construction is a
//! deterministic function of windows, preference, and `α`. Re-inserting
//! the window values therefore reconstructs an observably equivalent
//! monitor.
//!
//! ## On-disk format (version 2)
//!
//! All integers little-endian; `f64` as IEEE-754 bits (signed zeros and
//! subnormals round-trip exactly; non-finite values are rejected).
//!
//! ```text
//! magic     8 B   "MOCHESNP"
//! version   4 B   u32 = 2
//! length    8 B   u64 payload byte count
//! payload   ...   window, alpha, flags, SR windows, counters, both windows
//! crc32     4 B   CRC-32 (IEEE) of the payload bytes
//! ```
//!
//! Version 2 added the two Spectral-Residual preference parameters
//! (`sr_filter_window`, `sr_score_window`) right after the flags byte.
//! Version-1 files (which predate configurable SR) are still read; their
//! SR parameters decode to the defaults every version-1 monitor used.
//!
//! The CRC detects every single-bit flip and all burst errors up to 32
//! bits; [`MonitorSnapshot::from_bytes`] rejects torn files (truncation
//! anywhere, including mid-header) with [`SnapshotError::Truncated`],
//! foreign files with [`SnapshotError::BadMagic`], future formats with
//! [`SnapshotError::UnsupportedVersion`], and corruption with
//! [`SnapshotError::ChecksumMismatch`].
//!
//! [`MonitorSnapshot::write_atomic`] stages the bytes in a sibling
//! temporary file, `fsync`s it, and renames it over the destination (with
//! a best-effort directory sync), so a crash mid-checkpoint leaves either
//! the old snapshot or the new one — never a torn file at the final path.

use crate::monitor::DriftMonitor;
use moche_core::fault::{self, Fault};
use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Leading bytes identifying a MOCHE monitor snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"MOCHESNP";
/// The format version this build writes. Version 1 (no Spectral-Residual
/// parameters) is still read.
pub const SNAPSHOT_VERSION: u32 = 2;

const HEADER_LEN: usize = 8 + 4 + 8;
const FLAG_EXPLAIN_ON_DRIFT: u8 = 1;
const FLAG_SIZE_ONLY: u8 = 1 << 1;
const FLAG_RESET_ON_DRIFT: u8 = 1 << 2;

/// Why a snapshot could not be written, read, or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The byte stream ends before the declared structure does — a torn or
    /// truncated file.
    Truncated,
    /// The leading bytes are not [`SNAPSHOT_MAGIC`]: not a snapshot file.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The payload checksum does not match: bit rot or tampering.
    ChecksumMismatch,
    /// The bytes decode but describe an impossible monitor state.
    Invalid(&'static str),
    /// Rebuilding the monitor from the decoded state failed (bad window
    /// size or significance level).
    Moche(moche_core::MocheError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            SnapshotError::Truncated => f.write_str("snapshot file is truncated"),
            SnapshotError::BadMagic => f.write_str("not a monitor snapshot (bad magic bytes)"),
            SnapshotError::UnsupportedVersion(v) => write!(
                f,
                "snapshot format version {v} is not supported \
                 (this build reads version {SNAPSHOT_VERSION})"
            ),
            SnapshotError::ChecksumMismatch => {
                f.write_str("snapshot payload checksum mismatch (corrupted file)")
            }
            SnapshotError::Invalid(why) => write!(f, "snapshot describes invalid state: {why}"),
            SnapshotError::Moche(e) => write!(f, "snapshot could not be restored: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Moche(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<moche_core::MocheError> for SnapshotError {
    fn from(e: moche_core::MocheError) -> Self {
        SnapshotError::Moche(e)
    }
}

/// A point-in-time capture of a [`DriftMonitor`]'s restorable state.
///
/// Obtain one with [`DriftMonitor::snapshot`], rebuild a monitor with
/// [`DriftMonitor::restore`]. The fields are public so tooling (and the
/// rejection tests) can inspect and construct snapshots directly;
/// [`DriftMonitor::restore`] validates everything, so a hand-built
/// snapshot cannot corrupt a monitor — it can only be rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    /// Window size `w`.
    pub window: usize,
    /// KS significance level.
    pub alpha: f64,
    /// [`crate::MonitorConfig::explain_on_drift`].
    pub explain_on_drift: bool,
    /// [`crate::MonitorConfig::size_only`].
    pub size_only: bool,
    /// [`crate::MonitorConfig::reset_on_drift`].
    pub reset_on_drift: bool,
    /// [`crate::MonitorConfig::sr_filter_window`] (format version ≥ 2;
    /// version-1 files decode to the default every v1 monitor used).
    pub sr_filter_window: usize,
    /// [`crate::MonitorConfig::sr_score_window`] (format version ≥ 2).
    pub sr_score_window: usize,
    /// Total observations accepted when the snapshot was taken.
    pub pushes: u64,
    /// Total alarms raised when the snapshot was taken.
    pub alarms: u64,
    /// Identity-fallback explanations produced (see
    /// [`DriftMonitor::degraded_preferences`]).
    pub degraded_preferences: u64,
    /// Reference window contents, oldest first.
    pub reference: Vec<f64>,
    /// Test window contents, oldest first.
    pub test: Vec<f64>,
}

impl MonitorSnapshot {
    /// Serializes to the version-2 binary format (header, payload, CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_len = 8 * 6 // window, alpha, three counters, two lengths packed below
            + 1 // flags
            + 8 * 2 // the SR preference parameters (format version 2)
            + 8 // second length field
            + 8 * (self.reference.len() + self.test.len());
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload_len + 4);
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload_len as u64).to_le_bytes());

        let payload_start = bytes.len();
        bytes.extend_from_slice(&(self.window as u64).to_le_bytes());
        bytes.extend_from_slice(&self.alpha.to_bits().to_le_bytes());
        let mut flags = 0u8;
        if self.explain_on_drift {
            flags |= FLAG_EXPLAIN_ON_DRIFT;
        }
        if self.size_only {
            flags |= FLAG_SIZE_ONLY;
        }
        if self.reset_on_drift {
            flags |= FLAG_RESET_ON_DRIFT;
        }
        bytes.push(flags);
        bytes.extend_from_slice(&(self.sr_filter_window as u64).to_le_bytes());
        bytes.extend_from_slice(&(self.sr_score_window as u64).to_le_bytes());
        bytes.extend_from_slice(&self.pushes.to_le_bytes());
        bytes.extend_from_slice(&self.alarms.to_le_bytes());
        bytes.extend_from_slice(&self.degraded_preferences.to_le_bytes());
        bytes.extend_from_slice(&(self.reference.len() as u64).to_le_bytes());
        for &v in &self.reference {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        bytes.extend_from_slice(&(self.test.len() as u64).to_le_bytes());
        for &v in &self.test {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        debug_assert_eq!(bytes.len() - payload_start, payload_len);

        let crc = crc32(&bytes[payload_start..]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Deserializes and verifies a version-1 snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] for any short read (including inside
    /// the header), [`SnapshotError::BadMagic`] /
    /// [`SnapshotError::UnsupportedVersion`] for foreign or future files,
    /// [`SnapshotError::ChecksumMismatch`] when the payload CRC fails, and
    /// [`SnapshotError::Invalid`] for structurally impossible contents
    /// (trailing garbage, window lengths exceeding the declared payload).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        // lint:allow(panic): infallible — fixed-width slices of a buffer
        // whose length was checked against HEADER_LEN above
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        // lint:allow(panic): infallible — same header-length guard
        let payload_len = u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().expect("8 bytes"));
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| SnapshotError::Invalid("payload length overflows this platform"))?;
        let total = HEADER_LEN
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(4))
            .ok_or(SnapshotError::Invalid("payload length overflows this platform"))?;
        if bytes.len() < total {
            return Err(SnapshotError::Truncated);
        }
        if bytes.len() > total {
            return Err(SnapshotError::Invalid("trailing bytes after the checksum"));
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
        // lint:allow(panic): infallible — `bytes.len() == total` was checked
        let stored_crc = u32::from_le_bytes(bytes[total - 4..].try_into().expect("4-byte slice"));
        if crc32(payload) != stored_crc {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut cursor = Cursor { bytes: payload };
        let window = usize::try_from(cursor.u64()?)
            .map_err(|_| SnapshotError::Invalid("window size overflows this platform"))?;
        let alpha = f64::from_bits(cursor.u64()?);
        let flags = cursor.u8()?;
        if flags & !(FLAG_EXPLAIN_ON_DRIFT | FLAG_SIZE_ONLY | FLAG_RESET_ON_DRIFT) != 0 {
            return Err(SnapshotError::Invalid("unknown flag bits set"));
        }
        let (sr_filter_window, sr_score_window) = if version >= 2 {
            let filter = usize::try_from(cursor.u64()?)
                .map_err(|_| SnapshotError::Invalid("SR filter window overflows this platform"))?;
            let score = usize::try_from(cursor.u64()?)
                .map_err(|_| SnapshotError::Invalid("SR score window overflows this platform"))?;
            (filter, score)
        } else {
            // Version-1 monitors always ranked with the SR defaults.
            let sr = moche_sigproc::SpectralResidual::default();
            (sr.filter_window, sr.score_window)
        };
        let pushes = cursor.u64()?;
        let alarms = cursor.u64()?;
        let degraded_preferences = cursor.u64()?;
        let reference = cursor.values(window)?;
        let test = cursor.values(window)?;
        if !cursor.bytes.is_empty() {
            return Err(SnapshotError::Invalid("payload longer than its contents"));
        }
        Ok(Self {
            window,
            alpha,
            explain_on_drift: flags & FLAG_EXPLAIN_ON_DRIFT != 0,
            size_only: flags & FLAG_SIZE_ONLY != 0,
            reset_on_drift: flags & FLAG_RESET_ON_DRIFT != 0,
            sr_filter_window,
            sr_score_window,
            pushes,
            alarms,
            degraded_preferences,
            reference,
            test,
        })
    }

    /// Writes the snapshot to `path` atomically: the bytes are staged in a
    /// sibling `.tmp` file, flushed to disk (`fsync`), and renamed over
    /// the destination, followed by a best-effort directory sync. A crash
    /// at any point leaves `path` holding either the previous complete
    /// snapshot or this one — never a torn write.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if staging, syncing, or renaming fails (the
    /// temporary file is cleaned up on a best-effort basis).
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let bytes = self.to_bytes();
        match fault::failpoint("checkpoint.write") {
            Some(Fault::Error) => {
                return Err(SnapshotError::Io(std::io::Error::other(
                    "injected checkpoint write failure",
                )));
            }
            Some(Fault::TruncateWrite(keep)) => {
                // Simulate the torn write the atomic protocol exists to
                // prevent (a crash mid-write without the rename dance):
                // only the first `keep` bytes reach the *final* path.
                let keep = keep.min(bytes.len());
                std::fs::write(path, &bytes[..keep])?;
                return Ok(());
            }
            _ => {}
        }
        write_bytes_atomic(path, &bytes)
    }

    /// Reads and verifies a snapshot from `path` (see
    /// [`from_bytes`](Self::from_bytes) for the rejection cases).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be read, otherwise any
    /// [`from_bytes`](Self::from_bytes) rejection.
    pub fn read_from(path: &Path) -> Result<Self, SnapshotError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Structural validation shared by [`DriftMonitor::restore`]: window
    /// lengths within bounds, the warm-up invariant (the test window only
    /// fills after the reference window is full), and finite values.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Invalid`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        if self.reference.len() > self.window {
            return Err(SnapshotError::Invalid("reference window longer than the window size"));
        }
        if self.test.len() > self.window {
            return Err(SnapshotError::Invalid("test window longer than the window size"));
        }
        if !self.test.is_empty() && self.reference.len() < self.window {
            return Err(SnapshotError::Invalid(
                "test window non-empty before the reference window is full",
            ));
        }
        if self.reference.iter().chain(&self.test).any(|v| !v.is_finite()) {
            return Err(SnapshotError::Invalid("window contains a non-finite value"));
        }
        if self.pushes < (self.reference.len() + self.test.len()) as u64 {
            return Err(SnapshotError::Invalid("push counter below the held window contents"));
        }
        if self.sr_filter_window < 1 || self.sr_score_window < 1 {
            return Err(SnapshotError::Invalid("Spectral-Residual windows must be >= 1"));
        }
        Ok(())
    }
}

/// A byte cursor over the snapshot payload; every read is bounds-checked
/// and a short read is a [`SnapshotError::Truncated`] (the payload length
/// was already verified against the checksum, so this guards decode bugs
/// and hand-built payloads, not disk corruption).
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl Cursor<'_> {
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        let (&first, rest) = self.bytes.split_first().ok_or(SnapshotError::Truncated)?;
        self.bytes = rest;
        Ok(first)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        if self.bytes.len() < 8 {
            return Err(SnapshotError::Truncated);
        }
        let (head, rest) = self.bytes.split_at(8);
        self.bytes = rest;
        // lint:allow(panic): infallible — `split_at(8)` yields 8 bytes
        Ok(u64::from_le_bytes(head.try_into().expect("8-byte slice")))
    }

    /// Reads a length-prefixed run of `f64` bit patterns. `bound` caps the
    /// preallocation (a corrupt length cannot trigger a huge reservation:
    /// anything beyond the remaining payload is `Truncated` anyway).
    fn values(&mut self, bound: usize) -> Result<Vec<f64>, SnapshotError> {
        let len = usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Invalid("window length overflows this platform"))?;
        if len > self.bytes.len() / 8 {
            return Err(SnapshotError::Truncated);
        }
        let mut values = Vec::with_capacity(len.min(bound.max(1)));
        for _ in 0..len {
            values.push(f64::from_bits(self.u64()?));
        }
        Ok(values)
    }
}

/// The stage-`fsync`-rename protocol shared by monitor snapshots and the
/// fleet's per-shard checkpoint files: a crash at any point leaves `path`
/// holding either its previous complete contents or `bytes` — never a torn
/// write.
pub(crate) fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let tmp = sibling_tmp_path(path);
    let result = (|| -> Result<(), SnapshotError> {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable where the platform allows;
        // the data is already safe, so failures here are non-fatal.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(dir) = File::open(dir) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn sibling_tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map_or_else(Default::default, |n| n.to_os_string());
    name.push(".tmp");
    path.with_file_name(name)
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the classic
/// bitwise form. Snapshot payloads are `O(w)` small, so a lookup table
/// would buy nothing worth its footprint. Shared with the fleet's shard
/// checkpoint container.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Convenience wrappers on the monitor itself.
impl DriftMonitor {
    /// Captures a snapshot and writes it atomically to `path` — the
    /// periodic checkpoint call (see
    /// [`MonitorSnapshot::write_atomic`] for the durability protocol).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the write fails; the monitor itself is
    /// untouched either way.
    pub fn checkpoint(&self, path: &Path) -> Result<(), SnapshotError> {
        self.snapshot().write_atomic(path)
    }

    /// Reads, verifies, and restores a monitor from a checkpoint file.
    ///
    /// # Errors
    ///
    /// Any [`MonitorSnapshot::read_from`] rejection, plus
    /// [`SnapshotError::Invalid`] / [`SnapshotError::Moche`] if the
    /// decoded state cannot form a valid monitor.
    pub fn resume_from(path: &Path) -> Result<Self, SnapshotError> {
        Self::restore(&MonitorSnapshot::read_from(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MonitorSnapshot {
        MonitorSnapshot {
            window: 4,
            alpha: 0.05,
            explain_on_drift: true,
            size_only: false,
            reset_on_drift: true,
            sr_filter_window: 5, // deliberately non-default: pins the v2 fields
            sr_score_window: 9,
            pushes: 11,
            alarms: 2,
            degraded_preferences: 1,
            reference: vec![1.0, -0.0, 2.5, 1.0],
            test: vec![3.0, 4.5, 3.0],
        }
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let snap = sample();
        let decoded = MonitorSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap);
        // Signed zero survives (PartialEq would accept 0.0 == -0.0).
        assert_eq!(decoded.reference[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn every_truncation_point_is_rejected_as_truncated_or_bad_magic() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            match MonitorSnapshot::from_bytes(&bytes[..len]) {
                Err(SnapshotError::Truncated) => {}
                // Cutting inside the magic itself reads as a foreign file.
                Err(SnapshotError::BadMagic) if len < 8 => {}
                other => panic!("prefix of {len} bytes: expected rejection, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample().to_bytes();
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(
                MonitorSnapshot::from_bytes(&corrupt).is_err(),
                "flipping bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn wrong_version_and_magic_are_rejected() {
        for bad_version in [0u32, 3, 99] {
            let mut bytes = sample().to_bytes();
            bytes[8..12].copy_from_slice(&bad_version.to_le_bytes());
            assert!(
                matches!(
                    MonitorSnapshot::from_bytes(&bytes),
                    Err(SnapshotError::UnsupportedVersion(v)) if v == bad_version
                ),
                "version {bad_version} must be rejected"
            );
        }
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(MonitorSnapshot::from_bytes(&bytes), Err(SnapshotError::BadMagic)));
    }

    /// Serializes the version-1 layout (no SR parameters) the way the
    /// previous release did, so the compatibility path stays honest.
    fn v1_bytes(snap: &MonitorSnapshot) -> Vec<u8> {
        let payload_len = 8 * 6 + 1 + 8 + 8 * (snap.reference.len() + snap.test.len());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&(payload_len as u64).to_le_bytes());
        let payload_start = bytes.len();
        bytes.extend_from_slice(&(snap.window as u64).to_le_bytes());
        bytes.extend_from_slice(&snap.alpha.to_bits().to_le_bytes());
        let mut flags = 0u8;
        if snap.explain_on_drift {
            flags |= FLAG_EXPLAIN_ON_DRIFT;
        }
        if snap.size_only {
            flags |= FLAG_SIZE_ONLY;
        }
        if snap.reset_on_drift {
            flags |= FLAG_RESET_ON_DRIFT;
        }
        bytes.push(flags);
        bytes.extend_from_slice(&snap.pushes.to_le_bytes());
        bytes.extend_from_slice(&snap.alarms.to_le_bytes());
        bytes.extend_from_slice(&snap.degraded_preferences.to_le_bytes());
        bytes.extend_from_slice(&(snap.reference.len() as u64).to_le_bytes());
        for &v in &snap.reference {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        bytes.extend_from_slice(&(snap.test.len() as u64).to_le_bytes());
        for &v in &snap.test {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let crc = crc32(&bytes[payload_start..]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    #[test]
    fn version_1_files_decode_with_default_sr_parameters() {
        let expected = {
            let mut s = sample();
            let sr = moche_sigproc::SpectralResidual::default();
            s.sr_filter_window = sr.filter_window;
            s.sr_score_window = sr.score_window;
            s
        };
        let decoded = MonitorSnapshot::from_bytes(&v1_bytes(&sample())).unwrap();
        assert_eq!(decoded, expected, "v1 files gain the defaults every v1 monitor used");
        // The old format keeps its full rejection surface too.
        let bytes = v1_bytes(&sample());
        for len in 0..bytes.len() {
            assert!(MonitorSnapshot::from_bytes(&bytes[..len]).is_err(), "prefix {len}");
        }
        let mut corrupt = v1_bytes(&sample());
        let last = corrupt.len() - 10;
        corrupt[last] ^= 1;
        assert!(MonitorSnapshot::from_bytes(&corrupt).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(MonitorSnapshot::from_bytes(&bytes), Err(SnapshotError::Invalid(_))));
    }

    #[test]
    fn validate_catches_impossible_states() {
        let mut snap = sample();
        snap.reference.push(9.0); // longer than window
        assert!(matches!(snap.validate(), Err(SnapshotError::Invalid(_))));

        let mut snap = sample();
        snap.reference.pop(); // test non-empty with ref not full
        assert!(matches!(snap.validate(), Err(SnapshotError::Invalid(_))));

        let mut snap = sample();
        snap.test[0] = f64::NAN;
        assert!(matches!(snap.validate(), Err(SnapshotError::Invalid(_))));

        let mut snap = sample();
        snap.pushes = 3; // fewer pushes than held observations
        assert!(matches!(snap.validate(), Err(SnapshotError::Invalid(_))));

        let mut snap = sample();
        snap.sr_filter_window = 0; // would panic the SR moving average
        assert!(matches!(snap.validate(), Err(SnapshotError::Invalid(_))));

        let mut snap = sample();
        snap.sr_score_window = 0;
        assert!(matches!(snap.validate(), Err(SnapshotError::Invalid(_))));

        assert!(sample().validate().is_ok());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn atomic_write_then_read_round_trips() {
        let dir = std::env::temp_dir().join("moche-snapshot-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.snap");
        let snap = sample();
        snap.write_atomic(&path).unwrap();
        assert_eq!(MonitorSnapshot::read_from(&path).unwrap(), snap);
        // Overwrite in place: the rename replaces the old file whole.
        let mut newer = sample();
        newer.pushes += 100;
        newer.write_atomic(&path).unwrap();
        assert_eq!(MonitorSnapshot::read_from(&path).unwrap(), newer);
        std::fs::remove_file(&path).unwrap();
    }
}
