//! The incremental two-sample Kolmogorov-Smirnov test.
//!
//! Maintains the KS statistic between a reference multiset `R` and a test
//! multiset `T` under point insertions and removals on *both* sides, in
//! `O(log N)` expected time per update — the primitive a deployed drift
//! monitor needs (each window slide is a handful of updates instead of a
//! full `O(N log N)` recomputation).
//!
//! ### How
//!
//! Give each reference observation weight `+m` and each test observation
//! weight `-n` in a single ordered structure (a [`WeightedTreap`]). The
//! prefix sum at sorted position `x` is then
//!
//! ```text
//! m·|{r <= x}| - n·|{t <= x}| = n·m·(F_R(x) - F_T(x))
//! ```
//!
//! so `D = max_x |prefix(x)| / (n·m)`, which the treap's aggregates expose
//! at the root. Because the weights bake in the *current* sizes `n` and
//! `m`, the structure is built for a fixed `(n, m)` pair — exactly the
//! paired fixed-width sliding windows of the paper's Section 6.1.1. Updates
//! that keep the sizes constant (slide = one removal + one insertion per
//! side) are `O(log N)`; changing the sizes triggers a transparent
//! `O(N log N)` rebuild, amortized away in steady state.

use crate::treap::WeightedTreap;
use moche_core::{KsConfig, KsOutcome, MocheError};

/// Incrementally maintained two-sample KS test.
///
/// # Examples
///
/// ```
/// use moche_stream::IncrementalKs;
///
/// let mut iks = IncrementalKs::new();
/// for i in 0..50 {
///     iks.insert_reference(f64::from(i % 10));
/// }
/// let mut handles: Vec<_> =
///     (0..50).map(|i| iks.insert_test(f64::from(i % 10))).collect();
/// assert_eq!(iks.statistic().unwrap(), 0.0); // identical distributions
///
/// // Slide one test observation to an outlying value: O(log N).
/// handles[0] = iks.slide_test(handles[0], 99.0).unwrap();
/// assert!(iks.statistic().unwrap() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalKs {
    treap: WeightedTreap,
    /// Live reference elements as (value, uid).
    reference: Vec<(f64, u64)>,
    /// Live test elements as (value, uid).
    test: Vec<(f64, u64)>,
    next_uid: u64,
    /// The (n, m) the current weights encode.
    built_n: usize,
    built_m: usize,
    dirty: bool,
}

/// A handle to an observation inside the incremental structure, returned by
/// the insert methods and accepted by the remove methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObsId(u64);

impl Default for IncrementalKs {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalKs {
    /// Creates an empty structure.
    pub fn new() -> Self {
        Self {
            treap: WeightedTreap::new(0x1C5B),
            reference: Vec::new(),
            test: Vec::new(),
            next_uid: 0,
            built_n: 0,
            built_m: 0,
            dirty: true,
        }
    }

    /// Number of reference observations.
    pub fn n(&self) -> usize {
        self.reference.len()
    }

    /// Number of test observations.
    pub fn m(&self) -> usize {
        self.test.len()
    }

    /// Inserts a reference observation. Changing `n` invalidates the baked
    /// weights, so the next [`statistic`](Self::statistic) call rebuilds;
    /// use [`slide_reference`](Self::slide_reference) for the `O(log N)`
    /// constant-size path.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values.
    pub fn insert_reference(&mut self, value: f64) -> ObsId {
        assert!(value.is_finite(), "observations must be finite");
        let uid = self.next_uid;
        self.next_uid += 1;
        self.reference.push((value, uid));
        self.dirty = true;
        ObsId(uid)
    }

    /// Inserts a test observation (see [`insert_reference`](Self::insert_reference)
    /// about rebuilds).
    ///
    /// # Panics
    ///
    /// Panics on non-finite values.
    pub fn insert_test(&mut self, value: f64) -> ObsId {
        assert!(value.is_finite(), "observations must be finite");
        let uid = self.next_uid;
        self.next_uid += 1;
        self.test.push((value, uid));
        self.dirty = true;
        ObsId(uid)
    }

    /// Removes a reference observation by handle. Returns `false` if the
    /// handle is unknown (already removed or from the other side).
    pub fn remove_reference(&mut self, id: ObsId) -> bool {
        let Some(pos) = self.reference.iter().position(|&(_, uid)| uid == id.0) else {
            return false;
        };
        self.reference.swap_remove(pos);
        self.dirty = true;
        true
    }

    /// Removes a test observation by handle.
    pub fn remove_test(&mut self, id: ObsId) -> bool {
        let Some(pos) = self.test.iter().position(|&(_, uid)| uid == id.0) else {
            return false;
        };
        self.test.swap_remove(pos);
        self.dirty = true;
        true
    }

    /// Replaces one test observation with another **keeping `m` constant**
    /// — the steady-state sliding operation; `O(log N)` with no rebuild.
    ///
    /// Returns the new handle, or an error-like `None` if the old handle is
    /// unknown.
    pub fn slide_test(&mut self, old: ObsId, new_value: f64) -> Option<ObsId> {
        assert!(new_value.is_finite(), "observations must be finite");
        let pos = self.test.iter().position(|&(_, uid)| uid == old.0)?;
        let (old_value, _) = self.test[pos];
        let uid = self.next_uid;
        self.next_uid += 1;
        self.test[pos] = (new_value, uid);
        if !self.dirty {
            let n = self.built_n as i64;
            self.treap.update(old_value, n, -1); // undo the old -n element
            self.treap.update(new_value, -n, 1);
        }
        Some(ObsId(uid))
    }

    /// Replaces one reference observation with another keeping `n`
    /// constant; `O(log N)`.
    pub fn slide_reference(&mut self, old: ObsId, new_value: f64) -> Option<ObsId> {
        assert!(new_value.is_finite(), "observations must be finite");
        let pos = self.reference.iter().position(|&(_, uid)| uid == old.0)?;
        let (old_value, _) = self.reference[pos];
        let uid = self.next_uid;
        self.next_uid += 1;
        self.reference[pos] = (new_value, uid);
        if !self.dirty {
            let m = self.built_m as i64;
            self.treap.update(old_value, -m, -1); // undo the old +m element
            self.treap.update(new_value, m, 1);
        }
        Some(ObsId(uid))
    }

    fn rebuild(&mut self) {
        let n = self.reference.len() as i64;
        let m = self.test.len() as i64;
        self.treap = WeightedTreap::new(0x1C5B ^ self.next_uid);
        for &(value, _) in &self.reference {
            self.treap.update(value, m, 1);
        }
        for &(value, _) in &self.test {
            self.treap.update(value, -n, 1);
        }
        self.built_n = self.reference.len();
        self.built_m = self.test.len();
        self.dirty = false;
    }

    /// The current KS statistic `D(R, T)`. Rebuilds lazily if sizes changed
    /// since the last evaluation.
    ///
    /// # Errors
    ///
    /// Returns an error if either side is empty.
    pub fn statistic(&mut self) -> Result<f64, MocheError> {
        if self.reference.is_empty() {
            return Err(MocheError::EmptyReference);
        }
        if self.test.is_empty() {
            return Err(MocheError::EmptyTest);
        }
        if self.dirty || self.built_n != self.reference.len() || self.built_m != self.test.len() {
            self.rebuild();
        }
        let nm = (self.built_n as f64) * (self.built_m as f64);
        Ok(self.treap.max_abs_prefix() as f64 / nm)
    }

    /// Runs the full KS decision at the configured significance level.
    ///
    /// # Errors
    ///
    /// As for [`statistic`](Self::statistic).
    pub fn outcome(&mut self, cfg: &KsConfig) -> Result<KsOutcome, MocheError> {
        let statistic = self.statistic()?;
        let (n, m) = (self.n(), self.m());
        Ok(KsOutcome {
            statistic,
            threshold: cfg.threshold(n, m),
            rejected: cfg.rejects(statistic, n, m),
            n,
            m,
        })
    }

    /// Current reference values (unordered).
    pub fn reference_values(&self) -> Vec<f64> {
        self.reference.iter().map(|&(v, _)| v).collect()
    }

    /// Current test values (unordered).
    pub fn test_values(&self) -> Vec<f64> {
        self.test.iter().map(|&(v, _)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moche_core::ks_statistic;

    #[test]
    fn matches_batch_statistic_after_bulk_load() {
        let r: Vec<f64> = (0..60).map(|i| f64::from(i % 10)).collect();
        let t: Vec<f64> = (0..40).map(|i| f64::from(i % 7) + 2.0).collect();
        let mut iks = IncrementalKs::new();
        for &v in &r {
            iks.insert_reference(v);
        }
        for &v in &t {
            iks.insert_test(v);
        }
        let inc = iks.statistic().unwrap();
        let batch = ks_statistic(&r, &t).unwrap();
        assert!((inc - batch).abs() < 1e-12, "incremental {inc} vs batch {batch}");
    }

    #[test]
    fn slide_keeps_statistic_exact() {
        // Slide a test window across a series and compare against batch
        // recomputation at every step.
        let series: Vec<f64> = (0..200).map(|i| ((i * 29) % 23) as f64 * 0.5).collect();
        let w = 40;
        let mut iks = IncrementalKs::new();
        let mut ref_ids: Vec<ObsId> =
            series[..w].iter().map(|&v| iks.insert_reference(v)).collect();
        let mut test_ids: Vec<ObsId> =
            series[w..2 * w].iter().map(|&v| iks.insert_test(v)).collect();
        // Prime the structure.
        let _ = iks.statistic().unwrap();

        for step in 0..80 {
            // Slide by one: the oldest reference leaves, the oldest test
            // point becomes reference, the next series point becomes test.
            let leaving_ref = ref_ids.remove(0);
            let promoted = test_ids.remove(0);
            let promoted_value = series[w + step];
            assert!(iks.remove_test(promoted));
            // n and m each momentarily change; re-adding restores them.
            assert!(iks.remove_reference(leaving_ref));
            ref_ids.push(iks.insert_reference(promoted_value));
            test_ids.push(iks.insert_test(series[2 * w + step]));

            let inc = iks.statistic().unwrap();
            let batch = ks_statistic(
                &series[step + 1..step + 1 + w],
                &series[w + step + 1..w + step + 1 + 2 * w - w],
            )
            .unwrap();
            assert!((inc - batch).abs() < 1e-12, "step {step}: {inc} vs {batch}");
        }
    }

    #[test]
    fn slide_test_is_constant_size_fast_path() {
        let r: Vec<f64> = (0..50).map(|i| f64::from(i % 10)).collect();
        let t0: Vec<f64> = (0..50).map(|i| f64::from(i % 10)).collect();
        let mut iks = IncrementalKs::new();
        for &v in &r {
            iks.insert_reference(v);
        }
        let mut ids: Vec<ObsId> = t0.iter().map(|&v| iks.insert_test(v)).collect();
        let _ = iks.statistic().unwrap();

        // Replace every test point by a shifted value one at a time; after
        // each replacement the statistic must equal the batch value.
        let mut current = t0.clone();
        for i in 0..50 {
            let new_value = current[i] + 5.0;
            ids[i] = iks.slide_test(ids[i], new_value).unwrap();
            current[i] = new_value;
            let inc = iks.statistic().unwrap();
            let batch = ks_statistic(&r, &current).unwrap();
            assert!((inc - batch).abs() < 1e-12, "i = {i}");
        }
    }

    #[test]
    fn slide_reference_fast_path() {
        let mut iks = IncrementalKs::new();
        let ids: Vec<ObsId> = (0..30).map(|i| iks.insert_reference(f64::from(i))).collect();
        for i in 0..30 {
            iks.insert_test(f64::from(i) + 3.0);
        }
        let _ = iks.statistic().unwrap();
        let new_id = iks.slide_reference(ids[0], 100.0).unwrap();
        let inc = iks.statistic().unwrap();
        let mut r: Vec<f64> = (1..30).map(f64::from).collect();
        r.push(100.0);
        let t: Vec<f64> = (0..30).map(|i| f64::from(i) + 3.0).collect();
        let batch = ks_statistic(&r, &t).unwrap();
        assert!((inc - batch).abs() < 1e-12);
        assert!(iks.remove_reference(new_id));
    }

    #[test]
    fn outcome_matches_config_decision() {
        let cfg = KsConfig::new(0.05).unwrap();
        let mut iks = IncrementalKs::new();
        for i in 0..100 {
            iks.insert_reference(f64::from(i % 10));
            iks.insert_test(f64::from(i % 10) + 6.0);
        }
        let o = iks.outcome(&cfg).unwrap();
        assert!(o.rejected, "disjoint-ish samples must fail");
        assert_eq!(o.n, 100);
        assert_eq!(o.m, 100);
    }

    #[test]
    fn empty_sides_error() {
        let mut iks = IncrementalKs::new();
        assert!(matches!(iks.statistic(), Err(MocheError::EmptyReference)));
        iks.insert_reference(1.0);
        assert!(matches!(iks.statistic(), Err(MocheError::EmptyTest)));
    }

    #[test]
    fn unknown_handles_are_rejected() {
        let mut iks = IncrementalKs::new();
        let r = iks.insert_reference(1.0);
        let t = iks.insert_test(2.0);
        assert!(!iks.remove_reference(t), "test handle on reference side");
        assert!(!iks.remove_test(r), "reference handle on test side");
        assert!(iks.remove_reference(r));
        assert!(iks.remove_test(t));
    }

    #[test]
    fn duplicate_values_are_fine() {
        let mut iks = IncrementalKs::new();
        for _ in 0..20 {
            iks.insert_reference(5.0);
            iks.insert_test(5.0);
        }
        assert_eq!(iks.statistic().unwrap(), 0.0);
    }
}
