//! A push-based drift monitor: paired sliding windows, the incremental KS
//! test in steady state, and MOCHE explanations on every alarm.
//!
//! This is the deployment shape the paper motivates (model monitoring,
//! database intrusion detection, change detection): observations stream in
//! one at a time; the last `2w` of them form a reference window (older
//! half) and a test window (newer half); a failed KS test raises a drift
//! alarm, and the monitor answers *which points caused it* with the most
//! comprehensible counterfactual explanation.
//!
//! Steady-state cost per observation is `O(log w)` (two treap slides) plus
//! `O(1)` for the decision; explanations are computed only on alarms.

use crate::incremental::{IncrementalKs, ObsId};
use moche_core::{
    ExplainEngine, Explanation, ExplanationArena, KsConfig, KsOutcome, MocheError, PreferenceList,
    ReferenceIndex, SizeSearch,
};
use moche_sigproc::SpectralResidual;
use std::collections::VecDeque;

/// Monitor configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Window size `w` (`|R| = |T| = w`).
    pub window: usize,
    /// KS significance level.
    pub alpha: f64,
    /// Compute a MOCHE explanation on every alarm (using Spectral-Residual
    /// preference over the test window).
    pub explain_on_drift: bool,
    /// Report only the Phase-1 explanation *size* on alarms — "how bad is
    /// the drift" — skipping Phase 2 entirely. Overrides
    /// `explain_on_drift`'s Phase-2 work: when both are set, alarms carry a
    /// size but no explanation.
    pub size_only: bool,
    /// After an alarm, drop both windows and refill from scratch (prevents
    /// one drift from alarming `w` times as it traverses the window).
    pub reset_on_drift: bool,
}

impl MonitorConfig {
    /// A reasonable default: explain and reset on drift.
    pub fn new(window: usize, alpha: f64) -> Self {
        Self { window, alpha, explain_on_drift: true, size_only: false, reset_on_drift: true }
    }
}

/// What a [`DriftMonitor::push`] call observed.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // Drift carries the full Explanation by design
pub enum MonitorEvent {
    /// Still filling the initial `2w` observations.
    Warming {
        /// Observations seen so far.
        seen: usize,
        /// Observations needed before testing starts.
        needed: usize,
    },
    /// Windows full; the KS test passes.
    Stable {
        /// The passing outcome.
        outcome: KsOutcome,
    },
    /// The KS test failed: distribution drift.
    Drift {
        /// The failing outcome.
        outcome: KsOutcome,
        /// The most comprehensible counterfactual explanation of the
        /// failure, when enabled and computable.
        explanation: Option<Explanation>,
        /// The Phase-1 explanation size, when
        /// [`MonitorConfig::size_only`] is set and computable.
        size: Option<SizeSearch>,
    },
}

/// The push-based drift monitor.
///
/// # Examples
///
/// ```
/// use moche_stream::{DriftMonitor, MonitorConfig, MonitorEvent};
///
/// let mut monitor = DriftMonitor::new(MonitorConfig::new(40, 0.05)).unwrap();
/// let mut drifted = false;
/// for i in 0..400 {
///     // Level shift at t = 200.
///     let x = f64::from(i % 8) + if i < 200 { 0.0 } else { 25.0 };
///     if let MonitorEvent::Drift { explanation, .. } = monitor.push(x) {
///         let e = explanation.expect("explanations enabled by default");
///         assert!(e.outcome_after.passes());
///         drifted = true;
///         break;
///     }
/// }
/// assert!(drifted);
/// ```
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    cfg: MonitorConfig,
    ks_cfg: KsConfig,
    iks: IncrementalKs,
    ref_window: VecDeque<(f64, ObsId)>,
    test_window: VecDeque<(f64, ObsId)>,
    /// Scratch-reusing explainer: alarm N reuses the buffers of alarm N-1.
    engine: ExplainEngine,
    /// Recycled output storage: callers that hand consumed explanations
    /// back via [`recycle`](Self::recycle) make alarms allocation-free on
    /// the output side too.
    arena: ExplanationArena,
    /// Recycled per-alarm scratch: the flattened test window...
    test_scratch: Vec<f64>,
    /// ...the flattened reference window...
    ref_scratch: Vec<f64>,
    /// ...the sort buffer behind [`ReferenceIndex::rebuild_from`]...
    sort_scratch: Vec<f64>,
    /// ...the reference index rebuilt in place on each alarm...
    index_scratch: Option<ReferenceIndex>,
    /// ...and the preference list refilled from the outlier scores.
    pref_scratch: PreferenceList,
    pushes: u64,
    alarms: u64,
}

impl DriftMonitor {
    /// Creates a monitor.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] for a bad significance level
    /// and [`MocheError::WindowTooSmall`] if `window < 2` (paired sliding
    /// windows need at least two points each).
    pub fn new(cfg: MonitorConfig) -> Result<Self, MocheError> {
        if cfg.window < 2 {
            return Err(MocheError::WindowTooSmall { window: cfg.window, min: 2 });
        }
        let ks_cfg = KsConfig::new(cfg.alpha)?;
        Ok(Self {
            cfg,
            ks_cfg,
            iks: IncrementalKs::new(),
            ref_window: VecDeque::with_capacity(cfg.window),
            test_window: VecDeque::with_capacity(cfg.window),
            engine: ExplainEngine::with_config(ks_cfg),
            arena: ExplanationArena::new(),
            test_scratch: Vec::new(),
            ref_scratch: Vec::new(),
            sort_scratch: Vec::new(),
            index_scratch: None,
            pref_scratch: PreferenceList::identity(0),
            pushes: 0,
            alarms: 0,
        })
    }

    /// Total observations pushed.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total drift alarms raised.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// The current reference window contents, oldest first.
    pub fn reference_window(&self) -> Vec<f64> {
        self.ref_window.iter().map(|&(v, _)| v).collect()
    }

    /// The current test window contents, oldest first.
    pub fn test_window(&self) -> Vec<f64> {
        self.test_window.iter().map(|&(v, _)| v).collect()
    }

    /// Feeds one observation and reports what happened.
    ///
    /// # Panics
    ///
    /// Panics on non-finite observations (monitor state stays valid).
    pub fn push(&mut self, value: f64) -> MonitorEvent {
        assert!(value.is_finite(), "observations must be finite");
        self.pushes += 1;
        let w = self.cfg.window;

        if self.ref_window.len() < w {
            let id = self.iks.insert_reference(value);
            self.ref_window.push_back((value, id));
            return MonitorEvent::Warming {
                seen: self.ref_window.len() + self.test_window.len(),
                needed: 2 * w,
            };
        }
        if self.test_window.len() < w {
            let id = self.iks.insert_test(value);
            self.test_window.push_back((value, id));
            if self.test_window.len() < w {
                return MonitorEvent::Warming {
                    seen: self.ref_window.len() + self.test_window.len(),
                    needed: 2 * w,
                };
            }
            // Windows just became full: fall through to the decision.
        } else {
            // Steady state: the oldest test point is promoted to the
            // reference window (replacing its oldest point), and the new
            // observation enters the test window. Two O(log w) slides.
            let (promoted_value, promoted_id) =
                self.test_window.pop_front().expect("test window full");
            let (_, oldest_ref_id) = self.ref_window.pop_front().expect("ref window full");
            let new_ref_id = self
                .iks
                .slide_reference(oldest_ref_id, promoted_value)
                .expect("ref handle is live");
            self.ref_window.push_back((promoted_value, new_ref_id));
            let new_test_id = self.iks.slide_test(promoted_id, value).expect("test handle is live");
            self.test_window.push_back((value, new_test_id));
        }

        let outcome = self.iks.outcome(&self.ks_cfg).expect("both windows non-empty");
        if !outcome.rejected {
            return MonitorEvent::Stable { outcome };
        }

        self.alarms += 1;
        let (explanation, size) = if self.cfg.size_only {
            (None, self.size_current())
        } else if self.cfg.explain_on_drift {
            (self.explain_current(), None)
        } else {
            (None, None)
        };
        if self.cfg.reset_on_drift {
            self.ref_window.clear();
            self.test_window.clear();
            self.iks = IncrementalKs::new();
        }
        MonitorEvent::Drift { outcome, explanation, size }
    }

    /// Explains the currently failing window pair with MOCHE, ranking test
    /// points by Spectral-Residual outlier score. Runs on the monitor's
    /// [`ExplainEngine`] through the indexed-reference path
    /// ([`moche_core::BaseVector::build_with_index`]), so repeated alarms
    /// share their scratch buffers and skip the per-alarm merge loop; the
    /// window collections, the reference index and the preference list are
    /// likewise recycled scratch, refilled in place per alarm.
    fn explain_current(&mut self) -> Option<Explanation> {
        self.refresh_alarm_scratch()?;
        if self.test_scratch.len() >= 4 {
            let sr = SpectralResidual::default();
            self.pref_scratch.fill_from_scores_desc(&sr.scores(&self.test_scratch)).ok()?;
        } else {
            self.pref_scratch.fill_identity(self.test_scratch.len());
        }
        let index = self.index_scratch.as_ref()?;
        self.engine
            .explain_with_index_in(index, &self.test_scratch, &self.pref_scratch, &mut self.arena)
            .ok()
    }

    /// Hands a consumed alarm explanation's output buffers back to the
    /// monitor, so the next alarm writes into recycled storage instead of
    /// allocating (see [`moche_core::ExplanationArena`]). Entirely
    /// optional — a dropped explanation simply costs the next alarm two
    /// allocations.
    pub fn recycle(&mut self, explanation: Explanation) {
        self.arena.recycle(explanation);
    }

    /// Phase 1 only on the currently failing window pair: the explanation
    /// size, without constructing the explanation.
    fn size_current(&mut self) -> Option<SizeSearch> {
        self.refresh_alarm_scratch()?;
        let index = self.index_scratch.as_ref()?;
        self.engine.size_with_index(index, &self.test_scratch).ok()
    }

    /// Refills the recycled alarm scratch from the current windows: the
    /// flattened window vectors and the in-place-rebuilt
    /// [`ReferenceIndex`]. After the first alarm at a given window size
    /// this allocates nothing (cf. the per-alarm `collect()`s it replaces).
    fn refresh_alarm_scratch(&mut self) -> Option<()> {
        self.test_scratch.clear();
        self.test_scratch.extend(self.test_window.iter().map(|&(v, _)| v));
        self.ref_scratch.clear();
        self.ref_scratch.extend(self.ref_window.iter().map(|&(v, _)| v));
        match &mut self.index_scratch {
            Some(index) => index.rebuild_from(&self.ref_scratch, &mut self.sort_scratch).ok()?,
            None => self.index_scratch = Some(ReferenceIndex::new(&self.ref_scratch).ok()?),
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warms_up_then_stabilizes_on_stationary_stream() {
        let mut mon = DriftMonitor::new(MonitorConfig::new(50, 0.05)).unwrap();
        let mut stable = 0;
        for i in 0..400 {
            let x = ((i * 31) % 17) as f64;
            match mon.push(x) {
                MonitorEvent::Warming { seen, needed } => {
                    assert!(seen <= needed);
                    assert!(i < 100, "warming past 2w at i = {i}");
                }
                MonitorEvent::Stable { outcome } => {
                    assert!(outcome.passes());
                    stable += 1;
                }
                MonitorEvent::Drift { .. } => {
                    panic!("stationary periodic stream must not alarm (i = {i})")
                }
            }
        }
        assert!(stable > 0);
        assert_eq!(mon.alarms(), 0);
        assert_eq!(mon.pushes(), 400);
    }

    #[test]
    fn detects_a_level_shift_and_explains_it() {
        let mut mon = DriftMonitor::new(MonitorConfig::new(60, 0.05)).unwrap();
        let mut drift_at = None;
        for i in 0..600 {
            let x = if i < 300 { ((i * 13) % 11) as f64 } else { ((i * 13) % 11) as f64 + 20.0 };
            if let MonitorEvent::Drift { outcome, explanation, size } = mon.push(x) {
                assert!(outcome.rejected);
                assert!(size.is_none(), "size_only is off by default");
                drift_at = Some(i);
                let e = explanation.expect("explanation enabled");
                assert!(e.outcome_after.passes());
                // The shifted points dominate the explanation.
                assert!(e.values().iter().all(|&v| v >= 20.0), "values = {:?}", e.values());
                break;
            }
        }
        let at = drift_at.expect("the level shift must be detected");
        assert!((300..420).contains(&at), "detected at {at}");
    }

    #[test]
    fn repeated_alarms_reuse_recycled_scratch() {
        // Without reset_on_drift one level shift alarms repeatedly as it
        // traverses the window; every alarm must rebuild the scratch index
        // and preference in place and still explain correctly.
        let mut cfg = MonitorConfig::new(40, 0.05);
        cfg.reset_on_drift = false;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        let mut alarms = 0usize;
        for i in 0..400 {
            let x = if i < 200 { ((i * 13) % 11) as f64 } else { ((i * 13) % 11) as f64 + 20.0 };
            if let MonitorEvent::Drift { explanation, .. } = mon.push(x) {
                let e = explanation.expect("explanations enabled");
                assert!(e.outcome_after.passes(), "alarm {alarms} must verify");
                alarms += 1;
                mon.recycle(e);
                if alarms >= 5 {
                    break;
                }
            }
        }
        assert!(alarms >= 5, "the shift must alarm repeatedly, got {alarms}");
        assert_eq!(mon.alarms(), alarms as u64);
    }

    #[test]
    fn reset_on_drift_requires_rewarming() {
        let mut mon = DriftMonitor::new(MonitorConfig::new(30, 0.05)).unwrap();
        for i in 0..200 {
            let x = if i < 100 { 0.0 + (i % 5) as f64 } else { 50.0 + (i % 5) as f64 };
            if let MonitorEvent::Drift { .. } = mon.push(x) {
                // The very next push must be a warming event.
                match mon.push(1.0) {
                    MonitorEvent::Warming { seen, .. } => assert_eq!(seen, 1),
                    other => panic!("expected warming after reset, got {other:?}"),
                }
                return;
            }
        }
        panic!("drift never detected");
    }

    #[test]
    fn no_reset_keeps_sliding() {
        let mut cfg = MonitorConfig::new(30, 0.05);
        cfg.reset_on_drift = false;
        cfg.explain_on_drift = false;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        let mut alarms = 0;
        for i in 0..300 {
            let x = if i < 150 { (i % 7) as f64 } else { (i % 7) as f64 + 30.0 };
            if let MonitorEvent::Drift { explanation, .. } = mon.push(x) {
                assert!(explanation.is_none(), "explanations disabled");
                alarms += 1;
            }
        }
        // Without reset the drift alarms repeatedly while traversing.
        assert!(alarms > 1, "expected repeated alarms, got {alarms}");
        assert_eq!(mon.alarms(), alarms);
    }

    #[test]
    fn size_only_reports_k_without_an_explanation() {
        let mut full_cfg = MonitorConfig::new(60, 0.05);
        full_cfg.reset_on_drift = false;
        let mut size_cfg = full_cfg;
        size_cfg.size_only = true;
        let mut full = DriftMonitor::new(full_cfg).unwrap();
        let mut sized = DriftMonitor::new(size_cfg).unwrap();
        let series: Vec<f64> = (0..600)
            .map(|i| if i < 300 { ((i * 13) % 11) as f64 } else { ((i * 13) % 11) as f64 + 20.0 })
            .collect();
        let mut checked = 0;
        for &x in &series {
            let (a, b) = (full.push(x), sized.push(x));
            if let (
                MonitorEvent::Drift { explanation: Some(e), .. },
                MonitorEvent::Drift { explanation, size: Some(k), .. },
            ) = (a, b)
            {
                // Same windows, same alarm: the size-only path must agree
                // with the full explanation's Phase 1 and skip Phase 2.
                assert!(explanation.is_none(), "size_only must not build an explanation");
                assert_eq!(k, e.phase1);
                checked += 1;
            }
        }
        assert!(checked > 0, "the level shift must alarm both monitors");
    }

    #[test]
    fn tiny_windows_error_instead_of_panicking() {
        for window in [0usize, 1] {
            match DriftMonitor::new(MonitorConfig::new(window, 0.05)) {
                Err(MocheError::WindowTooSmall { window: w, min: 2 }) => assert_eq!(w, window),
                other => panic!("expected WindowTooSmall for window {window}, got {other:?}"),
            }
        }
        assert!(DriftMonitor::new(MonitorConfig::new(2, 0.05)).is_ok());
    }

    #[test]
    fn recycled_alarms_match_unrecycled_ones() {
        let mut cfg = MonitorConfig::new(40, 0.05);
        cfg.reset_on_drift = false;
        let mut recycling = DriftMonitor::new(cfg).unwrap();
        let mut plain = DriftMonitor::new(cfg).unwrap();
        let series: Vec<f64> = (0..400)
            .map(|i| if i < 200 { ((i * 13) % 11) as f64 } else { ((i * 13) % 11) as f64 + 20.0 })
            .collect();
        let mut alarms = 0;
        for &x in &series {
            let a = recycling.push(x);
            let b = plain.push(x);
            if let (
                MonitorEvent::Drift { explanation: Some(ea), .. },
                MonitorEvent::Drift { explanation: Some(eb), .. },
            ) = (a, b)
            {
                assert_eq!(ea, eb, "arena reuse must not change explanations");
                alarms += 1;
                recycling.recycle(ea); // alarm N+1 reuses alarm N's buffers
            }
        }
        assert!(alarms > 1, "need repeated alarms to exercise the recycled path");
    }

    #[test]
    fn windows_track_the_last_2w_points() {
        let w = 20;
        let mut cfg = MonitorConfig::new(w, 0.001); // tiny alpha: never alarm
        cfg.reset_on_drift = false;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        let series: Vec<f64> = (0..100).map(|i| f64::from(i % 13)).collect();
        for &x in &series {
            mon.push(x);
        }
        assert_eq!(mon.reference_window(), series[100 - 2 * w..100 - w].to_vec());
        assert_eq!(mon.test_window(), series[100 - w..].to_vec());
    }

    #[test]
    fn monitor_statistic_matches_batch() {
        let w = 25;
        let mut cfg = MonitorConfig::new(w, 0.001);
        cfg.reset_on_drift = false;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        let series: Vec<f64> = (0..120).map(|i| ((i * 37) % 19) as f64 * 0.7).collect();
        for (i, &x) in series.iter().enumerate() {
            let event = mon.push(x);
            if i + 1 >= 2 * w {
                let stat = match event {
                    MonitorEvent::Stable { outcome } | MonitorEvent::Drift { outcome, .. } => {
                        outcome.statistic
                    }
                    MonitorEvent::Warming { .. } => panic!("past warm-up"),
                };
                let lo = i + 1 - 2 * w;
                let batch =
                    moche_core::ks_statistic(&series[lo..lo + w], &series[lo + w..i + 1]).unwrap();
                assert!((stat - batch).abs() < 1e-12, "i = {i}: {stat} vs {batch}");
            }
        }
    }
}
