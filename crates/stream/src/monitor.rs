//! A push-based drift monitor: paired sliding windows, the incremental KS
//! test in steady state, and MOCHE explanations on every alarm.
//!
//! This is the deployment shape the paper motivates (model monitoring,
//! database intrusion detection, change detection): observations stream in
//! one at a time; the last `2w` of them form a reference window (older
//! half) and a test window (newer half); a failed KS test raises a drift
//! alarm, and the monitor answers *which points caused it* with the most
//! comprehensible counterfactual explanation.
//!
//! Steady-state cost per observation is `O(log w)` (two treap slides for
//! the KS statistic plus one order-statistic slide for the reference
//! index) and `O(1)` for the decision; alarms are answered from
//! incrementally-maintained state — `O(m log w)` plus the explanation
//! construction itself, with **zero** heap allocations once warm (gated by
//! `tests/alloc_count.rs`). Bad input never panics the monitor: route
//! untrusted streams through [`DriftMonitor::try_push`].
//!
//! ## One series vs. a fleet
//!
//! [`DriftMonitor`] is the single-series convenience: it owns both halves
//! of the machinery. Internally those halves are separate types so a
//! multi-series deployment ([`crate::MonitorFleet`]) can pool the
//! expensive one:
//!
//! * [`MonitorState`] — the per-series sliding windows, incremental KS
//!   treaps, and counters. This is the part that *must* exist once per
//!   series (`O(w)` memory each).
//! * [`MonitorScratch`] — the explain engine, arena, Spectral-Residual
//!   FFT planes, and preference buffers. This part is only touched while
//!   answering an alarm, so one scratch can serve thousands of series on
//!   a worker (`O(w)` memory once per worker, not per series).

use crate::incremental::{IncrementalKs, ObsId};
use moche_core::{
    ExplainEngine, Explanation, ExplanationArena, IncrementalRefIndex, KsConfig, KsOutcome,
    MocheError, PreferenceList, SizeSearch,
};
use moche_sigproc::{SaliencyScratch, SpectralResidual};
use std::collections::VecDeque;

/// Monitor configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Window size `w` (`|R| = |T| = w`).
    pub window: usize,
    /// KS significance level.
    pub alpha: f64,
    /// Compute a MOCHE explanation on every alarm (using Spectral-Residual
    /// preference over the test window).
    pub explain_on_drift: bool,
    /// Report only the Phase-1 explanation *size* on alarms — "how bad is
    /// the drift" — skipping Phase 2 entirely. Overrides
    /// `explain_on_drift`'s Phase-2 work: when both are set, alarms carry a
    /// size but no explanation.
    pub size_only: bool,
    /// After an alarm, drop both windows and refill from scratch (prevents
    /// one drift from alarming `w` times as it traverses the window).
    pub reset_on_drift: bool,
    /// Spectral-Residual average-filter size (`q` in the SR paper) used
    /// when ranking test points for explanations. Must be ≥ 1.
    pub sr_filter_window: usize,
    /// Spectral-Residual trailing-average window (`z` in the SR paper)
    /// used to turn saliency into outlier scores. Must be ≥ 1.
    pub sr_score_window: usize,
}

impl MonitorConfig {
    /// A reasonable default: explain and reset on drift, with the SR
    /// paper's reference preference parameters (`q = 3`, `z = 21`).
    pub fn new(window: usize, alpha: f64) -> Self {
        let sr = SpectralResidual::default();
        Self {
            window,
            alpha,
            explain_on_drift: true,
            size_only: false,
            reset_on_drift: true,
            sr_filter_window: sr.filter_window,
            sr_score_window: sr.score_window,
        }
    }

    /// The Spectral-Residual transform this configuration ranks test
    /// points with (extension parameters stay at the SR paper's defaults).
    pub fn spectral_residual(&self) -> SpectralResidual {
        SpectralResidual {
            filter_window: self.sr_filter_window,
            score_window: self.sr_score_window,
            ..SpectralResidual::default()
        }
    }
}

/// What a [`DriftMonitor::push`] call observed.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // Drift carries the full Explanation by design
pub enum MonitorEvent {
    /// Still filling the initial `2w` observations.
    Warming {
        /// Observations seen so far.
        seen: usize,
        /// Observations needed before testing starts.
        needed: usize,
    },
    /// Windows full; the KS test passes.
    Stable {
        /// The passing outcome.
        outcome: KsOutcome,
    },
    /// The KS test failed: distribution drift.
    Drift {
        /// The failing outcome.
        outcome: KsOutcome,
        /// The most comprehensible counterfactual explanation of the
        /// failure, when enabled and computable.
        explanation: Option<Explanation>,
        /// The Phase-1 explanation size, when
        /// [`MonitorConfig::size_only`] is set and computable.
        size: Option<SizeSearch>,
    },
}

/// The alarm-answering working set, separate from per-series state so a
/// fleet worker can share one across all the series it owns: the explain
/// engine (bounds workspace, base-vector splice buffers), the recycled
/// explanation arena, the Spectral-Residual FFT planes, and the
/// score/preference buffers. Only touched while explaining, never while
/// pushing, so sharing it costs nothing on the fast path.
#[derive(Debug, Clone)]
pub struct MonitorScratch {
    /// Scratch-reusing explainer: alarm N reuses the buffers of alarm N-1.
    engine: ExplainEngine,
    /// Recycled output storage: callers that hand consumed explanations
    /// back via [`recycle`](Self::recycle) make alarms allocation-free on
    /// the output side too.
    arena: ExplanationArena,
    /// Recycled per-alarm scratch: the flattened test window...
    test_scratch: Vec<f64>,
    /// ...the Spectral Residual working set (FFT spectrum, saliency
    /// planes)...
    sr_scratch: SaliencyScratch,
    /// ...the outlier scores derived from it...
    score_scratch: Vec<f64>,
    /// ...and the preference list refilled from those scores.
    pref_scratch: PreferenceList,
}

impl MonitorScratch {
    /// An empty scratch bound to a KS configuration (the engine's `α`).
    /// All series sharing a scratch must use the same significance level.
    pub fn with_config(ks_cfg: KsConfig) -> Self {
        Self {
            engine: ExplainEngine::with_config(ks_cfg),
            arena: ExplanationArena::new(),
            test_scratch: Vec::new(),
            sr_scratch: SaliencyScratch::new(),
            score_scratch: Vec::new(),
            pref_scratch: PreferenceList::identity(0),
        }
    }

    /// An empty scratch for significance level `alpha`.
    ///
    /// # Errors
    ///
    /// [`MocheError::InvalidAlpha`] outside `(0, 1)`.
    pub fn new(alpha: f64) -> Result<Self, MocheError> {
        Ok(Self::with_config(KsConfig::new(alpha)?))
    }

    /// Hands a consumed explanation's output buffers back for reuse (see
    /// [`moche_core::ExplanationArena`]).
    pub fn recycle(&mut self, explanation: Explanation) {
        self.arena.recycle(explanation);
    }

    /// Explains a captured alarm window pair through this scratch: ranks
    /// `test` with `sr` (identity fallback on breakdown), splices against
    /// `index`, and constructs the explanation into the arena. Returns the
    /// explanation and whether the preference degraded — the fleet's
    /// deferred-queue twin of [`MonitorState::explain_in`], producing
    /// identical explanations for identical windows.
    pub(crate) fn explain_deferred(
        &mut self,
        sr: &SpectralResidual,
        index: &moche_core::ReferenceIndex,
        test: &[f64],
    ) -> (Option<Explanation>, bool) {
        let degraded = self.fill_preference(sr, test);
        let explanation = self
            .engine
            .explain_with_index_in(index, test, &self.pref_scratch, &mut self.arena)
            .ok();
        let counted = degraded && explanation.is_some();
        (explanation, counted)
    }

    /// Phase 1 only over a captured window pair — the deferred twin of
    /// [`MonitorState::size_in`].
    pub(crate) fn size_deferred(
        &mut self,
        index: &moche_core::ReferenceIndex,
        test: &[f64],
    ) -> Option<SizeSearch> {
        self.engine.size_with_index(index, test).ok()
    }

    /// Fills the preference scratch for `test` by Spectral-Residual score
    /// (falling back to the identity order on numerical breakdown or short
    /// windows) and reports whether it degraded. Shared by the inline and
    /// deferred alarm paths so both rank points identically.
    pub(crate) fn fill_preference(&mut self, sr: &SpectralResidual, test: &[f64]) -> bool {
        let m = test.len();
        if m >= 4 {
            let scored =
                sr.scores_into(test, &mut self.sr_scratch, &mut self.score_scratch).is_ok()
                    && self.pref_scratch.fill_from_scores_desc(&self.score_scratch).is_ok();
            if scored {
                return false;
            }
            // A rejected scoring must not silently drop the whole
            // explanation: degrade to the neutral identity order
            // (matching the short-window branch).
            self.pref_scratch.fill_identity(m);
            return true;
        }
        self.pref_scratch.fill_identity(m);
        false
    }
}

/// Recycled buffers holding a point-in-time copy of both windows, taken at
/// alarm time by [`MonitorState::try_push_deferred`] so the explanation
/// can be computed later (possibly after the windows have slid on or been
/// reset) without blocking the push path. A warm capture of the same
/// window size refills without allocating.
#[derive(Debug, Clone, Default)]
pub struct WindowCapture {
    /// Reference window contents at alarm time, oldest first.
    pub reference: Vec<f64>,
    /// Test window contents at alarm time, oldest first.
    pub test: Vec<f64>,
}

impl WindowCapture {
    /// An empty capture; the first alarm through it allocates, later ones
    /// of the same (or smaller) window size reuse both buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// How alarm-time explanation work is handled by a push.
enum AlarmWork<'a> {
    /// Compute inline through the given scratch (the [`DriftMonitor`]
    /// behaviour: the push call returns the finished explanation).
    Inline(&'a mut MonitorScratch),
    /// Copy the windows into recycled capture buffers and return
    /// immediately; the caller explains later (the fleet's alarm queue).
    Defer(&'a mut WindowCapture),
}

/// The per-series half of a drift monitor: sliding windows, incremental KS
/// treaps, the reference order-statistics index, and counters — everything
/// that must exist once per monitored series. All alarm-answering buffers
/// live in a separate [`MonitorScratch`] passed into the methods, so a
/// fleet worker can own one scratch and thousands of states.
#[derive(Debug, Clone)]
pub struct MonitorState {
    cfg: MonitorConfig,
    ks_cfg: KsConfig,
    iks: IncrementalKs,
    ref_window: VecDeque<(f64, ObsId)>,
    test_window: VecDeque<(f64, ObsId)>,
    /// The reference order statistics, maintained **incrementally** across
    /// window slides (`O(log w)` each) and materialized without sorting at
    /// alarm time — the index the alarm splice consumes. Always in sync
    /// with `ref_window`, so no alarm can ever pair a stale index with
    /// fresh windows (the hazard the old per-alarm rebuild had).
    ref_index: IncrementalRefIndex,
    pushes: u64,
    alarms: u64,
    degraded_preferences: u64,
}

impl MonitorState {
    /// Creates the per-series state.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] for a bad significance level
    /// and [`MocheError::WindowTooSmall`] if `window < 2` (paired sliding
    /// windows need at least two points each) or either Spectral-Residual
    /// window is zero.
    pub fn new(cfg: MonitorConfig) -> Result<Self, MocheError> {
        if cfg.window < 2 {
            return Err(MocheError::WindowTooSmall { window: cfg.window, min: 2 });
        }
        if cfg.sr_filter_window < 1 {
            return Err(MocheError::WindowTooSmall { window: cfg.sr_filter_window, min: 1 });
        }
        if cfg.sr_score_window < 1 {
            return Err(MocheError::WindowTooSmall { window: cfg.sr_score_window, min: 1 });
        }
        let ks_cfg = KsConfig::new(cfg.alpha)?;
        Ok(Self {
            cfg,
            ks_cfg,
            iks: IncrementalKs::new(),
            ref_window: VecDeque::with_capacity(cfg.window),
            test_window: VecDeque::with_capacity(cfg.window),
            ref_index: IncrementalRefIndex::with_capacity(cfg.window),
            pushes: 0,
            alarms: 0,
            degraded_preferences: 0,
        })
    }

    /// The configuration this state was built with.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Total observations pushed.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total drift alarms raised.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Identity-fallback explanations produced (see
    /// [`DriftMonitor::degraded_preferences`]).
    pub fn degraded_preferences(&self) -> u64 {
        self.degraded_preferences
    }

    /// Counts a degraded preference produced outside the inline path (the
    /// fleet's deferred explain queue ranks with the same fallback).
    pub(crate) fn note_degraded(&mut self) {
        self.degraded_preferences += 1;
    }

    /// The current reference window contents, oldest first.
    pub fn reference_window(&self) -> Vec<f64> {
        self.ref_window.iter().map(|&(v, _)| v).collect()
    }

    /// The current test window contents, oldest first.
    pub fn test_window(&self) -> Vec<f64> {
        self.test_window.iter().map(|&(v, _)| v).collect()
    }

    /// Feeds one observation, answering alarms inline through `scratch` —
    /// see [`DriftMonitor::try_push`] for the event contract.
    ///
    /// # Errors
    ///
    /// [`MocheError::NonFiniteObservation`] for NaN or infinite input; the
    /// state is untouched.
    pub fn try_push(
        &mut self,
        value: f64,
        scratch: &mut MonitorScratch,
    ) -> Result<MonitorEvent, MocheError> {
        self.try_push_impl(value, AlarmWork::Inline(scratch))
    }

    /// Feeds one observation with alarm explanation **deferred**: on drift
    /// the windows are copied into `capture` (recycled buffers, no
    /// allocation when warm) and the event carries no explanation or size.
    /// The caller explains later from the capture — the fleet's
    /// alarm-queue path, where a slow explain must never block the next
    /// push.
    ///
    /// # Errors
    ///
    /// As for [`try_push`](Self::try_push).
    pub fn try_push_deferred(
        &mut self,
        value: f64,
        capture: &mut WindowCapture,
    ) -> Result<MonitorEvent, MocheError> {
        self.try_push_impl(value, AlarmWork::Defer(capture))
    }

    fn try_push_impl(
        &mut self,
        value: f64,
        work: AlarmWork<'_>,
    ) -> Result<MonitorEvent, MocheError> {
        let w = self.cfg.window;
        if !value.is_finite() {
            return Err(MocheError::NonFiniteObservation { accepted: self.pushes, value });
        }
        self.pushes += 1;

        if self.ref_window.len() < w {
            let id = self.iks.insert_reference(value);
            self.ref_window.push_back((value, id));
            self.ref_index.insert(value);
            return Ok(MonitorEvent::Warming {
                seen: self.ref_window.len() + self.test_window.len(),
                needed: 2 * w,
            });
        }
        if self.test_window.len() < w {
            let id = self.iks.insert_test(value);
            self.test_window.push_back((value, id));
            if self.test_window.len() < w {
                return Ok(MonitorEvent::Warming {
                    seen: self.ref_window.len() + self.test_window.len(),
                    needed: 2 * w,
                });
            }
            // Windows just became full: fall through to the decision.
        } else {
            // Steady state: the oldest test point is promoted to the
            // reference window (replacing its oldest point), and the new
            // observation enters the test window. Three O(log w) slides:
            // two in the KS structure, one in the reference order
            // statistics.
            let (promoted_value, promoted_id) =
                // lint:allow(panic): steady state means both windows are at
                // capacity w >= 1 — an empty pop is a state-machine bug
                self.test_window.pop_front().expect("test window full");
            let (oldest_ref_value, oldest_ref_id) =
                // lint:allow(panic): same steady-state invariant
                self.ref_window.pop_front().expect("ref window full");
            let new_ref_id = self
                .iks
                .slide_reference(oldest_ref_id, promoted_value)
                // lint:allow(panic): the id was just popped from the window
                // that owns it, so the KS structure still tracks it
                .expect("ref handle is live");
            self.ref_window.push_back((promoted_value, new_ref_id));
            let removed = self.ref_index.remove(oldest_ref_value);
            debug_assert!(removed, "reference index tracks the reference window");
            self.ref_index.insert(promoted_value);
            // lint:allow(panic): the id was just popped from the test window
            let new_test_id = self.iks.slide_test(promoted_id, value).expect("test handle is live");
            self.test_window.push_back((value, new_test_id));
        }

        // lint:allow(panic): reached only in steady state, where both
        // windows hold exactly w observations
        let outcome = self.iks.outcome(&self.ks_cfg).expect("both windows non-empty");
        if !outcome.rejected {
            return Ok(MonitorEvent::Stable { outcome });
        }

        self.alarms += 1;
        let (explanation, size) = match work {
            AlarmWork::Inline(scratch) => {
                if self.cfg.size_only {
                    (None, self.size_in(scratch))
                } else if self.cfg.explain_on_drift {
                    (self.explain_in(scratch), None)
                } else {
                    (None, None)
                }
            }
            AlarmWork::Defer(capture) => {
                capture.reference.clear();
                capture.reference.extend(self.ref_window.iter().map(|&(v, _)| v));
                capture.test.clear();
                capture.test.extend(self.test_window.iter().map(|&(v, _)| v));
                (None, None)
            }
        };
        if self.cfg.reset_on_drift {
            self.ref_window.clear();
            self.test_window.clear();
            self.ref_index.clear();
            self.iks = IncrementalKs::new();
        }
        Ok(MonitorEvent::Drift { outcome, explanation, size })
    }

    /// Explains the current window pair through `scratch` — see
    /// [`DriftMonitor::explain_current`] for the full contract.
    pub fn explain_in(&mut self, scratch: &mut MonitorScratch) -> Option<Explanation> {
        self.refresh_alarm_scratch(scratch)?;
        if !self.currently_rejected() {
            // Passing windows have nothing to explain; deciding that here
            // costs O(1) (the incremental statistic is sitting at the
            // treap root) instead of paying the SR transform and the
            // base-vector build just to learn the same from the engine.
            return None;
        }
        let sr = self.cfg.spectral_residual();
        let test = std::mem::take(&mut scratch.test_scratch);
        let degraded = scratch.fill_preference(&sr, &test);
        let index = self.ref_index.materialize().ok();
        let explanation = index.and_then(|index| {
            scratch
                .engine
                .explain_with_index_in(index, &test, &scratch.pref_scratch, &mut scratch.arena)
                .ok()
        });
        scratch.test_scratch = test;
        // Count the degradation only when an explanation was actually
        // produced with the fallback ranking — an on-demand poll of a
        // currently-passing window pair must not register phantom
        // degraded alarms.
        if degraded && explanation.is_some() {
            self.degraded_preferences += 1;
        }
        explanation
    }

    /// Phase 1 only through `scratch` — see [`DriftMonitor::size_current`].
    pub fn size_in(&mut self, scratch: &mut MonitorScratch) -> Option<SizeSearch> {
        self.refresh_alarm_scratch(scratch)?;
        if !self.currently_rejected() {
            return None; // see explain_in
        }
        let index = self.ref_index.materialize().ok()?;
        scratch.engine.size_with_index(index, &scratch.test_scratch).ok()
    }

    /// Whether the monitor's KS decision — the same one that raises
    /// alarms — currently rejects the window pair. `O(1)` in steady state.
    fn currently_rejected(&mut self) -> bool {
        matches!(self.iks.outcome(&self.ks_cfg), Ok(outcome) if outcome.rejected)
    }

    /// Captures the restorable state — see [`DriftMonitor::snapshot`].
    pub fn snapshot(&self) -> crate::snapshot::MonitorSnapshot {
        crate::snapshot::MonitorSnapshot {
            window: self.cfg.window,
            alpha: self.cfg.alpha,
            explain_on_drift: self.cfg.explain_on_drift,
            size_only: self.cfg.size_only,
            reset_on_drift: self.cfg.reset_on_drift,
            sr_filter_window: self.cfg.sr_filter_window,
            sr_score_window: self.cfg.sr_score_window,
            pushes: self.pushes,
            alarms: self.alarms,
            degraded_preferences: self.degraded_preferences,
            reference: self.reference_window(),
            test: self.test_window(),
        }
    }

    /// Rebuilds per-series state from a snapshot — see
    /// [`DriftMonitor::restore`] for the equivalence guarantee.
    ///
    /// # Errors
    ///
    /// As for [`DriftMonitor::restore`].
    pub fn restore(
        snapshot: &crate::snapshot::MonitorSnapshot,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        snapshot.validate()?;
        let cfg = MonitorConfig {
            window: snapshot.window,
            alpha: snapshot.alpha,
            explain_on_drift: snapshot.explain_on_drift,
            size_only: snapshot.size_only,
            reset_on_drift: snapshot.reset_on_drift,
            sr_filter_window: snapshot.sr_filter_window,
            sr_score_window: snapshot.sr_score_window,
        };
        let mut state = Self::new(cfg)?;
        for &value in &snapshot.reference {
            let id = state.iks.insert_reference(value);
            state.ref_window.push_back((value, id));
            state.ref_index.insert(value);
        }
        for &value in &snapshot.test {
            let id = state.iks.insert_test(value);
            state.test_window.push_back((value, id));
        }
        state.pushes = snapshot.pushes;
        state.alarms = snapshot.alarms;
        state.degraded_preferences = snapshot.degraded_preferences;
        Ok(state)
    }

    /// Refills the recycled test-window scratch. The reference side needs
    /// no refresh: its order statistics are maintained incrementally with
    /// every slide, so the alarm path can never pair a stale reference
    /// index with fresh windows — any failure below leaves the scratch
    /// empty (unambiguously invalid), never half-updated.
    fn refresh_alarm_scratch(&mut self, scratch: &mut MonitorScratch) -> Option<()> {
        scratch.test_scratch.clear();
        if self.test_window.len() < self.cfg.window || self.ref_index.is_empty() {
            return None; // still warming (or just reset): nothing to explain
        }
        scratch.test_scratch.extend(self.test_window.iter().map(|&(v, _)| v));
        Some(())
    }
}

/// The push-based drift monitor.
///
/// # Examples
///
/// ```
/// use moche_stream::{DriftMonitor, MonitorConfig, MonitorEvent};
///
/// let mut monitor = DriftMonitor::new(MonitorConfig::new(40, 0.05)).unwrap();
/// let mut drifted = false;
/// for i in 0..400 {
///     // Level shift at t = 200.
///     let x = f64::from(i % 8) + if i < 200 { 0.0 } else { 25.0 };
///     if let MonitorEvent::Drift { explanation, .. } = monitor.push(x) {
///         let e = explanation.expect("explanations enabled by default");
///         assert!(e.outcome_after.passes());
///         drifted = true;
///         break;
///     }
/// }
/// assert!(drifted);
/// ```
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    state: MonitorState,
    scratch: MonitorScratch,
}

impl DriftMonitor {
    /// Creates a monitor.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] for a bad significance level
    /// and [`MocheError::WindowTooSmall`] if `window < 2` (paired sliding
    /// windows need at least two points each) or either Spectral-Residual
    /// window is zero.
    pub fn new(cfg: MonitorConfig) -> Result<Self, MocheError> {
        let state = MonitorState::new(cfg)?;
        let scratch = MonitorScratch::with_config(state.ks_cfg);
        Ok(Self { state, scratch })
    }

    /// Total observations pushed.
    pub fn pushes(&self) -> u64 {
        self.state.pushes()
    }

    /// Total drift alarms raised.
    pub fn alarms(&self) -> u64 {
        self.state.alarms()
    }

    /// How many explanations were produced with the identity-preference
    /// fallback because Spectral-Residual scoring rejected the window
    /// (numerical breakdown on extreme values). Each counted explanation
    /// is still valid — just ranked neutrally — and this counter surfaces
    /// the degradation; calls that produce no explanation at all (e.g. an
    /// on-demand [`explain_current`](Self::explain_current) while the
    /// test currently passes) are never counted.
    pub fn degraded_preferences(&self) -> u64 {
        self.state.degraded_preferences()
    }

    /// The current reference window contents, oldest first.
    pub fn reference_window(&self) -> Vec<f64> {
        self.state.reference_window()
    }

    /// The current test window contents, oldest first.
    pub fn test_window(&self) -> Vec<f64> {
        self.state.test_window()
    }

    /// Feeds one observation and reports what happened — the thin
    /// asserting wrapper over [`try_push`](Self::try_push), for trusted
    /// streams.
    ///
    /// # Panics
    ///
    /// Panics on non-finite observations (monitor state stays valid). Use
    /// [`try_push`](Self::try_push) for untrusted input — a data file fed
    /// straight into the monitor should degrade to an error report, not
    /// abort the process.
    pub fn push(&mut self, value: f64) -> MonitorEvent {
        match self.try_push(value) {
            Ok(event) => event,
            // lint:allow(panic): the documented contract of `push` — the
            // fallible twin is `try_push`, which this forwards to
            Err(_) => panic!("observations must be finite (got {value}); see try_push"),
        }
    }

    /// Feeds one observation and reports what happened, rejecting bad
    /// input instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::NonFiniteObservation`] for a NaN or infinite
    /// observation; the monitor state is untouched, so the caller can skip
    /// the observation and keep streaming. The reported position is the
    /// number of observations accepted so far.
    pub fn try_push(&mut self, value: f64) -> Result<MonitorEvent, MocheError> {
        self.state.try_push(value, &mut self.scratch)
    }

    /// Explains the current window pair with MOCHE, ranking test points by
    /// Spectral-Residual outlier score — the alarm path, public so callers
    /// can also ask for an explanation *between* alarms (e.g. on demand
    /// for a dashboard). Returns `None` while the windows are still
    /// warming, or when the KS test currently passes (nothing to explain).
    ///
    /// The reference order statistics are maintained incrementally across
    /// slides, so no per-alarm sort happens here: materializing the index
    /// is an `O(q_R)` in-order walk, the base-vector splice is
    /// `O(m log w)` plus chunk copies, and every buffer — windows, index,
    /// FFT planes, preference, bounds workspace, and (after
    /// [`recycle`](Self::recycle)) the output itself — is recycled scratch
    /// refilled in place: a warm alarm performs **zero** heap allocations.
    ///
    /// If Spectral-Residual scoring rejects the window (numerical
    /// breakdown on extreme values, or fewer than 4 points), the
    /// explanation falls back to the identity preference instead of being
    /// dropped, and [`degraded_preferences`](Self::degraded_preferences)
    /// counts the degradation. The transform itself is configurable via
    /// [`MonitorConfig::sr_filter_window`] and
    /// [`MonitorConfig::sr_score_window`].
    pub fn explain_current(&mut self) -> Option<Explanation> {
        self.state.explain_in(&mut self.scratch)
    }

    /// Hands a consumed alarm explanation's output buffers back to the
    /// monitor, so the next alarm writes into recycled storage instead of
    /// allocating (see [`moche_core::ExplanationArena`]). Entirely
    /// optional — a dropped explanation simply costs the next alarm two
    /// allocations.
    pub fn recycle(&mut self, explanation: Explanation) {
        self.scratch.recycle(explanation);
    }

    /// Phase 1 only on the current window pair: the explanation size,
    /// without constructing the explanation — the
    /// [`MonitorConfig::size_only`] alarm path, public like
    /// [`explain_current`](Self::explain_current). Returns `None` while
    /// warming or when the test currently passes.
    pub fn size_current(&mut self) -> Option<SizeSearch> {
        self.state.size_in(&mut self.scratch)
    }

    /// Captures the monitor's restorable state: configuration, both
    /// window contents, and the alarm/degradation counters. Derived
    /// structures (the KS treap, the reference order-statistics index,
    /// engine scratch) are rebuilt on [`restore`](Self::restore), so the
    /// snapshot stays small and format-stable. See
    /// [`crate::snapshot::MonitorSnapshot`] for the serialized form and
    /// the byte-identity guarantee.
    pub fn snapshot(&self) -> crate::snapshot::MonitorSnapshot {
        self.state.snapshot()
    }

    /// Rebuilds a monitor from a snapshot. The window values are
    /// re-inserted through the same incremental structures `try_push`
    /// maintains, so the restored monitor's future behaviour is
    /// observably identical to the captured one's — including
    /// byte-identical alarm explanations (the KS decision is exact
    /// integer arithmetic over the window multisets, independent of
    /// internal insertion history; pinned by `tests/snapshot_roundtrip.rs`).
    ///
    /// # Errors
    ///
    /// [`crate::snapshot::SnapshotError::Invalid`] if the snapshot
    /// violates the monitor's structural invariants (window lengths,
    /// warm-up order, finite values) and
    /// [`crate::snapshot::SnapshotError::Moche`] if the embedded
    /// configuration is itself invalid.
    pub fn restore(
        snapshot: &crate::snapshot::MonitorSnapshot,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let state = MonitorState::restore(snapshot)?;
        let scratch = MonitorScratch::with_config(state.ks_cfg);
        Ok(Self { state, scratch })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warms_up_then_stabilizes_on_stationary_stream() {
        let mut mon = DriftMonitor::new(MonitorConfig::new(50, 0.05)).unwrap();
        let mut stable = 0;
        for i in 0..400 {
            let x = ((i * 31) % 17) as f64;
            match mon.push(x) {
                MonitorEvent::Warming { seen, needed } => {
                    assert!(seen <= needed);
                    assert!(i < 100, "warming past 2w at i = {i}");
                }
                MonitorEvent::Stable { outcome } => {
                    assert!(outcome.passes());
                    stable += 1;
                }
                MonitorEvent::Drift { .. } => {
                    panic!("stationary periodic stream must not alarm (i = {i})")
                }
            }
        }
        assert!(stable > 0);
        assert_eq!(mon.alarms(), 0);
        assert_eq!(mon.pushes(), 400);
    }

    #[test]
    fn detects_a_level_shift_and_explains_it() {
        let mut mon = DriftMonitor::new(MonitorConfig::new(60, 0.05)).unwrap();
        let mut drift_at = None;
        for i in 0..600 {
            let x = if i < 300 { ((i * 13) % 11) as f64 } else { ((i * 13) % 11) as f64 + 20.0 };
            if let MonitorEvent::Drift { outcome, explanation, size } = mon.push(x) {
                assert!(outcome.rejected);
                assert!(size.is_none(), "size_only is off by default");
                drift_at = Some(i);
                let e = explanation.expect("explanation enabled");
                assert!(e.outcome_after.passes());
                // The shifted points dominate the explanation.
                assert!(e.values().iter().all(|&v| v >= 20.0), "values = {:?}", e.values());
                break;
            }
        }
        let at = drift_at.expect("the level shift must be detected");
        assert!((300..420).contains(&at), "detected at {at}");
    }

    #[test]
    fn repeated_alarms_reuse_recycled_scratch() {
        // Without reset_on_drift one level shift alarms repeatedly as it
        // traverses the window; every alarm must rebuild the scratch index
        // and preference in place and still explain correctly.
        let mut cfg = MonitorConfig::new(40, 0.05);
        cfg.reset_on_drift = false;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        let mut alarms = 0usize;
        for i in 0..400 {
            let x = if i < 200 { ((i * 13) % 11) as f64 } else { ((i * 13) % 11) as f64 + 20.0 };
            if let MonitorEvent::Drift { explanation, .. } = mon.push(x) {
                let e = explanation.expect("explanations enabled");
                assert!(e.outcome_after.passes(), "alarm {alarms} must verify");
                alarms += 1;
                mon.recycle(e);
                if alarms >= 5 {
                    break;
                }
            }
        }
        assert!(alarms >= 5, "the shift must alarm repeatedly, got {alarms}");
        assert_eq!(mon.alarms(), alarms as u64);
    }

    #[test]
    fn reset_on_drift_requires_rewarming() {
        let mut mon = DriftMonitor::new(MonitorConfig::new(30, 0.05)).unwrap();
        for i in 0..200 {
            let x = if i < 100 { 0.0 + (i % 5) as f64 } else { 50.0 + (i % 5) as f64 };
            if let MonitorEvent::Drift { .. } = mon.push(x) {
                // The very next push must be a warming event.
                match mon.push(1.0) {
                    MonitorEvent::Warming { seen, .. } => assert_eq!(seen, 1),
                    other => panic!("expected warming after reset, got {other:?}"),
                }
                return;
            }
        }
        panic!("drift never detected");
    }

    #[test]
    fn no_reset_keeps_sliding() {
        let mut cfg = MonitorConfig::new(30, 0.05);
        cfg.reset_on_drift = false;
        cfg.explain_on_drift = false;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        let mut alarms = 0;
        for i in 0..300 {
            let x = if i < 150 { (i % 7) as f64 } else { (i % 7) as f64 + 30.0 };
            if let MonitorEvent::Drift { explanation, .. } = mon.push(x) {
                assert!(explanation.is_none(), "explanations disabled");
                alarms += 1;
            }
        }
        // Without reset the drift alarms repeatedly while traversing.
        assert!(alarms > 1, "expected repeated alarms, got {alarms}");
        assert_eq!(mon.alarms(), alarms);
    }

    #[test]
    fn size_only_reports_k_without_an_explanation() {
        let mut full_cfg = MonitorConfig::new(60, 0.05);
        full_cfg.reset_on_drift = false;
        let mut size_cfg = full_cfg;
        size_cfg.size_only = true;
        let mut full = DriftMonitor::new(full_cfg).unwrap();
        let mut sized = DriftMonitor::new(size_cfg).unwrap();
        let series: Vec<f64> = (0..600)
            .map(|i| if i < 300 { ((i * 13) % 11) as f64 } else { ((i * 13) % 11) as f64 + 20.0 })
            .collect();
        let mut checked = 0;
        for &x in &series {
            let (a, b) = (full.push(x), sized.push(x));
            if let (
                MonitorEvent::Drift { explanation: Some(e), .. },
                MonitorEvent::Drift { explanation, size: Some(k), .. },
            ) = (a, b)
            {
                // Same windows, same alarm: the size-only path must agree
                // with the full explanation's Phase 1 and skip Phase 2.
                assert!(explanation.is_none(), "size_only must not build an explanation");
                assert_eq!(k, e.phase1);
                checked += 1;
            }
        }
        assert!(checked > 0, "the level shift must alarm both monitors");
    }

    #[test]
    fn tiny_windows_error_instead_of_panicking() {
        for window in [0usize, 1] {
            match DriftMonitor::new(MonitorConfig::new(window, 0.05)) {
                Err(MocheError::WindowTooSmall { window: w, min: 2 }) => assert_eq!(w, window),
                other => panic!("expected WindowTooSmall for window {window}, got {other:?}"),
            }
        }
        assert!(DriftMonitor::new(MonitorConfig::new(2, 0.05)).is_ok());
    }

    #[test]
    fn zero_sr_windows_error_instead_of_panicking() {
        let mut cfg = MonitorConfig::new(20, 0.05);
        cfg.sr_filter_window = 0;
        assert!(matches!(
            DriftMonitor::new(cfg),
            Err(MocheError::WindowTooSmall { window: 0, min: 1 })
        ));
        let mut cfg = MonitorConfig::new(20, 0.05);
        cfg.sr_score_window = 0;
        assert!(matches!(
            DriftMonitor::new(cfg),
            Err(MocheError::WindowTooSmall { window: 0, min: 1 })
        ));
    }

    #[test]
    fn custom_sr_config_changes_the_ranking_it_is_told_to() {
        // The configurable SR transform must actually reach the alarm
        // path: explanations under a custom (filter_window, score_window)
        // must equal a one-shot MOCHE run ranked by that same transform.
        let mut cfg = MonitorConfig::new(40, 0.05);
        cfg.reset_on_drift = false;
        cfg.sr_filter_window = 5;
        cfg.sr_score_window = 9;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        let mut checked = 0;
        for i in 0..400 {
            let x = if i < 200 { ((i * 13) % 11) as f64 } else { ((i * 13) % 11) as f64 + 20.0 };
            if let MonitorEvent::Drift { explanation: Some(e), .. } = mon.push(x) {
                let sr = SpectralResidual {
                    filter_window: 5,
                    score_window: 9,
                    ..SpectralResidual::default()
                };
                let pref =
                    PreferenceList::from_scores_desc(&sr.scores(&mon.test_window())).unwrap();
                let moche = moche_core::Moche::new(0.05).unwrap();
                let expected =
                    moche.explain(&mon.reference_window(), &mon.test_window(), &pref).unwrap();
                assert_eq!(e, expected, "i = {i}");
                mon.recycle(e);
                checked += 1;
                if checked >= 3 {
                    break;
                }
            }
        }
        assert!(checked > 0, "the level shift must alarm");
        assert_eq!(mon.snapshot().sr_filter_window, 5);
        assert_eq!(mon.snapshot().sr_score_window, 9);
    }

    #[test]
    fn deferred_push_captures_the_alarm_windows() {
        // try_push_deferred must alarm at the same pushes as the inline
        // path, capture exactly the windows the inline path explained,
        // and (with reset_on_drift) still reset afterwards.
        let cfg = MonitorConfig::new(30, 0.05);
        let w = cfg.window;
        let mut inline = DriftMonitor::new(cfg).unwrap();
        let mut deferred = MonitorState::new(cfg).unwrap();
        let mut capture = WindowCapture::new();
        // Shadow model: the values accepted since the last reset — the
        // decision windows are always its last 2w entries.
        let mut since_reset: Vec<f64> = Vec::new();
        let mut alarms = 0;
        for i in 0..400 {
            let x = if i % 120 < 60 { (i % 5) as f64 } else { (i % 5) as f64 + 25.0 };
            since_reset.push(x);
            let a = inline.push(x);
            let b = deferred.try_push_deferred(x, &mut capture).unwrap();
            match (a, b) {
                (
                    MonitorEvent::Drift { outcome: oa, explanation, .. },
                    MonitorEvent::Drift { outcome: ob, explanation: none, size },
                ) => {
                    assert!(none.is_none() && size.is_none(), "deferred pushes never explain");
                    assert_eq!(oa.statistic.to_bits(), ob.statistic.to_bits());
                    let n = since_reset.len();
                    assert!(n >= 2 * w, "drift before the windows were full");
                    assert_eq!(capture.reference, since_reset[n - 2 * w..n - w]);
                    assert_eq!(capture.test, since_reset[n - w..]);
                    since_reset.clear(); // reset_on_drift is on
                    if let Some(e) = explanation {
                        inline.recycle(e);
                    }
                    alarms += 1;
                }
                (MonitorEvent::Warming { .. }, MonitorEvent::Warming { .. })
                | (MonitorEvent::Stable { .. }, MonitorEvent::Stable { .. }) => {}
                (a, b) => panic!("event divergence at i = {i}: {a:?} vs {b:?}"),
            }
        }
        assert!(alarms > 0, "the alternating shift must alarm");
        assert_eq!(inline.alarms(), deferred.alarms());
    }

    #[test]
    fn recycled_alarms_match_unrecycled_ones() {
        let mut cfg = MonitorConfig::new(40, 0.05);
        cfg.reset_on_drift = false;
        let mut recycling = DriftMonitor::new(cfg).unwrap();
        let mut plain = DriftMonitor::new(cfg).unwrap();
        let series: Vec<f64> = (0..400)
            .map(|i| if i < 200 { ((i * 13) % 11) as f64 } else { ((i * 13) % 11) as f64 + 20.0 })
            .collect();
        let mut alarms = 0;
        for &x in &series {
            let a = recycling.push(x);
            let b = plain.push(x);
            if let (
                MonitorEvent::Drift { explanation: Some(ea), .. },
                MonitorEvent::Drift { explanation: Some(eb), .. },
            ) = (a, b)
            {
                assert_eq!(ea, eb, "arena reuse must not change explanations");
                alarms += 1;
                recycling.recycle(ea); // alarm N+1 reuses alarm N's buffers
            }
        }
        assert!(alarms > 1, "need repeated alarms to exercise the recycled path");
    }

    #[test]
    fn try_push_rejects_non_finite_without_corrupting_state() {
        let mut cfg = MonitorConfig::new(30, 0.05);
        cfg.reset_on_drift = false;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        let mut clean = DriftMonitor::new(cfg).unwrap();
        let series: Vec<f64> = (0..300)
            .map(|i| if i < 150 { (i % 7) as f64 } else { (i % 7) as f64 + 30.0 })
            .collect();
        let mut rejected = 0;
        for (i, &x) in series.iter().enumerate() {
            // Inject garbage between every real observation: each must be
            // rejected with the monitor untouched — a regression guard for
            // the panic `push` used to hit on bad data files.
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                match mon.try_push(bad) {
                    Err(MocheError::NonFiniteObservation { accepted, value }) => {
                        assert_eq!(accepted, i as u64, "position counts accepted observations");
                        assert_eq!(value.to_bits(), bad.to_bits());
                        rejected += 1;
                    }
                    other => panic!("expected NonFiniteObservation, got {other:?}"),
                }
            }
            let a = format!("{:?}", mon.try_push(x).unwrap());
            let b = format!("{:?}", clean.push(x));
            assert_eq!(a, b, "rejected observations must leave no trace (t = {i})");
        }
        assert_eq!(rejected, 3 * series.len());
        assert_eq!(mon.pushes(), clean.pushes());
        assert_eq!(mon.alarms(), clean.alarms());
        assert!(mon.alarms() > 0, "the level shift must still alarm");
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn push_keeps_the_asserting_contract() {
        let mut mon = DriftMonitor::new(MonitorConfig::new(10, 0.05)).unwrap();
        mon.push(f64::NAN);
    }

    #[test]
    fn sr_rejection_degrades_to_identity_instead_of_dropping() {
        // Near-f64::MAX test values overflow the Spectral Residual FFT, so
        // scoring rejects the window. The alarm must still carry an
        // explanation (identity-ranked) and count the degradation.
        let mut cfg = MonitorConfig::new(20, 0.05);
        cfg.reset_on_drift = false;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        let mut degraded_alarms = 0;
        for i in 0..200 {
            let x = if i < 100 { (i % 5) as f64 } else { 1.5e308 };
            if let MonitorEvent::Drift { explanation, .. } = mon.push(x) {
                let e = explanation
                    .expect("SR rejection must fall back to identity, not drop the explanation");
                assert!(e.outcome_after.passes());
                assert!(e.values().iter().all(|&v| v > 1.0e308), "the huge points explain it");
                degraded_alarms += 1;
                mon.recycle(e);
            }
        }
        assert!(degraded_alarms > 0, "the shift to huge values must alarm");
        assert_eq!(
            mon.degraded_preferences(),
            degraded_alarms,
            "every alarm on the overflowing window degrades its preference"
        );
        // A healthy monitor never increments the counter.
        let mut healthy = DriftMonitor::new(MonitorConfig::new(20, 0.05)).unwrap();
        for i in 0..200 {
            let x = if i < 100 { (i % 5) as f64 } else { (i % 5) as f64 + 40.0 };
            if let MonitorEvent::Drift { explanation: Some(e), .. } = healthy.push(x) {
                healthy.recycle(e);
            }
        }
        assert!(healthy.alarms() > 0);
        assert_eq!(healthy.degraded_preferences(), 0);
    }

    #[test]
    fn passing_windows_never_count_phantom_degradations() {
        // Both windows hold the same extreme values: the KS test passes,
        // SR scoring overflows, and an on-demand explain_current() poll
        // returns None — without registering a degraded preference, since
        // no explanation was produced.
        let mut cfg = MonitorConfig::new(10, 0.05);
        cfg.reset_on_drift = false;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        for i in 0..40 {
            match mon.push(if i % 2 == 0 { 1.5e308 } else { 1.2e308 }) {
                MonitorEvent::Drift { .. } => panic!("identical distributions must not alarm"),
                MonitorEvent::Stable { .. } | MonitorEvent::Warming { .. } => {}
            }
        }
        for _ in 0..5 {
            assert!(mon.explain_current().is_none(), "passing windows have nothing to explain");
        }
        assert_eq!(mon.degraded_preferences(), 0, "no explanation, no degradation");
    }

    #[test]
    fn incremental_index_stays_in_sync_with_the_reference_window() {
        // Slides, alarms, rejected pushes and resets: after every accepted
        // observation the incrementally-maintained index must equal a
        // from-scratch sorted build of the reference window — the
        // structural guarantee that replaced the stale-scratch hazard of
        // the per-alarm rebuild.
        use moche_core::ReferenceIndex;
        for reset in [true, false] {
            let mut cfg = MonitorConfig::new(15, 0.05);
            cfg.reset_on_drift = reset;
            let mut mon = DriftMonitor::new(cfg).unwrap();
            for i in 0..240u32 {
                if i % 7 == 0 {
                    assert!(mon.try_push(f64::NAN).is_err());
                }
                let x = f64::from(i % 11) + if (i / 60) % 2 == 0 { 0.0 } else { 25.0 };
                if let MonitorEvent::Drift { explanation: Some(e), .. } = mon.push(x) {
                    mon.recycle(e);
                }
                let window = mon.reference_window();
                if window.is_empty() {
                    assert!(mon.state.ref_index.is_empty(), "reset must clear the index (i = {i})");
                } else {
                    assert_eq!(
                        mon.state.ref_index.materialize().unwrap(),
                        &ReferenceIndex::new(&window).unwrap(),
                        "i = {i}, reset = {reset}"
                    );
                }
            }
        }
    }

    #[test]
    fn explain_current_on_demand_matches_the_alarm_path() {
        let mut cfg = MonitorConfig::new(40, 0.05);
        cfg.reset_on_drift = false;
        cfg.explain_on_drift = false; // alarms carry no explanation...
        let mut mon = DriftMonitor::new(cfg).unwrap();
        assert!(mon.explain_current().is_none(), "nothing to explain while warming");
        assert!(mon.size_current().is_none());
        let mut checked = 0;
        for i in 0..400 {
            let x = if i < 200 { ((i * 13) % 11) as f64 } else { ((i * 13) % 11) as f64 + 20.0 };
            match mon.push(x) {
                MonitorEvent::Drift { explanation, .. } => {
                    assert!(explanation.is_none());
                    // ...but the public method explains the same windows on
                    // demand, matching a one-shot MOCHE run exactly.
                    let e = mon.explain_current().expect("failing windows must explain");
                    let moche = moche_core::Moche::new(0.05).unwrap();
                    let pref = {
                        let t = mon.test_window();
                        let sr = SpectralResidual::default();
                        PreferenceList::from_scores_desc(&sr.scores(&t)).unwrap()
                    };
                    let expected =
                        moche.explain(&mon.reference_window(), &mon.test_window(), &pref).unwrap();
                    assert_eq!(e, expected, "i = {i}");
                    assert_eq!(mon.size_current().unwrap(), e.phase1);
                    mon.recycle(e);
                    checked += 1;
                    if checked >= 3 {
                        return;
                    }
                }
                MonitorEvent::Stable { .. } => {
                    assert!(mon.explain_current().is_none(), "passing windows have no explanation");
                }
                MonitorEvent::Warming { .. } => {}
            }
        }
        assert!(checked > 0, "the level shift must alarm");
    }

    #[test]
    fn windows_track_the_last_2w_points() {
        let w = 20;
        let mut cfg = MonitorConfig::new(w, 0.001); // tiny alpha: never alarm
        cfg.reset_on_drift = false;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        let series: Vec<f64> = (0..100).map(|i| f64::from(i % 13)).collect();
        for &x in &series {
            mon.push(x);
        }
        assert_eq!(mon.reference_window(), series[100 - 2 * w..100 - w].to_vec());
        assert_eq!(mon.test_window(), series[100 - w..].to_vec());
    }

    #[test]
    fn monitor_statistic_matches_batch() {
        let w = 25;
        let mut cfg = MonitorConfig::new(w, 0.001);
        cfg.reset_on_drift = false;
        let mut mon = DriftMonitor::new(cfg).unwrap();
        let series: Vec<f64> = (0..120).map(|i| ((i * 37) % 19) as f64 * 0.7).collect();
        for (i, &x) in series.iter().enumerate() {
            let event = mon.push(x);
            if i + 1 >= 2 * w {
                let stat = match event {
                    MonitorEvent::Stable { outcome } | MonitorEvent::Drift { outcome, .. } => {
                        outcome.statistic
                    }
                    MonitorEvent::Warming { .. } => panic!("past warm-up"),
                };
                let lo = i + 1 - 2 * w;
                let batch =
                    moche_core::ks_statistic(&series[lo..lo + w], &series[lo + w..i + 1]).unwrap();
                assert!((stat - batch).abs() < 1e-12, "i = {i}: {stat} vs {batch}");
            }
        }
    }
}
