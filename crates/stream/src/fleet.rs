//! `MonitorFleet`: many series, few workers — the multi-tenant layer the
//! `moche serve` daemon is a thin I/O shell around.
//!
//! A single [`crate::DriftMonitor`] owns both its per-series state *and*
//! the alarm-answering scratch (explain engine, FFT planes, arena). At
//! fleet scale that second half is the expensive one, and it is idle
//! except while answering an alarm — so the fleet keeps exactly one
//! [`MonitorScratch`] per shard and slab-stores only the lean per-series
//! [`MonitorState`]s (`O(w)` each: windows + treaps + counters).
//!
//! ## Sharding
//!
//! Series are assigned to shards by [`shard_of`], a pure splitmix64 hash
//! of the series id — **stable across processes and restarts** (no
//! per-process seed), which is what lets a resumed daemon route every
//! checkpointed series back to a worker deterministically. Each shard is
//! single-threaded by construction: one worker owns it outright, so the
//! hot push path takes no locks and shares no cache lines.
//!
//! ## The alarm-explain queue
//!
//! A w=10k explanation costs ~2.7ms — about 450 steady-state pushes. If
//! alarms were explained inline, one drifting series could stall every
//! other series on its shard. Instead a push that alarms *captures* the
//! window pair into recycled buffers ([`WindowCapture`], `O(w)` copy, no
//! allocation when warm) and enqueues it on a **bounded** per-shard queue;
//! the worker drains the queue when its ingest ring is idle. The alarm
//! itself (outcome + counters) is recorded at push time and is never
//! dropped — when the queue is full only the *explanation work* is shed,
//! and [`FleetStats::explain_dropped`] counts every shed ticket.
//!
//! ## Checkpoint / resume
//!
//! Each shard persists all its series as one atomic
//! `shard-NNNN.snap` file (magic `MOCHEFLT`, CRC-checked, nested
//! version-2 [`MonitorSnapshot`]s). [`MonitorFleet::resume_from_dir`]
//! reads every shard file and re-routes each series by [`shard_of`], so a
//! resume is correct even if the worker count changed in between. The
//! per-series byte-identical-resume guarantee (see [`crate::snapshot`])
//! lifts to the fleet: a resumed fleet raises the same alarms the
//! uninterrupted one would have.

use crate::monitor::{MonitorConfig, MonitorEvent, MonitorScratch, MonitorState, WindowCapture};
use crate::snapshot::{crc32, write_bytes_atomic, MonitorSnapshot, SnapshotError};
use moche_core::fault::{self, Fault};
use moche_core::{Explanation, KsConfig, KsOutcome, MocheError, ReferenceIndex, SizeSearch};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Leading bytes identifying a fleet shard checkpoint file.
pub const FLEET_SHARD_MAGIC: [u8; 8] = *b"MOCHEFLT";
/// The shard-container format version this build writes and reads.
pub const FLEET_SHARD_VERSION: u32 = 1;

const SHARD_HEADER_LEN: usize = 8 + 4 + 8;

/// The shard a series id lives on, for a fleet of `shards` workers.
///
/// A pure splitmix64 finalizer over the id — deterministic across
/// processes, builds, and restarts (property-tested by
/// `tests/proptest_fleet.rs`), so checkpointed series always route back
/// to a consistent worker and two fleets with the same shard count agree
/// on placement.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_of(series: u64, shards: usize) -> usize {
    assert!(shards > 0, "a fleet needs at least one shard");
    let mut z = series.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// Fleet configuration: the per-series monitor settings plus the fleet's
/// own knobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Worker/shard count (each shard is owned by exactly one worker).
    pub shards: usize,
    /// Per-series monitor configuration. `explain_on_drift` / `size_only`
    /// select what the deferred alarm queue computes; pushes themselves
    /// never explain inline.
    pub monitor: MonitorConfig,
    /// Bound on each shard's pending alarm-explain queue. A full queue
    /// sheds explanation work (counted, never silently) instead of
    /// blocking pushes.
    pub explain_queue: usize,
    /// Hard cap on the number of tracked series across the fleet
    /// (`usize::MAX` = unbounded). Pushes for new series beyond the cap
    /// are rejected with [`FleetPush::AtCapacity`] so an id-sweeping
    /// client cannot OOM the daemon.
    pub max_series: usize,
}

impl FleetConfig {
    /// A fleet of `shards` workers running `monitor` per series, with a
    /// 64-deep explain queue per shard and no series cap.
    pub fn new(shards: usize, monitor: MonitorConfig) -> Self {
        Self { shards, monitor, explain_queue: 64, max_series: usize::MAX }
    }
}

/// Fleet-wide counters, shared (lock-free) between the shard workers and
/// whoever serves the status endpoint. All monotonic except
/// [`series`](Self::series), which is a gauge.
#[derive(Debug, Default)]
pub struct FleetStats {
    /// Observations accepted into some series' windows.
    pub accepted: AtomicU64,
    /// Non-finite observations rejected (series state untouched).
    pub skipped_observations: AtomicU64,
    /// Drift alarms raised (recorded at push time; never shed).
    pub alarms: AtomicU64,
    /// Alarm tickets answered by the deferred explain queue.
    pub explained: AtomicU64,
    /// Alarm tickets shed because the explain queue was full — the alarm
    /// itself was still counted and reported.
    pub explain_dropped: AtomicU64,
    /// Explanations that fell back to the identity preference (see
    /// [`crate::DriftMonitor::degraded_preferences`]).
    pub degraded_preferences: AtomicU64,
    /// Worker panics caught and isolated (the panicking series is
    /// quarantined; the shard keeps serving the rest).
    pub worker_panics: AtomicU64,
    /// Series removed after a panic mid-update left their state suspect.
    pub quarantined_series: AtomicU64,
    /// Pushes rejected because [`FleetConfig::max_series`] was reached.
    pub rejected_at_capacity: AtomicU64,
    /// Shard checkpoint files written successfully.
    pub checkpoints_written: AtomicU64,
    /// Shard checkpoint attempts that failed (the shard keeps running;
    /// the previous checkpoint file, if any, is still intact).
    pub checkpoint_failures: AtomicU64,
    /// Currently tracked series (gauge).
    pub series: AtomicU64,
    // Serving-edge counters, maintained by the daemon's connection
    // supervisor (`moche serve`): the fleet itself never touches them, but
    // they live here so one `Arc<FleetStats>` carries every number the
    // STATUS endpoint and the final health line report. None of them
    // affects `is_clean()` — a misbehaving *client* is not a degraded
    // *daemon*.
    /// Connections admitted by the accept loop.
    pub connections_opened: AtomicU64,
    /// Connections rejected with a `BUSY` reply at `--max-connections`.
    pub busy_rejections: AtomicU64,
    /// Connections evicted for sending nothing within the idle budget.
    pub idle_timeouts: AtomicU64,
    /// Connections evicted for stalling mid-frame past the I/O deadline.
    pub stalled_reads: AtomicU64,
    /// Connections evicted because a reply write stalled (a peer that
    /// never reads) past the I/O deadline.
    pub stalled_writes: AtomicU64,
    /// Malformed frames / JSON lines answered with a structured error.
    pub malformed_frames: AtomicU64,
    /// Connections closed after spending their malformed-frame budget.
    pub error_budget_closes: AtomicU64,
    /// Connections closed by a graceful drain (signal or SHUTDOWN).
    pub drained_connections: AtomicU64,
}

impl FleetStats {
    /// A consistent-enough copy for reporting (each counter is read
    /// atomically; the set is not a global snapshot).
    // lint:allow(relaxed, fn): pure monotonic counters (plus the series
    // gauge) — readers tolerate staleness and no memory is published
    // through these loads; cross-thread handoff in the fleet goes through
    // channels and mutexes, never through FleetStats.
    pub fn view(&self) -> FleetStatsView {
        FleetStatsView {
            accepted: self.accepted.load(Ordering::Relaxed),
            skipped_observations: self.skipped_observations.load(Ordering::Relaxed),
            alarms: self.alarms.load(Ordering::Relaxed),
            explained: self.explained.load(Ordering::Relaxed),
            explain_dropped: self.explain_dropped.load(Ordering::Relaxed),
            degraded_preferences: self.degraded_preferences.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            quarantined_series: self.quarantined_series.load(Ordering::Relaxed),
            rejected_at_capacity: self.rejected_at_capacity.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            series: self.series.load(Ordering::Relaxed),
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            idle_timeouts: self.idle_timeouts.load(Ordering::Relaxed),
            stalled_reads: self.stalled_reads.load(Ordering::Relaxed),
            stalled_writes: self.stalled_writes.load(Ordering::Relaxed),
            malformed_frames: self.malformed_frames.load(Ordering::Relaxed),
            error_budget_closes: self.error_budget_closes.load(Ordering::Relaxed),
            drained_connections: self.drained_connections.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`FleetStats`] for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)] // field-for-field mirror of FleetStats
pub struct FleetStatsView {
    pub accepted: u64,
    pub skipped_observations: u64,
    pub alarms: u64,
    pub explained: u64,
    pub explain_dropped: u64,
    pub degraded_preferences: u64,
    pub worker_panics: u64,
    pub quarantined_series: u64,
    pub rejected_at_capacity: u64,
    pub checkpoints_written: u64,
    pub checkpoint_failures: u64,
    pub series: u64,
    pub connections_opened: u64,
    pub busy_rejections: u64,
    pub idle_timeouts: u64,
    pub stalled_reads: u64,
    pub stalled_writes: u64,
    pub malformed_frames: u64,
    pub error_budget_closes: u64,
    pub drained_connections: u64,
}

impl FleetStatsView {
    /// Total connections the supervisor evicted for cause (idle, stalled
    /// read/write, or a spent error budget). Busy rejections and graceful
    /// drains are counted separately — those connections did nothing wrong.
    pub fn evicted_connections(&self) -> u64 {
        self.idle_timeouts + self.stalled_reads + self.stalled_writes + self.error_budget_closes
    }

    /// Whether the fleet ran degradation-free: no panics, no quarantines,
    /// no shed explanations, no failed checkpoints. Connection-supervision
    /// counters do not factor in: evicting a hostile client is the daemon
    /// working, not the daemon degrading.
    pub fn is_clean(&self) -> bool {
        self.worker_panics == 0
            && self.quarantined_series == 0
            && self.explain_dropped == 0
            && self.checkpoint_failures == 0
    }
}

/// What a fleet push did.
#[derive(Debug, Clone)]
pub enum FleetPush {
    /// The series' windows are still filling.
    Warming,
    /// Windows full, KS test passes.
    Stable,
    /// Drift alarm. The explanation (if configured) is computed later by
    /// the deferred queue; `explain_queued` is false when the queue was
    /// full and the explanation work was shed.
    Alarm {
        /// The failing KS outcome.
        outcome: KsOutcome,
        /// The series' accepted-observation count at the alarm.
        at_push: u64,
        /// Whether an explain ticket was enqueued (false = shed).
        explain_queued: bool,
    },
    /// The observation's series was quarantined by this push: the update
    /// panicked mid-flight (caught), so the series state is suspect and
    /// was removed. Subsequent pushes for the id start a fresh series.
    Quarantined,
    /// A new series could not be created: [`FleetConfig::max_series`].
    AtCapacity,
}

/// Per-series counters surfaced on the daemon's per-series status query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesStats {
    /// Shard the series lives on.
    pub shard: usize,
    /// Accepted observations.
    pub pushes: u64,
    /// Alarms raised.
    pub alarms: u64,
    /// Identity-fallback explanations.
    pub degraded_preferences: u64,
}

/// A deferred alarm waiting on the explain queue.
#[derive(Debug)]
struct PendingExplain {
    series: u64,
    at_push: u64,
    outcome: KsOutcome,
    capture: WindowCapture,
}

/// An answered alarm ticket, handed to the [`FleetShard::drain_explains`]
/// sink. The explanation borrow is recycled into the shard scratch after
/// the sink returns, keeping warm alarms allocation-free.
#[derive(Debug)]
pub struct ExplainedAlarm<'a> {
    /// The alarming series.
    pub series: u64,
    /// The series' accepted-observation count at the alarm.
    pub at_push: u64,
    /// The failing KS outcome at the alarm.
    pub outcome: KsOutcome,
    /// The counterfactual explanation (when configured and computable).
    pub explanation: Option<&'a Explanation>,
    /// The Phase-1 size (when [`MonitorConfig::size_only`]).
    pub size: Option<SizeSearch>,
    /// Whether the preference degraded to the identity order.
    pub degraded: bool,
}

/// One shard: a slab of per-series states plus the worker's shared
/// scratch. Owned by exactly one worker thread at a time; all methods
/// take `&mut self`, so the compiler enforces that.
#[derive(Debug)]
pub struct FleetShard {
    id: usize,
    cfg: FleetConfig,
    /// Slab of live series states; `ids[i]` is the series id of `slab[i]`.
    slab: Vec<MonitorState>,
    ids: Vec<u64>,
    by_id: HashMap<u64, usize>,
    /// The worker's shared alarm-answering scratch — one per shard, not
    /// per series.
    scratch: MonitorScratch,
    /// Bounded deferred-explain queue (bound: `cfg.explain_queue`).
    pending: VecDeque<PendingExplain>,
    /// Recycled capture buffers (bounded by the queue depth + 1).
    capture_pool: Vec<WindowCapture>,
    /// Rebuildable reference index + sort scratch for deferred explains.
    ref_index: Option<ReferenceIndex>,
    sort_scratch: Vec<f64>,
    stats: Arc<FleetStats>,
    /// Observations accepted by this shard (drives the checkpoint cadence
    /// without touching the shared atomics).
    accepted: u64,
}

impl FleetShard {
    fn new(id: usize, cfg: FleetConfig, ks_cfg: KsConfig, stats: Arc<FleetStats>) -> Self {
        Self {
            id,
            cfg,
            slab: Vec::new(),
            ids: Vec::new(),
            by_id: HashMap::new(),
            scratch: MonitorScratch::with_config(ks_cfg),
            pending: VecDeque::new(),
            capture_pool: Vec::new(),
            ref_index: None,
            sort_scratch: Vec::new(),
            stats,
            accepted: 0,
        }
    }

    /// This shard's index within the fleet.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Live series on this shard.
    pub fn series_count(&self) -> usize {
        self.slab.len()
    }

    /// Pending (unanswered) alarm-explain tickets.
    pub fn pending_explains(&self) -> usize {
        self.pending.len()
    }

    /// Observations this shard has accepted (drives checkpoint cadence).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Per-series counters, if the series lives on this shard.
    pub fn series_stats(&self, series: u64) -> Option<SeriesStats> {
        let &slot = self.by_id.get(&series)?;
        let state = &self.slab[slot];
        Some(SeriesStats {
            shard: self.id,
            pushes: state.pushes(),
            alarms: state.alarms(),
            degraded_preferences: state.degraded_preferences(),
        })
    }

    /// Feeds one observation to its series (created on first sight),
    /// with worker-panic isolation: a panic inside the update is caught,
    /// the series is quarantined (its state is suspect mid-update), and
    /// the shard keeps serving every other series.
    ///
    /// # Errors
    ///
    /// [`MocheError::NonFiniteObservation`] for NaN/infinite values (the
    /// series state is untouched and the skip is counted).
    pub fn push(&mut self, series: u64, value: f64) -> Result<FleetPush, MocheError> {
        let slot = match self.by_id.get(&series) {
            Some(&slot) => slot,
            None => {
                // lint:allow(relaxed): approximate capacity check against the
                // series gauge; each shard only admits its own series, so the
                // load observes every increment this thread made.
                // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                if self.stats.series.load(Ordering::Relaxed) >= self.cfg.max_series as u64 {
                    // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                    self.stats.rejected_at_capacity.fetch_add(1, Ordering::Relaxed);
                    return Ok(FleetPush::AtCapacity);
                }
                let state = MonitorState::new(self.cfg.monitor)?;
                let slot = self.slab.len();
                self.slab.push(state);
                self.ids.push(series);
                self.by_id.insert(series, slot);
                // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                self.stats.series.fetch_add(1, Ordering::Relaxed);
                slot
            }
        };

        let mut capture = self.capture_pool.pop().unwrap_or_default();
        let state = &mut self.slab[slot];
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(Fault::Panic) = fault::failpoint("serve.shard_worker") {
                // lint:allow(panic): the armed fault *is* a panic; caught by
                // this catch_unwind and accounted as a worker panic
                panic!("injected shard worker panic (serve.shard_worker)");
            }
            state.try_push_deferred(value, &mut capture)
        }));

        let event = match outcome {
            Ok(Ok(event)) => event,
            Ok(Err(err)) => {
                // Bad input: the state is untouched by contract.
                // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                self.stats.skipped_observations.fetch_add(1, Ordering::Relaxed);
                self.capture_pool_return(capture);
                return Err(err);
            }
            Err(payload) => {
                // The update panicked mid-flight: the series state may be
                // half-slid, so quarantine it. One poisoned series must
                // not take down the shard.
                let message = fault::panic_message(payload.as_ref());
                // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                self.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                self.quarantine(series);
                self.capture_pool_return(capture);
                let _ = message; // surfaced via stats; the daemon logs it
                return Ok(FleetPush::Quarantined);
            }
        };

        self.accepted += 1;
        // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
        Ok(match event {
            MonitorEvent::Warming { .. } => {
                self.capture_pool_return(capture);
                FleetPush::Warming
            }
            MonitorEvent::Stable { .. } => {
                self.capture_pool_return(capture);
                FleetPush::Stable
            }
            MonitorEvent::Drift { outcome, .. } => {
                // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                self.stats.alarms.fetch_add(1, Ordering::Relaxed);
                let at_push = self.slab[slot].pushes();
                let wants_explain = self.cfg.monitor.explain_on_drift || self.cfg.monitor.size_only;
                let explain_queued = if wants_explain && self.pending.len() < self.cfg.explain_queue
                {
                    self.pending.push_back(PendingExplain { series, at_push, outcome, capture });
                    true
                } else {
                    if wants_explain {
                        // Queue full: shed the explanation work, never the
                        // alarm or the push path.
                        // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                        self.stats.explain_dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    self.capture_pool_return(capture);
                    false
                };
                FleetPush::Alarm { outcome, at_push, explain_queued }
            }
        })
    }

    /// Answers up to `budget` pending alarm tickets through the shard's
    /// shared scratch, invoking `sink` for each. Returns how many tickets
    /// were answered. Call when the ingest ring is idle (or with a small
    /// budget between batches): explains never preempt pushes.
    pub fn drain_explains<F: for<'a> FnMut(&ExplainedAlarm<'a>)>(
        &mut self,
        budget: usize,
        mut sink: F,
    ) -> usize {
        let mut answered = 0;
        while answered < budget {
            let Some(ticket) = self.pending.pop_front() else { break };
            let PendingExplain { series, at_push, outcome, capture } = ticket;
            let index_ok = match self.ref_index.as_mut() {
                Some(index) => {
                    index.rebuild_from(&capture.reference, &mut self.sort_scratch).is_ok()
                }
                None => match ReferenceIndex::new(&capture.reference) {
                    Ok(index) => {
                        self.ref_index = Some(index);
                        true
                    }
                    Err(_) => false,
                },
            };
            let (explanation, size, degraded) = if !index_ok {
                (None, None, false)
            } else {
                // lint:allow(panic): `index_ok` is only true after the branch
                // above stored `Some(index)`
                let index = self.ref_index.as_ref().expect("just built");
                if self.cfg.monitor.size_only {
                    (None, self.scratch.size_deferred(index, &capture.test), false)
                } else if self.cfg.monitor.explain_on_drift {
                    let sr = self.cfg.monitor.spectral_residual();
                    let (explanation, degraded) =
                        self.scratch.explain_deferred(&sr, index, &capture.test);
                    (explanation, None, degraded)
                } else {
                    (None, None, false)
                }
            };
            if degraded {
                // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                self.stats.degraded_preferences.fetch_add(1, Ordering::Relaxed);
                if let Some(&slot) = self.by_id.get(&series) {
                    self.slab[slot].note_degraded();
                }
            }
            // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
            self.stats.explained.fetch_add(1, Ordering::Relaxed);
            sink(&ExplainedAlarm {
                series,
                at_push,
                outcome,
                explanation: explanation.as_ref(),
                size,
                degraded,
            });
            if let Some(e) = explanation {
                self.scratch.recycle(e);
            }
            self.capture_pool_return(capture);
            answered += 1;
        }
        answered
    }

    /// Writes every series on this shard into `dir/shard-NNNN.snap`
    /// atomically (stage + `fsync` + rename). The `serve.checkpoint`
    /// failpoint can inject an I/O failure or a torn final file here.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when staging or renaming fails. Failures are
    /// also counted in [`FleetStats::checkpoint_failures`]; successes in
    /// [`FleetStats::checkpoints_written`].
    pub fn checkpoint(&self, dir: &Path) -> Result<(), SnapshotError> {
        let path = dir.join(shard_file_name(self.id));
        let bytes = self.encode();
        let result = (|| match fault::failpoint("serve.checkpoint") {
            Some(Fault::Error) => Err(SnapshotError::Io(std::io::Error::other(
                "injected shard checkpoint failure (serve.checkpoint)",
            ))),
            Some(Fault::TruncateWrite(keep)) => {
                // The torn write the atomic protocol exists to prevent.
                let keep = keep.min(bytes.len());
                std::fs::write(&path, &bytes[..keep])?;
                Ok(())
            }
            _ => write_bytes_atomic(&path, &bytes),
        })();
        match &result {
            Ok(()) => {
                // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                self.stats.checkpoints_written.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
                self.stats.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    /// Serializes the shard container: magic, version, length-prefixed
    /// payload (shard id, shard count, then every series as a nested
    /// [`MonitorSnapshot`]), CRC-32.
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(self.id as u32).to_le_bytes());
        payload.extend_from_slice(&(self.cfg.shards as u32).to_le_bytes());
        payload.extend_from_slice(&(self.slab.len() as u64).to_le_bytes());
        for (state, &series) in self.slab.iter().zip(&self.ids) {
            let snap = state.snapshot().to_bytes();
            payload.extend_from_slice(&series.to_le_bytes());
            payload.extend_from_slice(&(snap.len() as u64).to_le_bytes());
            payload.extend_from_slice(&snap);
        }
        let mut bytes = Vec::with_capacity(SHARD_HEADER_LEN + payload.len() + 4);
        bytes.extend_from_slice(&FLEET_SHARD_MAGIC);
        bytes.extend_from_slice(&FLEET_SHARD_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let crc = crc32(&bytes[SHARD_HEADER_LEN..]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    fn capture_pool_return(&mut self, capture: WindowCapture) {
        // Bounded: the pool never outgrows the explain queue it feeds.
        if self.capture_pool.len() <= self.cfg.explain_queue {
            self.capture_pool.push(capture);
        }
    }

    fn quarantine(&mut self, series: u64) {
        let Some(slot) = self.by_id.remove(&series) else { return };
        self.slab.swap_remove(slot);
        self.ids.swap_remove(slot);
        if slot < self.slab.len() {
            // The former tail moved into the vacated slot.
            self.by_id.insert(self.ids[slot], slot);
        }
        // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
        self.stats.quarantined_series.fetch_add(1, Ordering::Relaxed);
        // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
        self.stats.series.fetch_sub(1, Ordering::Relaxed);
    }

    fn insert_restored(&mut self, series: u64, state: MonitorState) -> Result<(), SnapshotError> {
        if self.by_id.contains_key(&series) {
            return Err(SnapshotError::Invalid("duplicate series id across shard checkpoints"));
        }
        let slot = self.slab.len();
        self.slab.push(state);
        self.ids.push(series);
        self.by_id.insert(series, slot);
        // lint:allow(relaxed): monotonic stats counter; no cross-thread handoff rides on it
        self.stats.series.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// One shard checkpoint file, decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetShardSnapshot {
    /// Shard index at capture time.
    pub shard: u32,
    /// Fleet shard count at capture time (informational: resume re-routes
    /// by the *current* shard count).
    pub shards: u32,
    /// Every series on the shard, as (id, snapshot) pairs.
    pub series: Vec<(u64, MonitorSnapshot)>,
}

impl FleetShardSnapshot {
    /// Decodes and verifies a shard container (magic, version, length,
    /// CRC, then every nested snapshot through its own full validation).
    ///
    /// # Errors
    ///
    /// The same surface as [`MonitorSnapshot::from_bytes`], lifted to the
    /// container: truncation anywhere, bad magic, unsupported version,
    /// checksum mismatch, trailing bytes, or a rejected nested snapshot.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..8] != FLEET_SHARD_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < SHARD_HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        // lint:allow(panic): infallible — fixed-width slices of a buffer
        // whose length was checked against SHARD_HEADER_LEN above
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
        if version != FLEET_SHARD_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let payload_len =
            // lint:allow(panic): infallible — same header-length guard
            u64::from_le_bytes(bytes[12..SHARD_HEADER_LEN].try_into().expect("8 bytes"));
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| SnapshotError::Invalid("payload length overflows this platform"))?;
        let total = SHARD_HEADER_LEN
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(4))
            .ok_or(SnapshotError::Invalid("payload length overflows this platform"))?;
        if bytes.len() < total {
            return Err(SnapshotError::Truncated);
        }
        if bytes.len() > total {
            return Err(SnapshotError::Invalid("trailing bytes after the checksum"));
        }
        let payload = &bytes[SHARD_HEADER_LEN..SHARD_HEADER_LEN + payload_len];
        // lint:allow(panic): infallible — `bytes.len() == total` was checked
        let stored_crc = u32::from_le_bytes(bytes[total - 4..].try_into().expect("4-byte slice"));
        if crc32(payload) != stored_crc {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut rest = payload;
        let mut take = |n: usize| -> Result<&[u8], SnapshotError> {
            if rest.len() < n {
                return Err(SnapshotError::Truncated);
            }
            let (head, tail) = rest.split_at(n);
            rest = tail;
            Ok(head)
        };
        // lint:allow(panic): infallible — `take(n)` returns exactly n bytes
        let shard = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
        // lint:allow(panic): infallible — `take(n)` returns exactly n bytes
        let shards = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
        // lint:allow(panic): infallible — `take(n)` returns exactly n bytes
        let count = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let count = usize::try_from(count)
            .map_err(|_| SnapshotError::Invalid("series count overflows this platform"))?;
        if shards == 0 || u64::from(shard) >= u64::from(shards) {
            return Err(SnapshotError::Invalid("shard index outside the recorded shard count"));
        }
        let mut series = Vec::with_capacity(count.min(payload_len / 16 + 1));
        for _ in 0..count {
            // lint:allow(panic): infallible — `take(n)` returns exactly n bytes
            let id = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
            // lint:allow(panic): infallible — `take(n)` returns exactly n bytes
            let len = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
            let len = usize::try_from(len)
                .map_err(|_| SnapshotError::Invalid("snapshot length overflows this platform"))?;
            let snap = MonitorSnapshot::from_bytes(take(len)?)?;
            series.push((id, snap));
        }
        if !rest.is_empty() {
            return Err(SnapshotError::Invalid("payload longer than its contents"));
        }
        Ok(Self { shard, shards, series })
    }

    /// Reads and verifies a shard container from `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be read, otherwise any
    /// [`from_bytes`](Self::from_bytes) rejection.
    pub fn read_from(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

/// The checkpoint file name for shard `id` (`shard-NNNN.snap`).
pub fn shard_file_name(id: usize) -> String {
    format!("shard-{id:04}.snap")
}

/// The multi-series monitor fleet. See the module docs for the design.
///
/// Single-threaded drivers call [`push`](Self::push) /
/// [`drain_explains`](Self::drain_explains) directly; the daemon splits
/// the fleet into its shards ([`into_shards`](Self::into_shards)) and
/// gives each to a worker thread, with routing by [`shard_of`].
#[derive(Debug)]
pub struct MonitorFleet {
    cfg: FleetConfig,
    shards: Vec<FleetShard>,
    stats: Arc<FleetStats>,
}

impl MonitorFleet {
    /// Creates an empty fleet.
    ///
    /// # Errors
    ///
    /// [`MocheError::WindowTooSmall`] (also raised for `shards == 0`) or
    /// [`MocheError::InvalidAlpha`] when the per-series configuration is
    /// invalid — validated here once so per-series creation at push time
    /// cannot fail on configuration.
    pub fn new(cfg: FleetConfig) -> Result<Self, MocheError> {
        if cfg.shards == 0 {
            return Err(MocheError::WindowTooSmall { window: 0, min: 1 });
        }
        // Probe-validate the per-series configuration (window, alpha, SR).
        MonitorState::new(cfg.monitor)?;
        let ks_cfg = KsConfig::new(cfg.monitor.alpha)?;
        let stats = Arc::new(FleetStats::default());
        let shards = (0..cfg.shards)
            .map(|id| FleetShard::new(id, cfg, ks_cfg, Arc::clone(&stats)))
            .collect();
        Ok(Self { cfg, shards, stats })
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The shared counters (clone the `Arc` to watch from other threads).
    pub fn stats(&self) -> &Arc<FleetStats> {
        &self.stats
    }

    /// The shard `series` routes to.
    pub fn route(&self, series: u64) -> usize {
        shard_of(series, self.shards.len())
    }

    /// Total live series across all shards.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(FleetShard::series_count).sum()
    }

    /// Per-series counters, if the series exists.
    pub fn series_stats(&self, series: u64) -> Option<SeriesStats> {
        self.shards[self.route(series)].series_stats(series)
    }

    /// Feeds one observation, routing by [`shard_of`] — the
    /// single-threaded driver ([`FleetShard::push`] for semantics).
    ///
    /// # Errors
    ///
    /// As for [`FleetShard::push`].
    pub fn push(&mut self, series: u64, value: f64) -> Result<FleetPush, MocheError> {
        let shard = self.route(series);
        self.shards[shard].push(series, value)
    }

    /// Answers up to `budget` pending alarm tickets **per shard**.
    /// Returns the total answered.
    pub fn drain_explains<F: for<'a> FnMut(&ExplainedAlarm<'a>)>(
        &mut self,
        budget: usize,
        mut sink: F,
    ) -> usize {
        self.shards.iter_mut().map(|s| s.drain_explains(budget, &mut sink)).sum()
    }

    /// Checkpoints every shard into `dir` (created if missing). Returns
    /// the number of shard files written.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on the first failing shard; earlier shards'
    /// files are already durable, and each failure is counted.
    pub fn checkpoint_dir(&self, dir: &Path) -> Result<usize, SnapshotError> {
        std::fs::create_dir_all(dir)?;
        for shard in &self.shards {
            shard.checkpoint(dir)?;
        }
        Ok(self.shards.len())
    }

    /// Rebuilds a fleet from every `shard-*.snap` under `dir`, re-routing
    /// each checkpointed series by [`shard_of`] under the *current* shard
    /// count (so resuming with a different worker pool size is correct by
    /// construction). Missing shard files are fine — a shard that never
    /// checkpointed simply contributes no series.
    ///
    /// # Errors
    ///
    /// Any container or nested-snapshot rejection; additionally
    /// [`SnapshotError::Invalid`] for duplicate series ids or a series
    /// whose checkpointed `alpha` differs from the fleet's (each shard
    /// shares one explain engine per significance level).
    pub fn resume_from_dir(cfg: FleetConfig, dir: &Path) -> Result<Self, SnapshotError> {
        let mut fleet = Self::new(cfg)?;
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".snap"))
            })
            .collect();
        paths.sort();
        for path in paths {
            let shard_snap = FleetShardSnapshot::read_from(&path)?;
            for (series, snap) in &shard_snap.series {
                if snap.alpha.to_bits() != cfg.monitor.alpha.to_bits() {
                    return Err(SnapshotError::Invalid(
                        "checkpointed series alpha differs from the fleet configuration",
                    ));
                }
                let state = MonitorState::restore(snap)?;
                let shard = shard_of(*series, cfg.shards);
                fleet.shards[shard].insert_restored(*series, state)?;
            }
        }
        Ok(fleet)
    }

    /// Splits the fleet into its shards for per-worker ownership, plus
    /// the shared stats handle. Reassemble with
    /// [`from_shards`](Self::from_shards) (e.g. for a final checkpoint
    /// after the workers join).
    pub fn into_shards(self) -> (FleetConfig, Vec<FleetShard>, Arc<FleetStats>) {
        (self.cfg, self.shards, self.stats)
    }

    /// Reassembles a fleet from shards produced by
    /// [`into_shards`](Self::into_shards).
    ///
    /// # Panics
    ///
    /// Panics if the shard list is empty or shard ids are out of order
    /// (i.e. the shards do not come from one `into_shards` call).
    pub fn from_shards(cfg: FleetConfig, shards: Vec<FleetShard>, stats: Arc<FleetStats>) -> Self {
        assert_eq!(shards.len(), cfg.shards, "shard list does not match the configuration");
        for (i, shard) in shards.iter().enumerate() {
            assert_eq!(shard.id(), i, "shards out of order");
        }
        Self { cfg, shards, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet_cfg(shards: usize, window: usize) -> FleetConfig {
        let mut monitor = MonitorConfig::new(window, 0.05);
        monitor.reset_on_drift = true;
        FleetConfig::new(shards, monitor)
    }

    /// A deterministic per-series stream: stationary, then level-shifted
    /// after `shift_at` observations.
    fn obs(series: u64, i: u64, shift_at: u64) -> f64 {
        let base = ((i * 13 + series * 7) % 11) as f64;
        if i < shift_at {
            base
        } else {
            base + 20.0
        }
    }

    #[test]
    fn shard_routing_is_deterministic_and_covers_all_shards() {
        for shards in [1usize, 2, 3, 8] {
            let mut hit = vec![false; shards];
            for id in 0..1000u64 {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards), "routing must be a pure function");
                hit[s] = true;
            }
            assert!(hit.iter().all(|&h| h), "1000 ids must touch every one of {shards} shards");
        }
    }

    #[test]
    fn fleet_raises_the_same_alarms_as_dedicated_monitors() {
        // N series through one fleet vs N standalone DriftMonitors with
        // deferred-equivalent config: same alarm counts per series, same
        // number of explanations answered.
        let cfg = fleet_cfg(3, 25);
        let mut fleet = MonitorFleet::new(cfg).unwrap();
        let series_ids: Vec<u64> = (0..12).map(|i| i * 97 + 5).collect();
        let mut standalone: HashMap<u64, crate::DriftMonitor> = series_ids
            .iter()
            .map(|&id| (id, crate::DriftMonitor::new(cfg.monitor).unwrap()))
            .collect();
        for i in 0..400u64 {
            for &id in &series_ids {
                let shift = 150 + (id % 5) * 30;
                let x = obs(id, i, shift);
                let fleet_event = fleet.push(id, x).unwrap();
                let mono_event = standalone.get_mut(&id).unwrap().push(x);
                match (&fleet_event, &mono_event) {
                    (FleetPush::Alarm { outcome, .. }, MonitorEvent::Drift { outcome: o2, .. }) => {
                        assert_eq!(outcome.statistic.to_bits(), o2.statistic.to_bits());
                    }
                    (FleetPush::Warming, MonitorEvent::Warming { .. })
                    | (FleetPush::Stable, MonitorEvent::Stable { .. }) => {}
                    (a, b) => panic!("divergence at i = {i}, id = {id}: {a:?} vs {b:?}"),
                }
            }
        }
        let mut explained = 0;
        while fleet.drain_explains(16, |alarm| {
            assert!(alarm.explanation.is_some(), "every queued alarm must explain");
        }) > 0
        {
            explained += 1;
        }
        assert!(explained > 0, "the shifts must have queued explanations");
        for &id in &series_ids {
            let stats = fleet.series_stats(id).expect("series exists");
            let mono = &standalone[&id];
            assert_eq!(stats.pushes, mono.pushes(), "id = {id}");
            assert_eq!(stats.alarms, mono.alarms(), "id = {id}");
            assert!(stats.alarms > 0, "every series must have alarmed (id = {id})");
            assert_eq!(stats.shard, shard_of(id, 3));
        }
        let view = fleet.stats().view();
        assert_eq!(view.alarms, fleet.drain_total_alarms_for_test());
        assert_eq!(view.explained + view.explain_dropped, view.alarms);
        assert_eq!(view.series, 12);
    }

    #[test]
    fn fleet_explanations_match_the_inline_monitor_explanations() {
        // The deferred path (capture → rebuild index → shared scratch)
        // must produce byte-identical explanations to the inline path.
        let mut monitor_cfg = MonitorConfig::new(30, 0.05);
        monitor_cfg.reset_on_drift = false;
        let mut cfg = FleetConfig::new(2, monitor_cfg);
        cfg.explain_queue = 1024;
        let mut fleet = MonitorFleet::new(cfg).unwrap();
        let mut inline = crate::DriftMonitor::new(monitor_cfg).unwrap();
        let id = 42u64;
        let mut inline_explanations = Vec::new();
        for i in 0..260u64 {
            let x = obs(id, i, 130);
            fleet.push(id, x).unwrap();
            if let MonitorEvent::Drift { explanation: Some(e), .. } = inline.push(x) {
                inline_explanations.push(e);
            }
        }
        let mut fleet_explanations = Vec::new();
        fleet.drain_explains(usize::MAX, |alarm| {
            fleet_explanations.push(alarm.explanation.expect("queued alarms explain").clone());
        });
        assert!(!inline_explanations.is_empty(), "the shift must alarm");
        assert_eq!(fleet_explanations, inline_explanations);
    }

    #[test]
    fn explain_queue_is_bounded_and_sheds_work_not_alarms() {
        let mut monitor_cfg = MonitorConfig::new(10, 0.05);
        monitor_cfg.reset_on_drift = false; // alarm repeatedly
        let mut cfg = FleetConfig::new(1, monitor_cfg);
        cfg.explain_queue = 3;
        let mut fleet = MonitorFleet::new(cfg).unwrap();
        let id = 7u64;
        let mut alarms = 0u64;
        for i in 0..300u64 {
            if let FleetPush::Alarm { .. } = fleet.push(id, obs(id, i, 60)).unwrap() {
                alarms += 1;
            }
            assert!(
                fleet.shards[0].pending_explains() <= 3,
                "the explain queue must never exceed its bound"
            );
        }
        assert!(alarms > 3, "need more alarms than the queue bound");
        let view = fleet.stats().view();
        assert_eq!(view.alarms, alarms, "every alarm is recorded even when explains shed");
        assert!(view.explain_dropped > 0, "the tiny queue must have shed work");
        let mut answered = 0;
        fleet.drain_explains(usize::MAX, |_| answered += 1);
        let view = fleet.stats().view();
        assert_eq!(view.explained, answered);
        assert_eq!(view.explained + view.explain_dropped, view.alarms);
    }

    #[test]
    fn checkpoint_resume_round_trips_every_shard() {
        let dir = std::env::temp_dir().join("moche-fleet-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = fleet_cfg(3, 20);
        let mut fleet = MonitorFleet::new(cfg).unwrap();
        for i in 0..90u64 {
            for id in 0..20u64 {
                fleet.push(id, obs(id, i, 1_000)).unwrap(); // stationary
            }
        }
        assert_eq!(fleet.checkpoint_dir(&dir).unwrap(), 3);
        let resumed = MonitorFleet::resume_from_dir(cfg, &dir).unwrap();
        assert_eq!(resumed.series_count(), 20);
        for id in 0..20u64 {
            let a = fleet.series_stats(id).unwrap();
            let b = resumed.series_stats(id).unwrap();
            assert_eq!(a, b, "id = {id}");
        }
        // The resumed fleet keeps raising identical alarms.
        let mut original = fleet;
        let mut resumed = resumed;
        for i in 90..200u64 {
            for id in 0..20u64 {
                let a = original.push(id, obs(id, i, 120)).unwrap();
                let b = resumed.push(id, obs(id, i, 120)).unwrap();
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "i = {i}, id = {id}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_reroutes_series_when_the_shard_count_changes() {
        let dir = std::env::temp_dir().join("moche-fleet-reshard");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = fleet_cfg(4, 12);
        let mut fleet = MonitorFleet::new(cfg).unwrap();
        for i in 0..40u64 {
            for id in 0..30u64 {
                fleet.push(id, obs(id, i, 1_000)).unwrap();
            }
        }
        fleet.checkpoint_dir(&dir).unwrap();
        // Shrink 4 → 2 workers: every series must land on its new shard.
        let resumed = MonitorFleet::resume_from_dir(fleet_cfg(2, 12), &dir).unwrap();
        assert_eq!(resumed.series_count(), 30);
        for id in 0..30u64 {
            assert_eq!(resumed.series_stats(id).unwrap().shard, shard_of(id, 2));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_alpha_mismatch_and_duplicates() {
        let dir = std::env::temp_dir().join("moche-fleet-reject");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = fleet_cfg(2, 10);
        let mut fleet = MonitorFleet::new(cfg).unwrap();
        for i in 0..30u64 {
            fleet.push(3, obs(3, i, 1_000)).unwrap();
        }
        fleet.checkpoint_dir(&dir).unwrap();
        let mut other = fleet_cfg(2, 10);
        other.monitor.alpha = 0.01;
        assert!(matches!(
            MonitorFleet::resume_from_dir(other, &dir),
            Err(SnapshotError::Invalid(_))
        ));
        // A duplicated shard file (same series in two files) is rejected.
        let holder = shard_of(3, 2);
        let src = dir.join(shard_file_name(holder));
        let dst = dir.join(shard_file_name(1 - holder));
        std::fs::copy(&src, &dst).unwrap();
        // Patch the duplicate's recorded shard id so only the duplicate
        // series trips the rejection, not the container validation.
        let mut bytes = std::fs::read(&dst).unwrap();
        let payload_start = SHARD_HEADER_LEN;
        let other_id = (1 - holder) as u32;
        bytes[payload_start..payload_start + 4].copy_from_slice(&other_id.to_le_bytes());
        let payload_len = bytes.len() - SHARD_HEADER_LEN - 4;
        let crc = crc32(&bytes[payload_start..payload_start + payload_len]);
        let crc_at = bytes.len() - 4;
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&dst, &bytes).unwrap();
        assert!(matches!(
            MonitorFleet::resume_from_dir(cfg, &dir),
            Err(SnapshotError::Invalid("duplicate series id across shard checkpoints"))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_container_rejects_truncation_and_corruption() {
        let cfg = fleet_cfg(1, 8);
        let mut fleet = MonitorFleet::new(cfg).unwrap();
        for i in 0..20u64 {
            fleet.push(1, obs(1, i, 1_000)).unwrap();
            fleet.push(2, obs(2, i, 1_000)).unwrap();
        }
        let bytes = fleet.shards[0].encode();
        assert!(FleetShardSnapshot::from_bytes(&bytes).is_ok());
        for len in 0..bytes.len() {
            assert!(
                FleetShardSnapshot::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes must be rejected"
            );
        }
        for bit in (0..bytes.len() * 8).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(
                FleetShardSnapshot::from_bytes(&corrupt).is_err(),
                "flipping bit {bit} went undetected"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(FleetShardSnapshot::from_bytes(&trailing).is_err());
    }

    #[test]
    fn capacity_cap_rejects_new_series_only() {
        let mut cfg = fleet_cfg(2, 8);
        cfg.max_series = 3;
        let mut fleet = MonitorFleet::new(cfg).unwrap();
        for id in 0..3u64 {
            assert!(matches!(fleet.push(id, 1.0).unwrap(), FleetPush::Warming));
        }
        assert!(matches!(fleet.push(99, 1.0).unwrap(), FleetPush::AtCapacity));
        // Existing series keep flowing.
        assert!(matches!(fleet.push(0, 2.0).unwrap(), FleetPush::Warming));
        assert_eq!(fleet.stats().view().rejected_at_capacity, 1);
        assert_eq!(fleet.series_count(), 3);
    }

    #[test]
    fn non_finite_observations_are_counted_and_rejected() {
        let mut fleet = MonitorFleet::new(fleet_cfg(1, 8)).unwrap();
        fleet.push(5, 1.0).unwrap();
        assert!(fleet.push(5, f64::NAN).is_err());
        assert!(fleet.push(5, f64::INFINITY).is_err());
        let view = fleet.stats().view();
        assert_eq!(view.skipped_observations, 2);
        assert_eq!(view.accepted, 1);
        assert_eq!(fleet.series_stats(5).unwrap().pushes, 1);
    }

    impl MonitorFleet {
        /// Test helper: total alarms according to per-series counters.
        fn drain_total_alarms_for_test(&self) -> u64 {
            self.shards.iter().flat_map(|s| s.slab.iter()).map(MonitorState::alarms).sum()
        }
    }
}
