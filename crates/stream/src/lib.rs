//! # moche-stream
//!
//! Streaming substrate for the MOCHE reproduction: an incremental
//! two-sample Kolmogorov-Smirnov test (treap-based, after dos Reis et al.,
//! KDD 2016 — reference \[17\] of the paper) and a push-based
//! [`DriftMonitor`] that pairs it with MOCHE explanations.
//!
//! The paper's experiments run the KS test over paired sliding windows
//! (Section 6.1.1); this crate makes that deployment shape first-class:
//!
//! * [`treap`] — an order-augmented treap whose root exposes the maximum
//!   absolute prefix sum of weighted elements;
//! * [`incremental`] — weights `+m` / `-n` turn that prefix sum into
//!   `n·m·D(R, T)`, giving `O(log N)` KS updates;
//! * [`monitor`] — paired sliding windows, `O(log w)` per observation,
//!   MOCHE explanations on every drift alarm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod incremental;
pub mod monitor;
pub mod snapshot;
pub mod treap;

pub use fleet::{
    shard_of, ExplainedAlarm, FleetConfig, FleetPush, FleetShard, FleetShardSnapshot, FleetStats,
    FleetStatsView, MonitorFleet, SeriesStats,
};
pub use incremental::{IncrementalKs, ObsId};
pub use monitor::{
    DriftMonitor, MonitorConfig, MonitorEvent, MonitorScratch, MonitorState, WindowCapture,
};
pub use snapshot::{MonitorSnapshot, SnapshotError};
pub use treap::WeightedTreap;
