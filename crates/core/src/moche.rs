//! The top-level MOCHE API.
//!
//! [`Moche`] bundles the two phases of the algorithm behind a single
//! [`explain`](Moche::explain) call that takes the raw reference set, test
//! set and a preference list, and returns the unique most comprehensible
//! counterfactual explanation together with verification outcomes and
//! search diagnostics.

use crate::base_vector::BaseVector;
use crate::bounds::BoundsContext;
use crate::engine::ExplainEngine;
use crate::error::MocheError;
use crate::ks::{KsConfig, KsOutcome};
use crate::phase1::{self, SizeSearch};
use crate::phase2::ConstructStats;
use crate::preference::PreferenceList;

/// Which Phase-2 construction strategy to use. Both produce identical
/// explanations; see [`crate::phase2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConstructionStrategy {
    /// Incremental backward-pass maintenance (default, fastest).
    #[default]
    Incremental,
    /// The paper-faithful full backward pass per candidate.
    Reference,
}

/// How Phase 1 finds the explanation size. All strategies return identical
/// `k` (and, where applicable, `k̂`); they differ in wall clock and in the
/// reported check counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SizeSearchStrategy {
    /// Fused multi-probe wavefront search for the Theorem-2 lower bound
    /// ([`crate::phase1::lower_bound_wavefront`]), then the Theorem-1 scan
    /// (default, fastest).
    #[default]
    Wavefront,
    /// Adaptive binary search for the Theorem-2 lower bound, then the
    /// Theorem-1 scan — the paper-faithful scalar reference the wavefront
    /// is pinned against.
    LowerBounded,
    /// Scan from `h = 1` with the Theorem-1 check only (the paper's
    /// `MOCHE_ns` ablation).
    NoLowerBound,
}

/// Per-alpha outcome of a sensitivity sweep: the level and the size
/// search result at that level.
pub type SizeProfile = Vec<(f64, Result<SizeSearch, MocheError>)>;

/// The MOCHE explainer.
///
/// # Examples
///
/// ```
/// use moche_core::{Moche, PreferenceList};
///
/// // The running example of the paper (Examples 3-6).
/// let reference = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
/// let test = vec![13.0, 13.0, 12.0, 20.0];
/// let preference = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
///
/// let moche = Moche::new(0.3).unwrap();
/// let explanation = moche.explain(&reference, &test, &preference).unwrap();
/// assert_eq!(explanation.size(), 2);
/// assert_eq!(explanation.indices(), &[2, 1]); // {t3, t2} = {12, 13}
/// assert!(explanation.outcome_after.passes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moche {
    cfg: KsConfig,
    construction: ConstructionStrategy,
    size_search: SizeSearchStrategy,
}

impl Moche {
    /// Creates an explainer for significance level `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`MocheError::InvalidAlpha`] unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Result<Self, MocheError> {
        Ok(Self {
            cfg: KsConfig::new(alpha)?,
            construction: ConstructionStrategy::default(),
            size_search: SizeSearchStrategy::default(),
        })
    }

    /// Creates an explainer from an existing [`KsConfig`].
    pub fn with_config(cfg: KsConfig) -> Self {
        Self {
            cfg,
            construction: ConstructionStrategy::default(),
            size_search: SizeSearchStrategy::default(),
        }
    }

    /// Selects the Phase-2 construction strategy.
    #[must_use]
    pub fn construction(mut self, strategy: ConstructionStrategy) -> Self {
        self.construction = strategy;
        self
    }

    /// Selects the Phase-1 size-search strategy.
    #[must_use]
    pub fn size_search(mut self, strategy: SizeSearchStrategy) -> Self {
        self.size_search = strategy;
        self
    }

    /// The KS configuration in use.
    #[inline]
    pub fn config(&self) -> &KsConfig {
        &self.cfg
    }

    /// Runs the KS test between `reference` and `test`.
    ///
    /// # Errors
    ///
    /// Propagates input-validation errors.
    pub fn test(&self, reference: &[f64], test: &[f64]) -> Result<KsOutcome, MocheError> {
        let base = BaseVector::build(reference, test)?;
        Ok(base.outcome(&self.cfg))
    }

    /// Phase 1 only: the explanation size of the failed test, without
    /// constructing an explanation.
    ///
    /// # Errors
    ///
    /// * [`MocheError::TestAlreadyPasses`] when there is nothing to explain.
    /// * [`MocheError::NoExplanation`] when no subset reverses the test.
    /// * Input-validation errors.
    pub fn explanation_size(
        &self,
        reference: &[f64],
        test: &[f64],
    ) -> Result<SizeSearch, MocheError> {
        let base = BaseVector::build(reference, test)?;
        let outcome = base.outcome(&self.cfg);
        if outcome.passes() {
            return Err(MocheError::TestAlreadyPasses {
                statistic: outcome.statistic,
                threshold: outcome.threshold,
            });
        }
        let ctx = BoundsContext::new(&base, &self.cfg);
        match self.size_search {
            SizeSearchStrategy::Wavefront => phase1::find_size_wavefront(&ctx, self.cfg.alpha()),
            SizeSearchStrategy::LowerBounded => phase1::find_size(&ctx, self.cfg.alpha()),
            SizeSearchStrategy::NoLowerBound => {
                phase1::find_size_no_lower_bound(&ctx, self.cfg.alpha())
            }
        }
    }

    /// Finds the most comprehensible counterfactual explanation of the
    /// failed KS test between `reference` and `test` under `preference`.
    ///
    /// # Errors
    ///
    /// * [`MocheError::TestAlreadyPasses`] when there is nothing to explain.
    /// * [`MocheError::NoExplanation`] when no subset reverses the test
    ///   (possible only for `alpha > 2/e^2`).
    /// * [`MocheError::PreferenceLengthMismatch`] when `preference` does not
    ///   order exactly the points of `test`.
    /// * Input-validation errors.
    pub fn explain(
        &self,
        reference: &[f64],
        test: &[f64],
        preference: &PreferenceList,
    ) -> Result<Explanation, MocheError> {
        // The engine is the canonical implementation of the explain flow
        // for both construction strategies; a one-shot call simply uses a
        // fresh workspace.
        self.engine().explain(reference, test, preference)
    }

    /// Creates a scratch-reusing [`ExplainEngine`] with this explainer's
    /// configuration and strategies.
    pub fn engine(&self) -> ExplainEngine {
        ExplainEngine::with_config(self.cfg)
            .size_search(self.size_search)
            .construction(self.construction)
    }

    /// Sensitivity analysis: the explanation size at each of several
    /// significance levels (sharing one `BaseVector` build). Returns one
    /// entry per `alpha`: `Ok(SizeSearch)` for failed tests,
    /// `Err(TestAlreadyPasses)` where the test passes at that level, or
    /// other errors as usual.
    ///
    /// Stricter levels (smaller `alpha`) widen the threshold, so `k` is
    /// non-increasing as `alpha` decreases — a property the test suite
    /// checks.
    ///
    /// # Errors
    ///
    /// Input-validation errors fail the whole call; per-level outcomes are
    /// reported inside the vector.
    pub fn size_profile(
        &self,
        reference: &[f64],
        test: &[f64],
        alphas: &[f64],
    ) -> Result<SizeProfile, MocheError> {
        // One BaseVector build and one BoundsContext, reconfigured per
        // level, shared across the whole sweep.
        self.engine().size_profile(reference, test, alphas)
    }

    /// Convenience: builds a descending-score preference list and explains.
    ///
    /// # Errors
    ///
    /// As for [`explain`](Self::explain), plus score-validation errors.
    pub fn explain_with_scores(
        &self,
        reference: &[f64],
        test: &[f64],
        scores: &[f64],
    ) -> Result<Explanation, MocheError> {
        if scores.len() != test.len() {
            return Err(MocheError::PreferenceLengthMismatch {
                expected: test.len(),
                actual: scores.len(),
            });
        }
        let preference = PreferenceList::from_scores_desc(scores)?;
        self.explain(reference, test, &preference)
    }
}

/// The most comprehensible counterfactual explanation of a failed KS test.
///
/// The two owned vectors (indices and values) are the only per-call heap
/// cost of a warm [`ExplainEngine`]; callers on the streaming hot path
/// write them into recycled storage instead via the engine's `*_in`
/// methods and hand them back with
/// [`ExplanationArena::recycle`](crate::arena::ExplanationArena::recycle)
/// after consumption.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    pub(crate) indices: Vec<usize>,
    pub(crate) values: Vec<f64>,
    /// Phase-1 diagnostics (`k`, `k̂`, check counts).
    pub phase1: SizeSearch,
    /// Phase-2 diagnostics.
    pub phase2: ConstructStats,
    /// The failed KS test that was explained.
    pub outcome_before: KsOutcome,
    /// The KS test between `R` and `T \ I` — always passing.
    pub outcome_after: KsOutcome,
    /// `|R|`.
    pub n: usize,
    /// `|T|`.
    pub m: usize,
    /// Number of distinct values in `R ∪ T`.
    pub q: usize,
}

impl Explanation {
    /// The selected original test indices, most preferred first.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The values of the selected points, aligned with
    /// [`indices`](Self::indices).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The explanation size `k`.
    #[inline]
    pub fn size(&self) -> usize {
        self.indices.len()
    }

    /// The Phase-1 lower bound `k̂`.
    #[inline]
    pub fn k_hat(&self) -> usize {
        self.phase1.k_hat
    }

    /// Fraction of the test set removed, `k / m`.
    #[inline]
    pub fn removed_fraction(&self) -> f64 {
        self.size() as f64 / self.m as f64
    }

    /// Returns `test` with the explanation's points removed, preserving the
    /// original order of the remaining points.
    pub fn apply(&self, test: &[f64]) -> Vec<f64> {
        let mut keep = vec![true; test.len()];
        for &i in &self.indices {
            keep[i] = false;
        }
        test.iter().zip(keep).filter_map(|(&v, k)| k.then_some(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::{brute_force_explain, BruteForceLimits};
    use crate::ks::ks_test;

    fn paper_setup() -> (Vec<f64>, Vec<f64>) {
        (vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0], vec![13.0, 13.0, 12.0, 20.0])
    }

    #[test]
    fn paper_example_end_to_end() {
        let (r, t) = paper_setup();
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let moche = Moche::new(0.3).unwrap();
        let e = moche.explain(&r, &t, &pref).unwrap();
        assert_eq!(e.size(), 2);
        assert_eq!(e.indices(), &[2, 1]);
        assert_eq!(e.values(), &[12.0, 13.0]);
        assert_eq!(e.phase1.k_hat, 2);
        assert!(e.outcome_before.rejected);
        assert!(e.outcome_after.passes());
        assert_eq!(e.q, 4);
        assert!((e.removed_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn apply_removes_selected_points() {
        let (r, t) = paper_setup();
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let moche = Moche::new(0.3).unwrap();
        let e = moche.explain(&r, &t, &pref).unwrap();
        let t_after = e.apply(&t);
        assert_eq!(t_after, vec![13.0, 20.0]);
        // Re-running the plain KS test on the reduced set must pass.
        let cfg = KsConfig::new(0.3).unwrap();
        assert!(ks_test(&r, &t_after, &cfg).unwrap().passes());
    }

    #[test]
    fn matches_brute_force_on_paper_example() {
        let (r, t) = paper_setup();
        let cfg = KsConfig::new(0.3).unwrap();
        let moche = Moche::new(0.3).unwrap();
        for order in [vec![3, 2, 1, 0], vec![0, 1, 2, 3], vec![1, 3, 0, 2]] {
            let pref = PreferenceList::new(order).unwrap();
            let fast = moche.explain(&r, &t, &pref).unwrap();
            let slow =
                brute_force_explain(&r, &t, &cfg, &pref, BruteForceLimits::default()).unwrap();
            let mut fast_sorted = fast.indices().to_vec();
            let mut slow_sorted = slow.indices.clone();
            fast_sorted.sort_unstable();
            slow_sorted.sort_unstable();
            assert_eq!(fast_sorted, slow_sorted, "pref = {:?}", pref.as_order());
        }
    }

    #[test]
    fn passing_test_is_an_error() {
        let moche = Moche::new(0.05).unwrap();
        let r: Vec<f64> = (0..30).map(f64::from).collect();
        let pref = PreferenceList::identity(30);
        match moche.explain(&r, &r, &pref) {
            Err(MocheError::TestAlreadyPasses { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(moche.explanation_size(&r, &r).is_err());
    }

    #[test]
    fn preference_mismatch_is_an_error() {
        let (r, t) = paper_setup();
        let moche = Moche::new(0.3).unwrap();
        let pref = PreferenceList::identity(3);
        match moche.explain(&r, &t, &pref) {
            Err(MocheError::PreferenceLengthMismatch { expected: 4, actual: 3 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strategies_agree() {
        let (r, t) = paper_setup();
        let pref = PreferenceList::new(vec![3, 2, 1, 0]).unwrap();
        let base = Moche::new(0.3).unwrap();
        let variants = [
            base,
            base.construction(ConstructionStrategy::Reference),
            base.size_search(SizeSearchStrategy::NoLowerBound),
            base.construction(ConstructionStrategy::Reference)
                .size_search(SizeSearchStrategy::NoLowerBound),
        ];
        let expected = variants[0].explain(&r, &t, &pref).unwrap();
        for v in &variants[1..] {
            let e = v.explain(&r, &t, &pref).unwrap();
            assert_eq!(e.indices(), expected.indices());
            assert_eq!(e.size(), expected.size());
        }
    }

    #[test]
    fn explain_with_scores_builds_descending_preference() {
        let (r, t) = paper_setup();
        let moche = Moche::new(0.3).unwrap();
        //

        // Scores favour t3 (=12) then t2, t1, t4: same as Example 6's order.
        let e = moche.explain_with_scores(&r, &t, &[1.0, 2.0, 9.0, 0.0]).unwrap();
        assert_eq!(e.indices(), &[2, 1]);
        // Wrong score length errors out.
        assert!(moche.explain_with_scores(&r, &t, &[1.0]).is_err());
    }

    #[test]
    fn test_helper_reports_outcome() {
        let (r, t) = paper_setup();
        let moche = Moche::new(0.3).unwrap();
        assert!(moche.test(&r, &t).unwrap().rejected);
        assert!(moche.test(&r, &r).unwrap().passes());
    }

    #[test]
    fn no_explanation_propagates() {
        let r: Vec<f64> = (0..100).map(f64::from).collect();
        let t = vec![1_000.0, 2_000.0];
        let moche = Moche::new(0.9).unwrap();
        let pref = PreferenceList::identity(2);
        match moche.explain(&r, &t, &pref) {
            Err(MocheError::NoExplanation { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn size_profile_is_monotone_in_alpha() {
        // A solidly failing instance across several alphas.
        let r: Vec<f64> = (0..200).map(|i| f64::from(i % 10)).collect();
        let t: Vec<f64> = (0..150).map(|i| f64::from(i % 10) + 4.0).collect();
        let moche = Moche::new(0.05).unwrap();
        let alphas = [0.01, 0.05, 0.1, 0.2];
        let profile = moche.size_profile(&r, &t, &alphas).unwrap();
        assert_eq!(profile.len(), 4);
        let mut last_k = 0usize;
        for (alpha, result) in profile {
            let s = result.unwrap_or_else(|e| panic!("alpha {alpha}: {e}"));
            assert!(
                s.k >= last_k,
                "k must not decrease as alpha grows: {} then {} at alpha {alpha}",
                last_k,
                s.k
            );
            last_k = s.k;
        }
    }

    #[test]
    fn size_profile_reports_passing_levels() {
        // Borderline instance: fails at loose alpha, passes at strict.
        let r: Vec<f64> = (0..60).map(|i| f64::from(i % 10)).collect();
        let t: Vec<f64> = (0..60).map(|i| f64::from(i % 10) + 2.0).collect();
        let moche = Moche::new(0.05).unwrap();
        let profile = moche.size_profile(&r, &t, &[1e-6, 0.25]).unwrap();
        match &profile[0].1 {
            Err(MocheError::TestAlreadyPasses { .. }) => {}
            other => panic!("expected pass at alpha = 1e-6, got {other:?}"),
        }
        assert!(profile[1].1.is_ok(), "expected failure at alpha = 0.25");
    }

    #[test]
    fn size_profile_flags_invalid_alphas_per_entry() {
        let r: Vec<f64> = (0..30).map(f64::from).collect();
        let t: Vec<f64> = (0..30).map(|i| f64::from(i) + 15.0).collect();
        let moche = Moche::new(0.05).unwrap();
        let profile = moche.size_profile(&r, &t, &[0.05, 2.0]).unwrap();
        assert!(
            profile[0].1.is_ok()
                || matches!(profile[0].1, Err(MocheError::TestAlreadyPasses { .. }))
        );
        assert!(matches!(profile[1].1, Err(MocheError::InvalidAlpha { .. })));
    }
}
