//! Phase 2 of MOCHE: constructing the most comprehensible explanation
//! (Section 5, Algorithm 1, Lemma 2 and Theorem 3 of the paper).
//!
//! Given the explanation size `k` from Phase 1 and a preference order over
//! the test points, Algorithm 1 scans the points in preference order and
//! greedily keeps every point whose addition leaves the selected set a
//! *partial explanation* — a subset of some qualified `k`-subset. The scan
//! stops as soon as `k` points are selected; the greedy invariant makes the
//! result the lexicographically smallest explanation under the preference
//! order.
//!
//! The partial-explanation test (Theorem 3) tightens the Phase-1 upper
//! bounds by a backward pass: with `d_i` the multiplicity of `x_i` in the
//! candidate set `S`,
//!
//! ```text
//! ū_q = u_q^k,    ū_{i-1} = min(u_{i-1}^k, ū_i - d_i)
//! ```
//!
//! and `S` is a partial explanation iff `l_i^k <= ū_i` for all `i`.
//!
//! Two implementations are provided:
//!
//! * [`construct_reference`] — the paper-faithful version that recomputes
//!   the full `O(q)` backward pass for every candidate
//!   (total `O(m (n + m))`, the paper's stated complexity), and
//! * [`construct`] — an exactly equivalent incremental version. Adding a
//!   point at base index `j` leaves `ū_i` unchanged for `i >= j`, and the
//!   decrement below `j` propagates only until absorbed by slack in
//!   `u_i^k`, so each check touches only the coordinates that actually
//!   change. Equivalence is enforced by unit and property tests.

use crate::base_vector::BaseVector;
use crate::bounds::{BoundsContext, BoundsWorkspace, HBounds};
use crate::cumulative::SubsetCounts;
use crate::error::MocheError;
use crate::ks::KsConfig;

/// Instrumentation counters for the Phase-2 construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConstructStats {
    /// Number of candidate points whose addition was checked.
    pub candidates_checked: usize,
    /// Number of candidates accepted into the explanation (`== k` on
    /// success).
    pub accepted: usize,
    /// Total number of backward-pass coordinate updates performed. For the
    /// reference implementation this is about `candidates_checked * q`; the
    /// incremental version is typically far lower.
    pub propagation_steps: u64,
}

/// Checks whether the subset described by `counts` is a partial explanation
/// for explanation size `bounds.h`, by running the full Theorem-3 backward
/// pass. This is the verbatim `O(q)` test from the paper.
pub fn is_partial_explanation(bounds: &HBounds, counts: &SubsetCounts) -> bool {
    let q = counts.q();
    debug_assert_eq!(bounds.lower.len(), q + 1);
    let mut ubar = bounds.upper[q];
    if bounds.lower[q] > ubar {
        return false;
    }
    for i in (1..=q).rev() {
        ubar = bounds.upper[i - 1].min(ubar - counts.count(i) as i64);
        if bounds.lower[i - 1] > ubar {
            return false;
        }
    }
    true
}

/// Runs Algorithm 1 with the paper-faithful partial-explanation check:
/// every candidate triggers a full backward pass.
///
/// `order` lists original test indices from most to least preferred and must
/// be a permutation of `0..m` (enforced by the public API in
/// [`crate::moche`]; here a debug assertion).
///
/// Returns the selected original test indices in preference order.
///
/// # Errors
///
/// Returns [`MocheError::ConstructionIncomplete`] if the scan exhausts `T`
/// before selecting `k` points (numerically impossible when `k` came from
/// Phase 1 on the same configuration).
pub fn construct_reference(
    base: &BaseVector,
    cfg: &KsConfig,
    k: usize,
    order: &[usize],
) -> Result<(Vec<usize>, ConstructStats), MocheError> {
    debug_assert_eq!(order.len(), base.m());
    let ctx = BoundsContext::new(base, cfg);
    let bounds = ctx.compute(k);
    if !bounds.feasible {
        return Err(MocheError::ConstructionIncomplete { built: 0, k });
    }
    let q = base.q();
    let mut counts = SubsetCounts::empty(q);
    let mut selected = Vec::with_capacity(k);
    let mut stats = ConstructStats::default();

    for &orig in order {
        if selected.len() == k {
            break;
        }
        let j = base.test_point_index(orig);
        debug_assert!(counts.count(j) < base.t_mult(j));
        counts.add(j);
        stats.candidates_checked += 1;
        stats.propagation_steps += q as u64;
        if is_partial_explanation(&bounds, &counts) {
            selected.push(orig);
            stats.accepted += 1;
        } else {
            counts.remove(j);
        }
    }

    if selected.len() == k {
        Ok((selected, stats))
    } else {
        Err(MocheError::ConstructionIncomplete { built: selected.len(), k })
    }
}

/// Runs Algorithm 1 with the incremental partial-explanation check.
/// Semantically identical to [`construct_reference`]; asymptotically the
/// same worst case but typically far fewer coordinate updates.
///
/// # Errors
///
/// As for [`construct_reference`].
pub fn construct(
    base: &BaseVector,
    cfg: &KsConfig,
    k: usize,
    order: &[usize],
) -> Result<(Vec<usize>, ConstructStats), MocheError> {
    let mut ws = BoundsWorkspace::new();
    construct_with(base, cfg, k, order, &mut ws)
}

/// [`construct`] with caller-owned scratch: every buffer (the Phase-1
/// bounds, `d`, `ū` and the propagation staging area) lives in `ws` and is
/// reused across calls, so steady-state construction performs **zero** heap
/// allocations beyond the returned selection. This is the hot path the
/// [`crate::engine::ExplainEngine`] and the [`crate::batch`] layer run on.
///
/// # Errors
///
/// As for [`construct_reference`].
pub fn construct_with(
    base: &BaseVector,
    cfg: &KsConfig,
    k: usize,
    order: &[usize],
    ws: &mut BoundsWorkspace,
) -> Result<(Vec<usize>, ConstructStats), MocheError> {
    let mut selected = Vec::new();
    let stats = construct_into(base, cfg, k, order, ws, &mut selected)?;
    Ok((selected, stats))
}

/// [`construct_with`] writing the selection into a caller-owned buffer
/// (cleared first): together with the workspace this makes steady-state
/// construction fully allocation-free — the
/// [`crate::arena::ExplanationArena`] path of the engine.
///
/// On error the buffer holds the partial selection built so far.
///
/// # Errors
///
/// As for [`construct_reference`].
pub fn construct_into(
    base: &BaseVector,
    cfg: &KsConfig,
    k: usize,
    order: &[usize],
    ws: &mut BoundsWorkspace,
    selected: &mut Vec<usize>,
) -> Result<ConstructStats, MocheError> {
    debug_assert_eq!(order.len(), base.m());
    selected.clear();
    selected.reserve(k);
    let ctx = BoundsContext::new(base, cfg);
    if !ctx.compute_into(k, ws) {
        // No qualified k-subset exists at all; nothing can be constructed.
        return Err(MocheError::ConstructionIncomplete { built: 0, k });
    }
    let q = base.q();

    // Split the workspace so the interleaved bounds can be read while the
    // selection state is mutated.
    let BoundsWorkspace { lu, ubar, d, scratch, .. } = ws;
    let lu: &[i64] = lu;
    let lower = |lu: &[i64], i: usize| lu[2 * i];
    let upper = |lu: &[i64], i: usize| lu[2 * i + 1];

    // Multiplicities d_i of the selected set and the current backward bounds
    // ū_i for it. For the empty set: ū_q = u_q, ū_{i-1} = min(u_{i-1}, ū_i).
    d.clear();
    d.resize(q + 1, 0u64);
    ubar.clear();
    ubar.resize(q + 1, 0i64);
    ubar[q] = upper(lu, q);
    for i in (1..=q).rev() {
        ubar[i - 1] = upper(lu, i - 1).min(ubar[i]);
    }
    debug_assert!(
        (0..=q).all(|i| lower(lu, i) <= ubar[i]),
        "the empty set must be a partial explanation when k is the explanation size"
    );

    scratch.clear();
    let mut stats = ConstructStats::default();

    'candidates: for &orig in order {
        if selected.len() == k {
            break;
        }
        let j = base.test_point_index(orig);
        debug_assert!(d[j] < base.t_mult(j));
        stats.candidates_checked += 1;
        scratch.clear();

        // ū_i for i >= j is unaffected by incrementing d_j. Recompute from
        // i = j - 1 downward, stopping as soon as the new value matches the
        // stored one (everything below is then unchanged too).
        let mut prev = ubar[j] - (d[j] + 1) as i64; // ū_j - d'_j
        let mut i = j;
        loop {
            // prev is the candidate value for ū_{i-1} before clamping by u.
            let new_val = upper(lu, i - 1).min(prev);
            stats.propagation_steps += 1;
            if lower(lu, i - 1) > new_val {
                continue 'candidates; // reject: not a partial explanation
            }
            if new_val == ubar[i - 1] {
                break; // stabilized; lower coordinates are unchanged
            }
            scratch.push((i - 1, new_val));
            if i == 1 {
                break;
            }
            prev = new_val - d[i - 1] as i64;
            i -= 1;
        }

        // Accept: commit the recomputed prefix and the new multiplicity.
        for &(idx, val) in scratch.iter() {
            ubar[idx] = val;
        }
        d[j] += 1;
        selected.push(orig);
        stats.accepted += 1;
    }

    if selected.len() == k {
        Ok(stats)
    } else {
        Err(MocheError::ConstructionIncomplete { built: selected.len(), k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::find_size;

    fn paper_setup() -> (BaseVector, KsConfig) {
        let r = vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0];
        let t = vec![13.0, 13.0, 12.0, 20.0];
        (BaseVector::build(&r, &t).unwrap(), KsConfig::new(0.3).unwrap())
    }

    #[test]
    fn paper_example_6() {
        // L = [t4, t3, t2, t1] -> original indices [3, 2, 1, 0].
        // Expected explanation: {t3, t2} = original indices [2, 1].
        let (base, cfg) = paper_setup();
        let order = vec![3, 2, 1, 0];
        let (sel, _) = construct(&base, &cfg, 2, &order).unwrap();
        assert_eq!(sel, vec![2, 1]);
        let (sel_ref, _) = construct_reference(&base, &cfg, 2, &order).unwrap();
        assert_eq!(sel_ref, vec![2, 1]);
    }

    #[test]
    fn example_6_rejects_t4_first() {
        // The first scanned point t4 = 20 must be rejected (the paper shows
        // ū_3 = 1 < l_3 = 2 for S = {t4}).
        let (base, cfg) = paper_setup();
        let ctx = BoundsContext::new(&base, &cfg);
        let bounds = ctx.compute(2);
        let mut counts = SubsetCounts::empty(base.q());
        counts.add(base.test_point_index(3)); // t4 = 20 -> base index 4
        assert!(!is_partial_explanation(&bounds, &counts));
        // And t3 = 12 must be accepted.
        let mut counts2 = SubsetCounts::empty(base.q());
        counts2.add(base.test_point_index(2)); // t3 = 12 -> base index 1
        assert!(is_partial_explanation(&bounds, &counts2));
    }

    #[test]
    fn empty_set_is_partial_explanation() {
        let (base, cfg) = paper_setup();
        let ctx = BoundsContext::new(&base, &cfg);
        let bounds = ctx.compute(2);
        let counts = SubsetCounts::empty(base.q());
        assert!(is_partial_explanation(&bounds, &counts));
    }

    #[test]
    fn full_explanation_is_partial_explanation_of_itself() {
        let (base, cfg) = paper_setup();
        let order = vec![3, 2, 1, 0];
        let (sel, _) = construct(&base, &cfg, 2, &order).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let bounds = ctx.compute(2);
        let counts = SubsetCounts::from_test_indices(&base, &sel);
        assert!(is_partial_explanation(&bounds, &counts));
    }

    #[test]
    fn selected_set_reverses_the_test() {
        let (base, cfg) = paper_setup();
        assert!(base.outcome(&cfg).rejected);
        let order = vec![3, 2, 1, 0];
        let (sel, _) = construct(&base, &cfg, 2, &order).unwrap();
        let counts = SubsetCounts::from_test_indices(&base, &sel);
        let outcome = base.outcome_after_removal(counts.as_slice(), &cfg);
        assert!(outcome.passes(), "outcome = {outcome:?}");
    }

    #[test]
    fn incremental_matches_reference_on_all_permutations() {
        // 4 test points -> 24 preference orders; both implementations must
        // agree exactly on every one.
        let (base, cfg) = paper_setup();
        let mut order = vec![0usize, 1, 2, 3];
        let mut agree = 0usize;
        permute(&mut order, 0, &mut |perm: &[usize]| {
            let a = construct(&base, &cfg, 2, perm).unwrap();
            let b = construct_reference(&base, &cfg, 2, perm).unwrap();
            assert_eq!(a.0, b.0, "perm = {perm:?}");
            agree += 1;
        });
        assert_eq!(agree, 24);
    }

    fn permute(xs: &mut Vec<usize>, start: usize, f: &mut impl FnMut(&[usize])) {
        if start == xs.len() {
            f(xs);
            return;
        }
        for i in start..xs.len() {
            xs.swap(start, i);
            permute(xs, start + 1, f);
            xs.swap(start, i);
        }
    }

    #[test]
    fn incremental_does_less_propagation_work() {
        // On a larger instance the incremental version must not do more
        // coordinate updates than the reference version.
        let r: Vec<f64> = (0..200).map(|i| f64::from(i % 25)).collect();
        let t: Vec<f64> = (0..150).map(|i| f64::from(i % 10) + 10.0).collect();
        let base = BaseVector::build(&r, &t).unwrap();
        let cfg = KsConfig::new(0.05).unwrap();
        assert!(base.outcome(&cfg).rejected);
        let ctx = BoundsContext::new(&base, &cfg);
        let k = find_size(&ctx, cfg.alpha()).unwrap().k;
        let order: Vec<usize> = (0..t.len()).collect();
        let (sel_a, stats_a) = construct(&base, &cfg, k, &order).unwrap();
        let (sel_b, stats_b) = construct_reference(&base, &cfg, k, &order).unwrap();
        assert_eq!(sel_a, sel_b);
        assert!(
            stats_a.propagation_steps <= stats_b.propagation_steps,
            "incremental {} > reference {}",
            stats_a.propagation_steps,
            stats_b.propagation_steps
        );
    }

    #[test]
    fn preference_order_changes_the_explanation_but_not_its_size() {
        let (base, cfg) = paper_setup();
        let (a, _) = construct(&base, &cfg, 2, &[3, 2, 1, 0]).unwrap();
        let (b, _) = construct(&base, &cfg, 2, &[0, 1, 2, 3]).unwrap();
        assert_eq!(a.len(), b.len());
        // Different orders may pick different witnesses among {12, 13, 13}.
        for sel in [&a, &b] {
            let counts = SubsetCounts::from_test_indices(&base, sel);
            assert!(base.outcome_after_removal(counts.as_slice(), &cfg).passes());
        }
    }

    #[test]
    fn construction_incomplete_error_for_wrong_k() {
        // k = 0 cannot be grown to; k below the true size makes the bounds
        // infeasible, which must surface as an error, not a panic.
        let (base, cfg) = paper_setup();
        let order = vec![0, 1, 2, 3];
        match construct(&base, &cfg, 1, &order) {
            Err(MocheError::ConstructionIncomplete { built, k }) => {
                assert_eq!(k, 1);
                assert_eq!(built, 0);
            }
            other => panic!("expected ConstructionIncomplete, got {other:?}"),
        }
    }

    #[test]
    fn construct_with_matches_construct_and_reference() {
        let r: Vec<f64> = (0..200).map(|i| f64::from(i % 25)).collect();
        let t: Vec<f64> = (0..150).map(|i| f64::from(i % 10) + 10.0).collect();
        let base = BaseVector::build(&r, &t).unwrap();
        let cfg = KsConfig::new(0.05).unwrap();
        let ctx = BoundsContext::new(&base, &cfg);
        let k = find_size(&ctx, cfg.alpha()).unwrap().k;
        let mut ws = BoundsWorkspace::new();
        for seed in 0..5u64 {
            let order = crate::preference::PreferenceList::random(t.len(), seed);
            let (a, stats_a) = construct_with(&base, &cfg, k, order.as_order(), &mut ws).unwrap();
            let (b, stats_b) = construct(&base, &cfg, k, order.as_order()).unwrap();
            let (c, _) = construct_reference(&base, &cfg, k, order.as_order()).unwrap();
            assert_eq!(a, b, "seed = {seed}");
            assert_eq!(a, c, "seed = {seed}");
            assert_eq!(stats_a, stats_b, "workspace reuse must not change the search");
        }
    }

    #[test]
    fn construct_with_infeasible_k_errors() {
        let (base, cfg) = paper_setup();
        let mut ws = BoundsWorkspace::new();
        match construct_with(&base, &cfg, 1, &[0, 1, 2, 3], &mut ws) {
            Err(MocheError::ConstructionIncomplete { built: 0, k: 1 }) => {}
            other => panic!("expected ConstructionIncomplete, got {other:?}"),
        }
    }

    #[test]
    fn stats_counters_are_consistent() {
        let (base, cfg) = paper_setup();
        let order = vec![3, 2, 1, 0];
        let (sel, stats) = construct(&base, &cfg, 2, &order).unwrap();
        assert_eq!(stats.accepted, sel.len());
        assert!(stats.candidates_checked >= stats.accepted);
        assert!(stats.propagation_steps > 0);
    }
}
