//! The base vector and the cumulative-count representation of `R` and `T`
//! (Section 4.2 of the paper).
//!
//! The base vector `V = <x_1, ..., x_q>` holds the distinct values of
//! `R ∪ T` in ascending order. Cumulative counts
//! `C_R[i] = |{x in R : x <= x_i}|` and `C_T[i] = |{x in T : x <= x_i}|`
//! fully determine the ECDFs of `R` and `T`, so every KS-test quantity used
//! by MOCHE can be computed from this structure without touching the raw
//! samples again.

use crate::error::{MocheError, SetKind};
use crate::ks::{validate_finite, KsConfig, KsOutcome};

/// The base vector of a (reference set, test set) pair together with the
/// cumulative counts `C_R` and `C_T` and the mapping from each original test
/// point to its position in the base vector.
///
/// Index convention: the paper indexes base-vector entries `1..=q` with the
/// sentinel `C[0] = 0`. This struct follows the same convention; cumulative
/// arrays have length `q + 1` and index `0` is the sentinel.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseVector {
    /// Distinct sorted values; `values[i - 1]` is the paper's `x_i`.
    values: Vec<f64>,
    /// `C_R[i] = |{x in R : x <= x_i}|` (with `C_R[0] = 0`), stored as the
    /// *f64 plane*: the counts are kept pre-converted to `f64`, because
    /// every Phase-1 probe evaluates `Γ(i, h) = C_T[i] - scale · C_R[i]` in
    /// the `f64` domain and would otherwise pay a per-element conversion on
    /// each of its ~dozen passes. Storing *only* the `f64` form (instead of
    /// `u64` plus a plane) keeps construction traffic identical to an
    /// integer representation. This is lossless: counts are bounded by
    /// `n + m < 2^53`, so every count is exactly representable and the
    /// integer accessors ([`c_r`](Self::c_r), [`c_t`](Self::c_t)) recover
    /// the exact `u64` with a cast.
    c_r_f64: Vec<f64>,
    /// `C_T` as an `f64` plane; see [`Self::c_r_f64`].
    c_t_f64: Vec<f64>,
    /// For each original test index, the (1-based) base-vector index of its
    /// value.
    t_pos: Vec<usize>,
    n: usize,
    m: usize,
}

/// A validated, pre-sorted reference sample, shareable across many
/// [`BaseVector`] builds.
///
/// The shared-reference workload (one reference distribution monitored
/// against thousands of test windows — see [`crate::batch`]) re-sorts and
/// re-validates the same `R` for every window when it goes through
/// [`BaseVector::build`]. A `SortedReference` does that `O(n log n)` work
/// once; [`BaseVector::build_with_reference`] then runs in
/// `O(n + m log m)` per window.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedReference {
    values: Vec<f64>,
}

impl SortedReference {
    /// Validates and sorts a reference sample.
    ///
    /// # Errors
    ///
    /// Returns an error if the sample is empty or contains non-finite
    /// values.
    pub fn new(reference: &[f64]) -> Result<Self, MocheError> {
        if reference.is_empty() {
            return Err(MocheError::EmptyReference);
        }
        validate_finite(SetKind::Reference, reference)?;
        let mut values = reference.to_vec();
        values.sort_unstable_by(f64::total_cmp);
        Ok(Self { values })
    }

    /// Number of reference points `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always `false`: construction rejects empty samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sorted values.
    #[inline]
    pub fn as_sorted(&self) -> &[f64] {
        &self.values
    }
}

/// The backing buffers of a [`BaseVector`], moved out for in-place rebuilds
/// (the [`crate::ref_index`] splice path) and handed back via
/// [`BaseVector::from_raw_parts`].
pub(crate) struct RecycledBuffers {
    pub(crate) values: Vec<f64>,
    pub(crate) c_r_f64: Vec<f64>,
    pub(crate) c_t_f64: Vec<f64>,
    pub(crate) t_pos: Vec<usize>,
}

impl BaseVector {
    /// Builds the base vector and cumulative counts from raw samples.
    ///
    /// Runs in `O((n + m) log(n + m))` time.
    ///
    /// # Errors
    ///
    /// Returns an error if either sample is empty or contains non-finite
    /// values.
    pub fn build(reference: &[f64], test: &[f64]) -> Result<Self, MocheError> {
        if reference.is_empty() {
            return Err(MocheError::EmptyReference);
        }
        // Check the test set before paying for the reference sort, and keep
        // the seed's error precedence (EmptyTest before NonFiniteValue).
        if test.is_empty() {
            return Err(MocheError::EmptyTest);
        }
        validate_finite(SetKind::Reference, reference)?;
        let mut r_sorted = reference.to_vec();
        r_sorted.sort_unstable_by(f64::total_cmp);
        Self::merge_sorted(&r_sorted, test)
    }

    /// Builds the base vector against a pre-sorted, pre-validated reference,
    /// skipping the per-call `O(n log n)` sort of `R`. This is the
    /// shared-reference fast path used by [`crate::batch`].
    ///
    /// # Errors
    ///
    /// Returns an error if the test sample is empty or contains non-finite
    /// values.
    pub fn build_with_reference(
        reference: &SortedReference,
        test: &[f64],
    ) -> Result<Self, MocheError> {
        Self::merge_sorted(reference.as_sorted(), test)
    }

    fn merge_sorted(r_sorted: &[f64], test: &[f64]) -> Result<Self, MocheError> {
        if test.is_empty() {
            return Err(MocheError::EmptyTest);
        }
        validate_finite(SetKind::Test, test)?;
        let mut t_sorted = test.to_vec();
        t_sorted.sort_unstable_by(f64::total_cmp);

        // Merge the two sorted samples into distinct values + counts (the
        // counts go straight into the f64 planes; `i as f64` is exact for
        // in-memory sample sizes).
        let mut values = Vec::with_capacity(r_sorted.len() + t_sorted.len());
        let mut c_r_f64 = Vec::with_capacity(r_sorted.len() + t_sorted.len() + 1);
        let mut c_t_f64 = Vec::with_capacity(r_sorted.len() + t_sorted.len() + 1);
        c_r_f64.push(0.0f64);
        c_t_f64.push(0.0f64);
        let (mut i, mut j) = (0usize, 0usize);
        while i < r_sorted.len() || j < t_sorted.len() {
            let x = match (r_sorted.get(i), t_sorted.get(j)) {
                (Some(&a), Some(&b)) => a.min(b),
                (Some(&a), None) => a,
                (None, Some(&b)) => b,
                // lint:allow(panic): the loop condition guarantees one side
                // still has elements
                (None, None) => unreachable!(),
            };
            while i < r_sorted.len() && r_sorted[i] <= x {
                i += 1;
            }
            while j < t_sorted.len() && t_sorted[j] <= x {
                j += 1;
            }
            values.push(x);
            c_r_f64.push(i as f64);
            c_t_f64.push(j as f64);
        }

        // Map every original test point to its base-vector index.
        let t_pos = test
            .iter()
            .map(|&v| {
                // partition_point returns the count of values < v; the value
                // itself is at that offset, so the 1-based index is +1.
                let lt = values.partition_point(|&u| u < v);
                debug_assert!(values[lt] == v);
                lt + 1
            })
            .collect();

        Ok(Self { values, c_r_f64, c_t_f64, t_pos, n: r_sorted.len(), m: test.len() })
    }

    /// An empty placeholder whose only purpose is buffer recycling: pass it
    /// to [`build_with_index_into`](Self::build_with_index_into) to rebuild
    /// it in place without reallocating. Every query method reports a
    /// zero-size instance until then.
    pub fn empty() -> Self {
        Self {
            values: Vec::new(),
            c_r_f64: vec![0.0],
            c_t_f64: vec![0.0],
            t_pos: Vec::new(),
            n: 0,
            m: 0,
        }
    }

    /// Moves the backing buffers out (for in-place rebuilds), leaving
    /// `self` empty.
    pub(crate) fn take_buffers(&mut self) -> RecycledBuffers {
        self.n = 0;
        self.m = 0;
        RecycledBuffers {
            values: std::mem::take(&mut self.values),
            c_r_f64: std::mem::take(&mut self.c_r_f64),
            c_t_f64: std::mem::take(&mut self.c_t_f64),
            t_pos: std::mem::take(&mut self.t_pos),
        }
    }

    /// Assembles a base vector from already-built parts (the
    /// [`crate::ref_index`] splice path). The caller guarantees the arrays
    /// obey this struct's invariants.
    pub(crate) fn from_raw_parts(buffers: RecycledBuffers, n: usize, m: usize) -> Self {
        let RecycledBuffers { values, c_r_f64, c_t_f64, t_pos } = buffers;
        debug_assert_eq!(c_r_f64.len(), values.len() + 1);
        debug_assert_eq!(c_t_f64.len(), values.len() + 1);
        debug_assert_eq!(t_pos.len(), m);
        Self { values, c_r_f64, c_t_f64, t_pos, n, m }
    }

    /// Number of distinct values `q = |set(R ∪ T)|`.
    #[inline]
    pub fn q(&self) -> usize {
        self.values.len()
    }

    /// Size of the reference set.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Size of the test set.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The paper's `x_i` for `1 <= i <= q`.
    #[inline]
    pub fn value(&self, i: usize) -> f64 {
        self.values[i - 1]
    }

    /// All distinct values, ascending.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `C_R[i]` for `0 <= i <= q`. The cast from the f64 plane is exact
    /// (counts are integers `< 2^53`).
    #[inline]
    pub fn c_r(&self, i: usize) -> u64 {
        self.c_r_f64[i] as u64
    }

    /// `C_T[i]` for `0 <= i <= q`.
    #[inline]
    pub fn c_t(&self, i: usize) -> u64 {
        self.c_t_f64[i] as u64
    }

    /// `C_R` as an `f64` slice (length `q + 1`, sentinel at index 0): the
    /// plane the Phase-1 probe kernels stream over. Each element equals
    /// `c_r(i) as f64` exactly (counts are `< 2^53`).
    #[inline]
    pub fn c_r_plane(&self) -> &[f64] {
        &self.c_r_f64
    }

    /// `C_T` as an `f64` slice; see [`c_r_plane`](Self::c_r_plane).
    #[inline]
    pub fn c_t_plane(&self) -> &[f64] {
        &self.c_t_f64
    }

    /// Multiplicity of `x_i` in the reference set.
    #[inline]
    pub fn r_mult(&self, i: usize) -> u64 {
        // Exact: both counts are integers < 2^53, so the f64 difference is
        // the exact integer difference.
        (self.c_r_f64[i] - self.c_r_f64[i - 1]) as u64
    }

    /// Multiplicity of `x_i` in the test set.
    #[inline]
    pub fn t_mult(&self, i: usize) -> u64 {
        (self.c_t_f64[i] - self.c_t_f64[i - 1]) as u64
    }

    /// The (1-based) base-vector index of the original test point
    /// `test[orig]`.
    #[inline]
    pub fn test_point_index(&self, orig: usize) -> usize {
        self.t_pos[orig]
    }

    /// The KS statistic `D(R, T)` computed from the cumulative counts in
    /// `O(q)` time.
    pub fn statistic(&self) -> f64 {
        let (n, m) = (self.n as f64, self.m as f64);
        let mut d = 0.0f64;
        for (&cr, &ct) in self.c_r_f64[1..].iter().zip(&self.c_t_f64[1..]) {
            let diff = (cr / n - ct / m).abs();
            if diff > d {
                d = diff;
            }
        }
        d
    }

    /// Runs the KS test between `R` and `T` from the cumulative counts.
    pub fn outcome(&self, cfg: &KsConfig) -> KsOutcome {
        let statistic = self.statistic();
        KsOutcome {
            statistic,
            threshold: cfg.threshold(self.n, self.m),
            rejected: cfg.rejects(statistic, self.n, self.m),
            n: self.n,
            m: self.m,
        }
    }

    /// The KS statistic `D(R, T \ S)` where `S` is described by per-value
    /// removal counts (`removed[i]` = copies of `x_i` removed, `removed[0]`
    /// ignored). `O(q)` time.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `removed` is inconsistent with the test
    /// set's multiplicities or removes all of `T`.
    #[allow(clippy::needless_range_loop)] // three parallel arrays share the index
    pub fn statistic_after_removal(&self, removed: &[u64]) -> f64 {
        debug_assert_eq!(removed.len(), self.q() + 1);
        let h: u64 = removed[1..].iter().sum();
        let remaining = self.m as u64 - h;
        debug_assert!(remaining > 0, "cannot remove the entire test set");
        let (n, m_rem) = (self.n as f64, remaining as f64);
        let mut d = 0.0f64;
        let mut cum_removed = 0u64;
        for i in 1..=self.q() {
            debug_assert!(removed[i] <= self.t_mult(i), "removal exceeds multiplicity");
            cum_removed += removed[i];
            // `(C_T[i] - cum_removed) as f64` on integers < 2^53 equals the
            // f64 subtraction of their exact representations.
            let ft = (self.c_t_f64[i] - cum_removed as f64) / m_rem;
            let diff = (self.c_r_f64[i] / n - ft).abs();
            if diff > d {
                d = diff;
            }
        }
        d
    }

    /// Runs the KS test between `R` and `T \ S` (see
    /// [`statistic_after_removal`](Self::statistic_after_removal)).
    pub fn outcome_after_removal(&self, removed: &[u64], cfg: &KsConfig) -> KsOutcome {
        let h: usize = removed[1..].iter().sum::<u64>() as usize;
        let m_rem = self.m - h;
        let statistic = self.statistic_after_removal(removed);
        KsOutcome {
            statistic,
            threshold: cfg.threshold(self.n, m_rem),
            rejected: cfg.rejects(statistic, self.n, m_rem),
            n: self.n,
            m: m_rem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ks::ks_statistic;

    /// The running example of the paper (Example 3):
    /// `T = {13, 13, 12, 20}`, `R = {14, 14, 14, 14, 20, 20, 20, 20}`.
    pub(crate) fn paper_example() -> (Vec<f64>, Vec<f64>) {
        (vec![14.0, 14.0, 14.0, 14.0, 20.0, 20.0, 20.0, 20.0], vec![13.0, 13.0, 12.0, 20.0])
    }

    #[test]
    fn paper_example_base_vector() {
        let (r, t) = paper_example();
        let b = BaseVector::build(&r, &t).unwrap();
        assert_eq!(b.values(), &[12.0, 13.0, 14.0, 20.0]);
        assert_eq!(b.q(), 4);
        assert_eq!(b.n(), 8);
        assert_eq!(b.m(), 4);
        // C_T = <0, 1, 3, 3, 4>; C_R = <0, 0, 0, 4, 8>.
        assert_eq!((0..=4).map(|i| b.c_t(i)).collect::<Vec<_>>(), vec![0, 1, 3, 3, 4]);
        assert_eq!((0..=4).map(|i| b.c_r(i)).collect::<Vec<_>>(), vec![0, 0, 0, 4, 8]);
    }

    #[test]
    fn test_point_positions() {
        let (r, t) = paper_example();
        let b = BaseVector::build(&r, &t).unwrap();
        // t = [13, 13, 12, 20] -> base indices [2, 2, 1, 4].
        assert_eq!((0..4).map(|i| b.test_point_index(i)).collect::<Vec<_>>(), vec![2, 2, 1, 4]);
    }

    #[test]
    fn multiplicities() {
        let (r, t) = paper_example();
        let b = BaseVector::build(&r, &t).unwrap();
        assert_eq!((1..=4).map(|i| b.t_mult(i)).collect::<Vec<_>>(), vec![1, 2, 0, 1]);
        assert_eq!((1..=4).map(|i| b.r_mult(i)).collect::<Vec<_>>(), vec![0, 0, 4, 4]);
    }

    #[test]
    fn statistic_matches_direct_computation() {
        let (r, t) = paper_example();
        let b = BaseVector::build(&r, &t).unwrap();
        let direct = ks_statistic(&r, &t).unwrap();
        assert!((b.statistic() - direct).abs() < 1e-15);
    }

    #[test]
    fn statistic_after_empty_removal_matches_statistic() {
        let (r, t) = paper_example();
        let b = BaseVector::build(&r, &t).unwrap();
        let removed = vec![0u64; b.q() + 1];
        assert_eq!(b.statistic_after_removal(&removed), b.statistic());
    }

    #[test]
    fn statistic_after_removal_matches_recomputation() {
        let (r, t) = paper_example();
        let b = BaseVector::build(&r, &t).unwrap();
        // Remove S = {13, 13} (base index 2, twice) -> Example 3's subset.
        let mut removed = vec![0u64; b.q() + 1];
        removed[2] = 2;
        let t_after = vec![12.0, 20.0];
        let direct = ks_statistic(&r, &t_after).unwrap();
        assert!((b.statistic_after_removal(&removed) - direct).abs() < 1e-15);
    }

    #[test]
    fn outcome_after_removal_uses_reduced_m() {
        let (r, t) = paper_example();
        let b = BaseVector::build(&r, &t).unwrap();
        let cfg = KsConfig::new(0.3).unwrap();
        let mut removed = vec![0u64; b.q() + 1];
        removed[1] = 1; // remove the 12
        let o = b.outcome_after_removal(&removed, &cfg);
        assert_eq!(o.m, 3);
        assert_eq!(o.n, 8);
    }

    #[test]
    fn build_with_reference_matches_build() {
        let (r, t) = paper_example();
        let shared = SortedReference::new(&r).unwrap();
        assert_eq!(shared.len(), r.len());
        assert!(!shared.is_empty());
        let direct = BaseVector::build(&r, &t).unwrap();
        let via_shared = BaseVector::build_with_reference(&shared, &t).unwrap();
        assert_eq!(direct, via_shared);
        // A second, different window against the same shared reference.
        let t2 = vec![20.0, 20.0, 11.0];
        assert_eq!(
            BaseVector::build(&r, &t2).unwrap(),
            BaseVector::build_with_reference(&shared, &t2).unwrap()
        );
    }

    #[test]
    fn sorted_reference_rejects_bad_input() {
        assert!(SortedReference::new(&[]).is_err());
        assert!(SortedReference::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn build_error_precedence_is_stable() {
        // EmptyTest outranks a non-finite reference, as in the seed.
        assert_eq!(BaseVector::build(&[1.0, f64::NAN], &[]).unwrap_err(), MocheError::EmptyTest);
        assert_eq!(BaseVector::build(&[], &[]).unwrap_err(), MocheError::EmptyReference);
    }

    #[test]
    fn build_rejects_bad_input() {
        assert!(BaseVector::build(&[], &[1.0]).is_err());
        assert!(BaseVector::build(&[1.0], &[]).is_err());
        assert!(BaseVector::build(&[f64::NAN], &[1.0]).is_err());
        assert!(BaseVector::build(&[1.0], &[f64::NEG_INFINITY]).is_err());
    }

    #[test]
    fn all_identical_values_collapse_to_single_entry() {
        let b = BaseVector::build(&[7.0; 5], &[7.0; 3]).unwrap();
        assert_eq!(b.q(), 1);
        assert_eq!(b.c_r(1), 5);
        assert_eq!(b.c_t(1), 3);
        assert_eq!(b.statistic(), 0.0);
    }

    #[test]
    fn negative_and_positive_values_sort_correctly() {
        let b = BaseVector::build(&[-1.5, 0.0, 2.0], &[-3.0, 0.0]).unwrap();
        assert_eq!(b.values(), &[-3.0, -1.5, 0.0, 2.0]);
        assert_eq!(b.test_point_index(0), 1);
        assert_eq!(b.test_point_index(1), 3);
    }

    #[test]
    fn f64_planes_mirror_the_integer_counts() {
        let r: Vec<f64> = (0..100).map(|i| f64::from(i % 13)).collect();
        let t: Vec<f64> = (0..57).map(|i| f64::from(i % 7) * 1.5).collect();
        let b = BaseVector::build(&r, &t).unwrap();
        assert_eq!(b.c_r_plane().len(), b.q() + 1);
        assert_eq!(b.c_t_plane().len(), b.q() + 1);
        for i in 0..=b.q() {
            assert_eq!(b.c_r_plane()[i], b.c_r(i) as f64);
            assert_eq!(b.c_t_plane()[i], b.c_t(i) as f64);
        }
    }

    #[test]
    fn cumulative_counts_are_monotone_and_total() {
        let r: Vec<f64> = (0..100).map(|i| f64::from(i % 13)).collect();
        let t: Vec<f64> = (0..57).map(|i| f64::from(i % 7) * 1.5).collect();
        let b = BaseVector::build(&r, &t).unwrap();
        for i in 1..=b.q() {
            assert!(b.c_r(i) >= b.c_r(i - 1));
            assert!(b.c_t(i) >= b.c_t(i - 1));
        }
        assert_eq!(b.c_r(b.q()), 100);
        assert_eq!(b.c_t(b.q()), 57);
    }
}
